//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: a cheaply-clonable, immutable
//! [`Bytes`] buffer (`Arc<[u8]>` under the hood) plus the little-endian
//! cursor methods of [`Buf`] for `&[u8]` and the appending methods of
//! [`BufMut`] for `Vec<u8>`.

// API-compat shim: mirror the upstream crate, not clippy idiom.
#![allow(clippy::all)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Wraps a static slice (copied here; semantics are identical for users).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.0[..] == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

/// Read cursor over a byte source (little-endian helpers only).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Current unread contents.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Append-only writer of little-endian integers and raw slices.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Writes in place, consuming the front of the slice. Panics when the
/// slice has insufficient room, matching the upstream contract.
impl BufMut for &mut [u8] {
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_slice(&mut self, src: &[u8]) {
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"tail");

        let mut r: &[u8] = &out;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 4);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_semantics() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[1..], &[2, 3][..]);
        assert_eq!(Bytes::from_static(b"xy"), Bytes::copy_from_slice(b"xy"));
        // Ord by content, so Bytes works as a BTreeMap key with range queries.
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"b"));
        let mut map = std::collections::BTreeMap::new();
        map.insert(Bytes::from_static(b"k"), 1);
        assert_eq!(map.get(&b"k"[..]), Some(&1));
    }
}
