//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (for future
//! tooling compatibility); no code path serializes through serde — every
//! persistent format here is a hand-rolled little-endian layout with its own
//! checksums. These marker traits keep the derive annotations compiling
//! without the real (unfetchable, offline) dependency.

// API-compat shim: mirror the upstream crate, not clippy idiom.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
