//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types but
//! never actually serializes through serde (all on-flash formats are
//! hand-rolled little-endian layouts). The real derive would need `syn` +
//! `quote`, which the offline build can't fetch, so this macro scans the raw
//! token stream for the type name and emits an empty marker impl. It accepts
//! (and ignores) `#[serde(...)]` helper attributes such as
//! `#[serde(transparent)]`.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
                panic!("serde_derive shim: expected a type name after `{kw}`");
            }
        }
    }
    panic!("serde_derive shim: no `struct` or `enum` keyword in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}
