//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Provides `rngs::StdRng` (xoshiro256++ seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, and the `Rng` methods this workspace calls:
//! `gen::<f64>()`, `gen_range(Range<_>)`, and `gen_bool(p)`. Statistical
//! quality is far beyond what the simulator's admission/Zipf tests need;
//! sequences are deterministic per seed but differ from upstream `rand`
//! (seed-sensitive tests were calibrated against this generator).

// API-compat shim: mirror the upstream crate, not clippy idiom.
#![allow(clippy::all)]

use std::ops::Range;

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly; mirrors `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection loop; bias is < 2^-64
/// per draw, invisible to every statistical test in this workspace).
fn uniform_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let start = u64::try_from(self.start).expect("range start fits in u64");
                let end = u64::try_from(self.end).expect("range end fits in u64");
                let span = end
                    .checked_sub(start)
                    .filter(|s| *s > 0)
                    .expect("cannot sample from an empty range");
                <$ty>::try_from(start + uniform_u64(span, rng))
                    .expect("sample fits in the range's integer type")
            }
        }
    )*};
}

impl_int_range!(u64, u32, u16, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_proportion() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(0..10u64);
            buckets[v as usize] += 1;
        }
        for (i, &n) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&n), "bucket {i} = {n}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn works_through_unsized_ref() {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = sample(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
