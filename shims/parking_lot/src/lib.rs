//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the *subset* of the `parking_lot` API it actually uses
//! (`Mutex`, `RwLock` and their guards) as thin wrappers over `std::sync`.
//! Semantics match parking_lot where it matters to this codebase:
//! no lock poisoning — a panic while holding a lock does not wedge later
//! acquisitions, which the cache's failure-hardening tests rely on.

// API-compat shim: mirror the upstream crate, not clippy idiom.
#![allow(clippy::all)]

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion primitive; `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&*self.lock()).finish()
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// Reader-writer lock; `read()`/`write()` never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // A poisoned std mutex would return Err here; we recover the guard.
        assert_eq!(*m.lock(), 0);
    }
}
