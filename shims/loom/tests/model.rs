//! Self-tests for the loom shim's model checker.
//!
//! These certify the properties the engine's protocol suite relies on:
//! correct schedules *pass* exhaustively, and each class of concurrency
//! bug (stale relaxed reads, store buffering, data races, lost updates,
//! deadlock) is *caught* deterministically.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

// ---------------------------------------------------------------------
// Passing models: correct protocols survive exhaustive exploration.
// ---------------------------------------------------------------------

#[test]
fn message_passing_release_acquire() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed); // relaxed-ok: published by the Release store below
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            // Acquire saw the Release store, so the data write is visible.
            assert_eq!(data.load(Ordering::Relaxed), 42); // relaxed-ok: ordered by the flag
        }
        t.join().unwrap();
    });
}

#[test]
fn store_buffering_forbidden_under_seqcst() {
    // Dekker / store-buffering: with SeqCst both threads cannot read 0.
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let saw_x = x.load(Ordering::SeqCst);
        let saw_y = t.join().unwrap();
        assert!(
            saw_x == 1 || saw_y == 1,
            "SeqCst store-buffering: both threads read 0"
        );
    });
}

#[test]
fn mutex_provides_exclusion_and_ordering() {
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || *c.lock() += 1)
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    });
}

#[test]
fn cell_guarded_by_mutex_is_race_free() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let lock = Arc::new(Mutex::new(()));
        let (c2, l2) = (Arc::clone(&cell), Arc::clone(&lock));
        let t = thread::spawn(move || {
            let _g = l2.lock();
            c2.with_mut(|p| {
                // SAFETY: the mutex serializes every access to the cell.
                unsafe { *p += 1 }
            });
        });
        {
            let _g = lock.lock();
            cell.with_mut(|p| {
                // SAFETY: as above.
                unsafe { *p += 1 }
            });
        }
        t.join().unwrap();
        let total = cell.with(|p| {
            // SAFETY: both writers joined; no concurrent access remains.
            unsafe { *p }
        });
        assert_eq!(total, 2);
    });
}

#[test]
fn rmw_continues_the_release_sequence() {
    // Writer publishes with Release; a third party interposes a *relaxed
    // RMW* on the same atomic. C++20: the RMW continues the release
    // sequence, so an Acquire load reading the RMW's value still
    // synchronizes with the original Release store.
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let (f3, d3) = (Arc::clone(&flag), Arc::clone(&data));
        let publisher = thread::spawn(move || {
            d2.store(7, Ordering::Relaxed); // relaxed-ok: published by the Release RMW chain
            f2.store(1, Ordering::Release);
        });
        let interposer = thread::spawn(move || {
            f3.fetch_add(1, Ordering::Relaxed); // relaxed-ok: RMW passes the release sequence through
            let _ = d3; // keep types in scope
        });
        if flag.load(Ordering::Acquire) == 2 {
            // 2 can only result from the RMW applied after the Release
            // store of 1, so the data write must be visible.
            assert_eq!(data.load(Ordering::Relaxed), 7); // relaxed-ok: ordered via release sequence
        }
        publisher.join().unwrap();
        interposer.join().unwrap();
    });
}

#[test]
fn spin_loop_quiescence_is_explorable() {
    // Miniature of the engine's seal quiescence: a writer commits bytes,
    // the sealer spins until the committed counter reaches the target.
    // Yield-based fairness must make this terminate in every schedule.
    loom::model(|| {
        let committed = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&committed);
        let writer = thread::spawn(move || {
            c2.fetch_add(8, Ordering::Release);
        });
        while committed.load(Ordering::Acquire) < 8 {
            loom::hint::spin_loop();
        }
        writer.join().unwrap();
        assert_eq!(committed.load(Ordering::Acquire), 8);
    });
}

#[test]
fn exploration_visits_multiple_schedules() {
    // The checker must actually branch: two racing increments have more
    // than one interleaving, and a relaxed read of an independent
    // variable has more than one visible value.
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
    static EXECUTIONS: StdAtomicUsize = StdAtomicUsize::new(0);
    EXECUTIONS.store(0, StdOrdering::SeqCst);
    loom::model(|| {
        EXECUTIONS.fetch_add(1, StdOrdering::SeqCst);
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.store(1, Ordering::Relaxed)); // relaxed-ok: test probe
        let _ = x.load(Ordering::Relaxed); // relaxed-ok: test probe
        t.join().unwrap();
    });
    assert!(
        EXECUTIONS.load(StdOrdering::SeqCst) >= 3,
        "expected several distinct executions, got {}",
        EXECUTIONS.load(StdOrdering::SeqCst)
    );
}

// ---------------------------------------------------------------------
// Failing models: every bug class is caught.
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "stale relaxed read")]
fn relaxed_message_passing_is_caught() {
    // Publishing a flag with Relaxed lets the reader see the flag but
    // stale data — the checker must find that execution.
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed); // relaxed-ok: the bug under test
            f2.store(true, Ordering::Relaxed); // relaxed-ok: the bug under test
        });
        if flag.load(Ordering::Relaxed) {
            // relaxed-ok: the bug under test
            assert_eq!(
                data.load(Ordering::Relaxed), // relaxed-ok: the bug under test
                42,
                "stale relaxed read"
            );
        }
        t.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "store buffering")]
fn store_buffering_reachable_under_release_acquire() {
    // The same Dekker shape with Release/Acquire only: both threads CAN
    // read 0 (store buffering) and the checker must reach it.
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Release);
            y2.load(Ordering::Acquire)
        });
        y.store(1, Ordering::Release);
        let saw_x = x.load(Ordering::Acquire);
        let saw_y = t.join().unwrap();
        assert!(saw_x == 1 || saw_y == 1, "store buffering");
    });
}

#[test]
#[should_panic(expected = "data race")]
fn unsynchronized_cell_write_is_a_race() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: intentionally racy — the checker must abort
                // before this closure can overlap another access.
                unsafe { *p = 1 }
            });
        });
        cell.with(|p| {
            // SAFETY: as above; the model panics on the racy schedule.
            unsafe { *p }
        });
        t.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "lost update")]
fn unlocked_read_modify_write_loses_updates() {
    // Classic lost update: load + store instead of fetch_add.
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            let v = x2.load(Ordering::SeqCst);
            x2.store(v + 1, Ordering::SeqCst);
        });
        let v = x.load(Ordering::SeqCst);
        x.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn lock_inversion_deadlocks() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop(_ga);
        drop(_gb);
        t.join().unwrap();
    });
}

#[test]
fn fetch_add_is_atomic() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.fetch_add(1, Ordering::Relaxed); // relaxed-ok: RMW atomicity under test
        });
        x.fetch_add(1, Ordering::Relaxed); // relaxed-ok: RMW atomicity under test
        t.join().unwrap();
        assert_eq!(x.load(Ordering::Relaxed), 2); // relaxed-ok: after join
    });
}

#[test]
fn compare_exchange_success_and_failure() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        });
        let mine = x
            .compare_exchange(0, 2, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        let theirs = t.join().unwrap();
        // Exactly one CAS can win the 0 -> new transition.
        assert!(mine ^ theirs, "both or neither CAS won");
        let v = x.load(Ordering::Acquire);
        assert!(v == 1 || v == 2);
    });
}
