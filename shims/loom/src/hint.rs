//! Spin-loop hint, modelled as a fairness yield.

/// Model equivalent of [`std::hint::spin_loop`].
///
/// Deschedules the current thread until another thread makes progress,
/// which makes busy-wait loops explorable: without this, an exhaustive
/// checker would enumerate unboundedly many spins of the waiting thread.
pub fn spin_loop() {
    crate::thread::yield_now();
}
