//! The model-checking runtime.
//!
//! A model execution runs the user closure plus every thread it spawns on
//! real OS threads, but *serialized*: exactly one thread holds the logical
//! turn at any instant, and the turn only changes hands at *visible
//! operations* (atomic accesses, mutex ops, cell accesses, spawn/join,
//! yields). Each point where more than one thread could run next — or
//! where a weak-memory load could legally return more than one value — is
//! a recorded decision. After an execution finishes, the explorer
//! backtracks to the deepest decision with an untried alternative and
//! replays, which enumerates the full (fair-schedule) tree exhaustively.
//!
//! # Memory model
//!
//! Happens-before is tracked with vector clocks:
//!
//! * Every store to an atomic is kept in modification order together with
//!   the writer's clock. A load may return *any* store not superseded by
//!   one the loading thread already knows about (per its clock and its own
//!   coherence floor) — so `Relaxed`/`Acquire` loads can observe stale
//!   values exactly where the C11 model permits it, and protocols that
//!   need `SeqCst` (store-buffering shapes) genuinely fail without it.
//! * `Acquire` loads join the clock released by the store they read;
//!   `Release` stores publish the writer's clock. Read-modify-writes
//!   continue the release sequence (they pass the head's clock through),
//!   plain stores break it — the C++20 rule.
//! * `SeqCst` operations additionally join a global SC clock, which
//!   totally orders them. (This is marginally stronger than the C11 SC
//!   order — it cannot produce false data-race reports, but may miss
//!   behaviours only reachable through the weaker formal SC. Good enough
//!   for the protocols checked here.)
//! * [`cell access`](crate::cell::UnsafeCell) is race-*checked*: a read
//!   must happen-after the last write, a write must happen-after every
//!   prior access, else the model panics with `data race`.
//!
//! # Fairness
//!
//! `yield_now`/`spin_loop` deschedule the calling thread until another
//! thread performs an operation. This makes spin loops explorable without
//! unfair infinite schedules; a model where every live thread spins
//! forever trips the per-execution step bound and is reported as a
//! livelock.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex};

/// Most threads a single model may spawn (including the model closure).
pub(crate) const MAX_THREADS: usize = 4;

/// Per-execution visible-operation bound; exceeding it means a livelock
/// or a model far too large to explore exhaustively.
const MAX_STEPS: usize = 50_000;

/// Default bound on explored executions, overridable with the
/// `LOOM_MAX_ITERATIONS` environment variable.
const DEFAULT_MAX_ITERATIONS: u64 = 500_000;

/// Marker in abort-unwind panics so wrappers can tell them apart from
/// user assertion failures.
const ABORT_MARKER: &str = "loom-shim: execution aborted";

static EPOCH: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Atomic memory orderings, mirroring `std::sync::atomic::Ordering`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Ordering {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ordering {
    pub(crate) fn acquires(self) -> bool {
        matches!(self, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    pub(crate) fn releases(self) -> bool {
        matches!(self, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock([u32; MAX_THREADS]);

impl VClock {
    fn join(&mut self, other: &VClock) {
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    fn inc(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(mine, theirs)| mine <= theirs)
    }
}

/// One store in an atomic's modification order.
struct Store {
    value: u64,
    /// Clock transferred to acquiring loads (release-sequence carried).
    sync: VClock,
    /// The writer's full clock, for visibility pruning.
    writer: VClock,
}

#[derive(Default)]
struct AtomicState {
    stores: Vec<Store>,
}

#[derive(Default)]
struct CellState {
    last_write: VClock,
    reads: [VClock; MAX_THREADS],
}

#[derive(Default)]
struct LockState {
    locked_by: Option<usize>,
    clock: VClock,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Descheduled by `yield_now` until another thread makes progress.
    Yielded,
    Blocked(Blocker),
    Finished,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Blocker {
    Lock(usize),
    Join(usize),
}

struct Thread {
    status: Status,
    clock: VClock,
    /// Per-atomic coherence floor: lowest modification-order index this
    /// thread may still read.
    seen: Vec<usize>,
    /// Set by a yield and consumed by the next load, which is then
    /// forced to observe the newest store. Models eventual visibility
    /// ("stores become visible in finite time") so spin loops terminate
    /// instead of branching on the stale value forever. Does NOT create
    /// happens-before — the load still only acquires what its ordering
    /// permits.
    fresh_load: bool,
}

impl Thread {
    fn new(clock: VClock) -> Self {
        Thread {
            status: Status::Runnable,
            clock,
            seen: Vec::new(),
            fresh_load: false,
        }
    }

    fn floor(&self, id: usize) -> usize {
        self.seen.get(id).copied().unwrap_or(0)
    }

    fn set_floor(&mut self, id: usize, idx: usize) {
        if self.seen.len() <= id {
            self.seen.resize(id + 1, 0);
        }
        self.seen[id] = self.seen[id].max(idx);
    }
}

#[derive(Clone, Copy)]
struct Decision {
    chosen: usize,
    options: usize,
}

pub(crate) struct ExecState {
    threads: Vec<Thread>,
    cur: usize,
    atomics: Vec<AtomicState>,
    cells: Vec<CellState>,
    locks: Vec<LockState>,
    sc_clock: VClock,
    replay: Vec<usize>,
    decisions: Vec<Decision>,
    cursor: usize,
    steps: usize,
    abort: Option<String>,
    payload: Option<Box<dyn std::any::Any + Send>>,
}

impl ExecState {
    fn decide(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1);
        if options == 1 {
            return 0;
        }
        let chosen = if self.cursor < self.replay.len() {
            self.replay[self.cursor]
        } else {
            0
        };
        assert!(
            chosen < options,
            "loom-shim: nondeterministic model (decision options changed between replays)"
        );
        self.decisions.push(Decision { chosen, options });
        self.cursor += 1;
        chosen
    }

    fn atomic_load(&mut self, id: usize, tid: usize, ord: Ordering) -> u64 {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        let clock = self.threads[tid].clock.clone();
        let mut floor = self.threads[tid].floor(id);
        for (i, store) in self.atomics[id].stores.iter().enumerate() {
            if store.writer.le(&clock) {
                floor = floor.max(i);
            }
        }
        let n = self.atomics[id].stores.len();
        if std::mem::take(&mut self.threads[tid].fresh_load) {
            floor = n - 1;
        }
        debug_assert!(floor < n);
        let choice = floor + self.decide(n - floor);
        let store = &self.atomics[id].stores[choice];
        let value = store.value;
        let sync = store.sync.clone();
        self.threads[tid].set_floor(id, choice);
        if ord.acquires() {
            self.threads[tid].clock.join(&sync);
        }
        if ord == Ordering::SeqCst {
            let c = self.threads[tid].clock.clone();
            self.sc_clock.join(&c);
        }
        value
    }

    fn atomic_store(&mut self, id: usize, tid: usize, ord: Ordering, value: u64) {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        let clock = self.threads[tid].clock.clone();
        let sync = if ord.releases() {
            clock.clone()
        } else {
            VClock::default()
        };
        self.atomics[id].stores.push(Store {
            value,
            sync,
            writer: clock.clone(),
        });
        let idx = self.atomics[id].stores.len() - 1;
        self.threads[tid].set_floor(id, idx);
        if ord == Ordering::SeqCst {
            self.sc_clock.join(&clock);
        }
    }

    /// Read-modify-write: reads the *latest* store in modification order
    /// (atomicity), continues its release sequence, returns the old value.
    fn atomic_rmw(
        &mut self,
        id: usize,
        tid: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        let last = self.atomics[id].stores.len() - 1;
        let old = self.atomics[id].stores[last].value;
        let head_sync = self.atomics[id].stores[last].sync.clone();
        if ord.acquires() {
            self.threads[tid].clock.join(&head_sync);
        }
        let clock = self.threads[tid].clock.clone();
        let mut sync = head_sync;
        if ord.releases() {
            sync.join(&clock);
        }
        self.atomics[id].stores.push(Store {
            value: f(old),
            sync,
            writer: clock.clone(),
        });
        let idx = self.atomics[id].stores.len() - 1;
        self.threads[tid].set_floor(id, idx);
        if ord == Ordering::SeqCst {
            self.sc_clock.join(&clock);
        }
        old
    }

    /// A failed compare-exchange: observes the latest value like an RMW
    /// but stores nothing.
    fn atomic_read_latest(&mut self, id: usize, tid: usize, ord: Ordering) -> u64 {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        let last = self.atomics[id].stores.len() - 1;
        let store = &self.atomics[id].stores[last];
        let value = store.value;
        let sync = store.sync.clone();
        self.threads[tid].set_floor(id, last);
        if ord.acquires() {
            self.threads[tid].clock.join(&sync);
        }
        if ord == Ordering::SeqCst {
            let c = self.threads[tid].clock.clone();
            self.sc_clock.join(&c);
        }
        value
    }

    fn cell_access(&mut self, id: usize, tid: usize, write: bool) -> Result<(), String> {
        let clock = self.threads[tid].clock.clone();
        let cell = &mut self.cells[id];
        if !cell.last_write.le(&clock) {
            return Err(format!(
                "data race: thread {tid} {} a cell not ordered after its last write",
                if write { "writes" } else { "reads" }
            ));
        }
        if write {
            for (other, read) in cell.reads.iter().enumerate() {
                if !read.le(&clock) {
                    return Err(format!(
                        "data race: thread {tid} writes a cell concurrently read by thread {other}"
                    ));
                }
            }
            cell.last_write = clock;
        } else {
            cell.reads[tid].join(&clock);
        }
        Ok(())
    }
}

enum OpOutcome<R> {
    Ready(R),
    Block(Blocker),
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    epoch: u64,
}

impl Execution {
    fn new(replay: Vec<usize>) -> Self {
        Execution {
            state: Mutex::new(ExecState {
                threads: vec![Thread::new({
                    let mut c = VClock::default();
                    c.inc(0);
                    c
                })],
                cur: 0,
                atomics: Vec::new(),
                cells: Vec::new(),
                locks: Vec::new(),
                sc_clock: VClock::default(),
                replay,
                decisions: Vec::new(),
                cursor: 0,
                steps: 0,
                abort: None,
                payload: None,
            }),
            cv: Condvar::new(),
            epoch: EPOCH.fetch_add(1, StdOrdering::Relaxed),
        }
    }

    /// Runs one visible operation under the turn discipline.
    fn op<R>(&self, tid: usize, mut f: impl FnMut(&mut ExecState, usize) -> OpOutcome<R>) -> R {
        // Captured before taking the lock: whether this op was issued by
        // a destructor running while the thread already unwinds (e.g. an
        // RAII guard doing an atomic decrement). Such an op must never
        // panic — a panic in a destructor during cleanup is a process
        // abort — so on an aborted execution it is applied out of turn
        // instead (the execution's results are discarded anyway).
        let unwinding = std::thread::panicking();
        let mut s = self.state.lock().unwrap();
        loop {
            while s.cur != tid && s.abort.is_none() {
                s = self.cv.wait(s).unwrap();
            }
            if s.abort.is_some() {
                if !unwinding {
                    drop(s);
                    panic!("{ABORT_MARKER}");
                }
                match f(&mut s, tid) {
                    OpOutcome::Ready(r) => {
                        self.cv.notify_all();
                        return r;
                    }
                    OpOutcome::Block(_) => {
                        // Blocked in a destructor during teardown: wait
                        // for a peer (also unwinding) to release the
                        // blocker; poll so a wedged peer cannot hang the
                        // whole run.
                        let (guard, _) = self
                            .cv
                            .wait_timeout(s, std::time::Duration::from_millis(1))
                            .unwrap();
                        s = guard;
                        continue;
                    }
                }
            }
            s.steps += 1;
            if s.steps > MAX_STEPS {
                s.abort = Some(
                    "livelock or oversized model: execution exceeded the step bound".to_string(),
                );
                self.cv.notify_all();
                drop(s);
                panic!("{ABORT_MARKER}");
            }
            match f(&mut s, tid) {
                OpOutcome::Ready(r) => {
                    s.threads[tid].clock.inc(tid);
                    self.schedule_next(&mut s, tid);
                    self.cv.notify_all();
                    return r;
                }
                OpOutcome::Block(b) => {
                    s.threads[tid].status = Status::Blocked(b);
                    self.schedule_next(&mut s, tid);
                    self.cv.notify_all();
                    // Loop: wait to be unblocked and rescheduled, then
                    // re-attempt the operation.
                }
            }
        }
    }

    /// Picks the next thread to run. Called with the state locked, after
    /// `from` completed (or blocked on) an operation.
    fn schedule_next(&self, s: &mut ExecState, from: usize) {
        // Progress by `from` wakes spinners that descheduled themselves.
        for (i, t) in s.threads.iter_mut().enumerate() {
            if i != from && t.status == Status::Yielded {
                t.status = Status::Runnable;
            }
        }
        let mut options: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if options.is_empty() {
            // Only the yielding thread itself may be left; let it spin —
            // the step bound catches genuine livelock.
            options = s
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Yielded)
                .map(|(i, _)| i)
                .collect();
            for &i in &options {
                s.threads[i].status = Status::Runnable;
            }
        }
        if options.is_empty() {
            if s.threads.iter().all(|t| t.status == Status::Finished) {
                s.cur = usize::MAX; // execution complete
            } else {
                s.abort = Some("deadlock: every live thread is blocked".to_string());
            }
            return;
        }
        let idx = s.decide(options.len());
        s.cur = options[idx];
    }

    fn finish_thread(&self, tid: usize, panicked: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(payload) = panicked {
            // Abort the whole execution; other threads unwind at their
            // next visible operation.
            let mut s = self.state.lock().unwrap();
            s.threads[tid].status = Status::Finished;
            let is_abort_echo = payload
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains(ABORT_MARKER))
                || payload
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains(ABORT_MARKER));
            if s.abort.is_none() {
                s.abort = Some(format!("thread {tid} panicked"));
            }
            if s.payload.is_none() && !is_abort_echo {
                s.payload = Some(payload);
            }
            for t in s.threads.iter_mut() {
                if matches!(t.status, Status::Blocked(_) | Status::Yielded) {
                    t.status = Status::Runnable;
                }
            }
            self.cv.notify_all();
            return;
        }
        // Normal completion. Must NOT go through `op`: if the execution
        // aborts while this thread waits for its finish turn, `op` would
        // panic outside `run_thread`'s catch_unwind and the OS thread
        // would die without ever recording `Finished`, wedging
        // `wait_all_finished`. Hand-rolled non-panicking turn loop.
        let mut s = self.state.lock().unwrap();
        while s.cur != tid && s.abort.is_none() {
            s = self.cv.wait(s).unwrap();
        }
        s.threads[tid].status = Status::Finished;
        for t in s.threads.iter_mut() {
            if t.status == Status::Blocked(Blocker::Join(tid)) {
                t.status = Status::Runnable;
            }
        }
        if s.abort.is_none() {
            s.threads[tid].clock.inc(tid);
            self.schedule_next(&mut s, tid);
        }
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut s = self.state.lock().unwrap();
        while !s.threads.iter().all(|t| t.status == Status::Finished) {
            s = self.cv.wait(s).unwrap();
        }
    }
}

fn with_context<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> R {
    CONTEXT.with(|c| {
        let ctx = c.borrow();
        let (exec, tid) = ctx
            .as_ref()
            .expect("loom primitives may only be used inside loom::model");
        f(exec, *tid)
    })
}

fn run_thread(exec: Arc<Execution>, tid: usize, f: impl FnOnce()) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTEXT.with(|c| *c.borrow_mut() = None);
    exec.finish_thread(tid, result.err());
}

/// Lazily-registered per-execution object id (atomics, locks, cells keep
/// one; a fresh execution re-registers).
#[derive(Debug)]
pub(crate) struct ObjectId {
    slot: Mutex<Option<(u64, usize)>>,
}

impl ObjectId {
    pub(crate) const fn new() -> Self {
        ObjectId {
            slot: Mutex::new(None),
        }
    }

    fn get(&self, epoch: u64, register: impl FnOnce() -> usize) -> usize {
        let mut slot = self.slot.lock().unwrap();
        match *slot {
            Some((e, id)) if e == epoch => id,
            _ => {
                let id = register();
                *slot = Some((epoch, id));
                id
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runtime entry points used by the public facade modules.
// ---------------------------------------------------------------------

pub(crate) fn rt_atomic_load(obj: &ObjectId, initial: u64, ord: Ordering) -> u64 {
    with_context(|exec, tid| {
        exec.op(tid, |s, tid| {
            let id = obj.get(exec.epoch, || {
                s.atomics.push(AtomicState {
                    stores: vec![Store {
                        value: initial,
                        sync: VClock::default(),
                        writer: VClock::default(),
                    }],
                });
                s.atomics.len() - 1
            });
            OpOutcome::Ready(s.atomic_load(id, tid, ord))
        })
    })
}

pub(crate) fn rt_atomic_store(obj: &ObjectId, initial: u64, ord: Ordering, value: u64) {
    with_context(|exec, tid| {
        exec.op(tid, |s, tid| {
            let id = obj.get(exec.epoch, || {
                s.atomics.push(AtomicState {
                    stores: vec![Store {
                        value: initial,
                        sync: VClock::default(),
                        writer: VClock::default(),
                    }],
                });
                s.atomics.len() - 1
            });
            s.atomic_store(id, tid, ord, value);
            OpOutcome::Ready(())
        })
    })
}

pub(crate) fn rt_atomic_rmw(
    obj: &ObjectId,
    initial: u64,
    ord: Ordering,
    f: impl Fn(u64) -> u64,
) -> u64 {
    with_context(|exec, tid| {
        exec.op(tid, |s, tid| {
            let id = obj.get(exec.epoch, || {
                s.atomics.push(AtomicState {
                    stores: vec![Store {
                        value: initial,
                        sync: VClock::default(),
                        writer: VClock::default(),
                    }],
                });
                s.atomics.len() - 1
            });
            OpOutcome::Ready(s.atomic_rmw(id, tid, ord, &f))
        })
    })
}

/// Compare-exchange; returns `Ok(old)` on success, `Err(latest)` on
/// failure.
pub(crate) fn rt_atomic_cas(
    obj: &ObjectId,
    initial: u64,
    current: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    with_context(|exec, tid| {
        exec.op(tid, |s, tid| {
            let id = obj.get(exec.epoch, || {
                s.atomics.push(AtomicState {
                    stores: vec![Store {
                        value: initial,
                        sync: VClock::default(),
                        writer: VClock::default(),
                    }],
                });
                s.atomics.len() - 1
            });
            let latest = s.atomics[id].stores.last().expect("nonempty history").value;
            if latest == current {
                OpOutcome::Ready(Ok(s.atomic_rmw(id, tid, success, |_| new)))
            } else {
                OpOutcome::Ready(Err(s.atomic_read_latest(id, tid, failure)))
            }
        })
    })
}

pub(crate) fn rt_cell_access(obj: &ObjectId, write: bool) {
    with_context(|exec, tid| {
        exec.op(tid, |s, tid| {
            let id = obj.get(exec.epoch, || {
                s.cells.push(CellState::default());
                s.cells.len() - 1
            });
            match s.cell_access(id, tid, write) {
                Ok(()) => OpOutcome::Ready(()),
                Err(race) => {
                    // Surface the race as the model's failure.
                    s.abort = Some(race.clone());
                    s.payload = Some(Box::new(race.clone()));
                    for t in s.threads.iter_mut() {
                        if matches!(t.status, Status::Blocked(_) | Status::Yielded) {
                            t.status = Status::Runnable;
                        }
                    }
                    OpOutcome::Ready(())
                }
            }
        });
        // Unwind *after* releasing the runtime lock.
        let s = exec.state.lock().unwrap();
        if let Some(reason) = s.abort.clone() {
            drop(s);
            panic!("{reason}");
        }
    })
}

pub(crate) fn rt_lock(obj: &ObjectId) {
    with_context(|exec, tid| {
        exec.op(tid, |s, tid| {
            let id = obj.get(exec.epoch, || {
                s.locks.push(LockState::default());
                s.locks.len() - 1
            });
            match s.locks[id].locked_by {
                None => {
                    s.locks[id].locked_by = Some(tid);
                    let clock = s.locks[id].clock.clone();
                    s.threads[tid].clock.join(&clock);
                    OpOutcome::Ready(())
                }
                Some(owner) => {
                    assert_ne!(owner, tid, "loom-shim: recursive lock acquisition");
                    OpOutcome::Block(Blocker::Lock(id))
                }
            }
        })
    })
}

pub(crate) fn rt_try_lock(obj: &ObjectId) -> bool {
    with_context(|exec, tid| {
        exec.op(tid, |s, tid| {
            let id = obj.get(exec.epoch, || {
                s.locks.push(LockState::default());
                s.locks.len() - 1
            });
            match s.locks[id].locked_by {
                None => {
                    s.locks[id].locked_by = Some(tid);
                    let clock = s.locks[id].clock.clone();
                    s.threads[tid].clock.join(&clock);
                    OpOutcome::Ready(true)
                }
                Some(_) => OpOutcome::Ready(false),
            }
        })
    })
}

pub(crate) fn rt_unlock(obj: &ObjectId) {
    // Runs from guard destructors, possibly during a panic unwind after
    // the execution aborted — so unlike every other primitive it must
    // NEVER panic (a panic in a destructor during cleanup aborts the
    // process). Hand-rolled turn loop instead of `op`.
    with_context(|exec, tid| {
        let mut s = exec.state.lock().unwrap();
        while s.cur != tid && s.abort.is_none() {
            s = exec.cv.wait(s).unwrap();
        }
        if s.abort.is_some() {
            // Teardown: every thread is unwinding; lock state is moot.
            return;
        }
        s.steps += 1;
        let id = obj.get(exec.epoch, || unreachable!("unlock before lock"));
        debug_assert_eq!(s.locks[id].locked_by, Some(tid));
        let clock = s.threads[tid].clock.clone();
        s.locks[id].clock = clock;
        s.locks[id].locked_by = None;
        for t in s.threads.iter_mut() {
            if t.status == Status::Blocked(Blocker::Lock(id)) {
                t.status = Status::Runnable;
            }
        }
        s.threads[tid].clock.inc(tid);
        exec.schedule_next(&mut s, tid);
        exec.cv.notify_all();
    })
}

pub(crate) fn rt_yield() {
    with_context(|exec, tid| {
        exec.op(tid, |s, tid| {
            s.threads[tid].status = Status::Yielded;
            s.threads[tid].fresh_load = true;
            OpOutcome::Ready(())
        })
    })
}

pub(crate) fn rt_spawn(f: impl FnOnce() + Send + 'static) -> usize {
    with_context(|exec, tid| {
        let child = exec.op(tid, |s, tid| {
            let child = s.threads.len();
            assert!(
                child < MAX_THREADS,
                "loom-shim: at most {MAX_THREADS} threads per model"
            );
            let mut clock = s.threads[tid].clock.clone();
            clock.inc(child);
            s.threads.push(Thread::new(clock));
            OpOutcome::Ready(child)
        });
        let exec2 = Arc::clone(exec);
        // Detached: the runtime tracks completion through thread status;
        // the model's JoinHandle::join is a modelled operation.
        std::thread::spawn(move || run_thread(exec2, child, f));
        child
    })
}

/// Blocks (in model time) until `child` finishes, joining its clock.
pub(crate) fn rt_join(child: usize) {
    with_context(|exec, tid| {
        exec.op(tid, |s, tid| {
            if s.threads[child].status == Status::Finished {
                let clock = s.threads[child].clock.clone();
                s.threads[tid].clock.join(&clock);
                OpOutcome::Ready(())
            } else {
                OpOutcome::Block(Blocker::Join(child))
            }
        })
    })
}

fn max_iterations() -> u64 {
    std::env::var("LOOM_MAX_ITERATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_ITERATIONS)
}

fn next_replay(decisions: &[Decision]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        if decisions[i].chosen + 1 < decisions[i].options {
            let mut replay: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
            replay.push(decisions[i].chosen + 1);
            return Some(replay);
        }
    }
    None
}

/// Explores every fair schedule (and weak-memory read choice) of `f`,
/// panicking on the first schedule where the model panics, races, or
/// deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let cap = max_iterations();
    let mut replay: Vec<usize> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        if std::env::var("LOOM_DEBUG").is_ok() {
            eprintln!("loom-shim debug: execution {iterations}, replay {replay:?}");
        }
        assert!(
            iterations <= cap,
            "loom-shim: exceeded {cap} executions without exhausting the schedule \
             space; shrink the model (this checker has no partial-order reduction) \
             or raise LOOM_MAX_ITERATIONS"
        );
        let exec = Arc::new(Execution::new(std::mem::take(&mut replay)));
        let exec0 = Arc::clone(&exec);
        let f0 = Arc::clone(&f);
        let root = std::thread::spawn(move || run_thread(exec0, 0, move || f0()));
        exec.wait_all_finished();
        root.join().expect("root wrapper never panics");
        let mut s = exec.state.lock().unwrap();
        if let Some(reason) = s.abort.take() {
            if let Some(payload) = s.payload.take() {
                drop(s);
                panic::resume_unwind(payload);
            }
            panic!("loom-shim: model failed after {iterations} executions: {reason}");
        }
        match next_replay(&s.decisions) {
            Some(r) => replay = r,
            None => break,
        }
    }
}
