//! Model-checked threads.

use crate::rt;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// Handle to a model thread; `join` blocks in model time and establishes
/// happens-before with everything the thread did.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
    _not_send: PhantomData<*const ()>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value.
    ///
    /// If the thread panicked the whole model execution has already been
    /// aborted by the runtime, so unlike std this never returns `Err`.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        rt::rt_join(self.tid);
        let value = self
            .result
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .expect("thread finished; result present");
        Ok(value)
    }
}

/// Spawns a model thread.
///
/// Unlike std, `'static` closures only — the model runs them on real
/// detached OS threads under the turn-taking runtime.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::rt_spawn(move || {
        let value = f();
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
    });
    JoinHandle {
        tid,
        result,
        _not_send: PhantomData,
    }
}

/// Deschedules the current thread until another thread makes progress.
///
/// This is how spin loops stay explorable: the model never schedules a
/// yielded thread twice in a row without intervening progress elsewhere.
pub fn yield_now() {
    rt::rt_yield();
}
