//! Race-checked interior mutability.

use crate::rt;

/// An `UnsafeCell` whose accesses are checked for data races.
///
/// Every `with`/`with_mut` records a happens-before edge; if a write is
/// not ordered after every prior access (or a read not ordered after the
/// last write) the model panics with a `data race` message, which
/// [`crate::model`] reports for the offending schedule.
#[derive(Debug)]
pub struct UnsafeCell<T: ?Sized> {
    id: rt::ObjectId,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: mirrors std::cell::UnsafeCell's auto-Send; the runtime's race
// checker (not the type system) enforces exclusion at access time.
unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}
// SAFETY: access is only possible through `with`/`with_mut`, which the
// runtime race-checks; unsynchronized concurrent access aborts the model
// before the closure runs.
unsafe impl<T: ?Sized + Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Creates a new race-checked cell.
    pub const fn new(data: T) -> Self {
        UnsafeCell {
            id: rt::ObjectId::new(),
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Consumes the cell, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Immutable access; checked to happen-after the last write.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        rt::rt_cell_access(&self.id, false);
        f(self.data.get())
    }

    /// Mutable access; checked to happen-after every prior access.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        rt::rt_cell_access(&self.id, true);
        f(self.data.get())
    }

    /// Mutable access through exclusive ownership (not race-checked —
    /// `&mut self` already proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` guarantees no other reference exists.
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        UnsafeCell::new(T::default())
    }
}
