//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker.
//!
//! The real `loom` crate cannot be vendored into this workspace (no
//! network access), so this shim re-implements the subset of its API the
//! cache engine's protocol tests need, backed by a small exhaustive
//! model checker ([`rt`]):
//!
//! * [`model`] runs a closure under every *fair* thread schedule and
//!   every legal weak-memory read, by serializing real OS threads into a
//!   turn-taking discipline and backtracking over recorded decisions.
//! * [`sync::atomic`] atomics keep their full modification history with
//!   vector clocks, so `Relaxed`/`Acquire` loads really can observe
//!   stale values — ordering bugs fail deterministically instead of
//!   one-in-a-million.
//! * [`cell::UnsafeCell`] checks every access pair for happens-before
//!   and panics with `data race` when two accesses are unordered.
//! * [`sync::Mutex`] and [`sync::RwLock`] follow the `parking_lot` API
//!   the workspace uses (no poisoning, `lock()` returns the guard).
//!
//! Limitations versus real loom: at most [`MAX_THREADS`](rt) threads, no
//! partial-order reduction (keep models to ≤ 3 threads × a handful of
//! visible operations), SeqCst is modelled slightly stronger than C11
//! (sound for race *detection*, may miss some SC-only behaviours), and
//! `RwLock` is modelled as an exclusive lock.

pub mod cell;
pub mod hint;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;
