//! Model-checked synchronization primitives.
//!
//! Mirrors the parts of `loom::sync` the workspace uses. `Mutex` and
//! `RwLock` follow the *parking_lot* calling convention (`lock()`
//! returns the guard directly, no poisoning) because that is what the
//! non-loom build of `crates/core` links against.

use crate::rt;
use std::cell::UnsafeCell as StdUnsafeCell;
use std::ops::{Deref, DerefMut};

pub use std::sync::Arc;

pub mod atomic {
    //! Model-checked atomic types with full modification-order history.

    use crate::rt::{self, ObjectId};

    pub use crate::rt::Ordering;

    macro_rules! atomic_impl {
        ($name:ident, $ty:ty, $doc:expr) => {
            #[doc = $doc]
            pub struct $name {
                initial: $ty,
                id: ObjectId,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $ty) -> Self {
                    $name {
                        initial: v,
                        id: ObjectId::new(),
                    }
                }

                fn init(&self) -> u64 {
                    self.initial as u64
                }

                /// Loads the value; weaker orderings may observe stale stores.
                pub fn load(&self, ord: Ordering) -> $ty {
                    rt::rt_atomic_load(&self.id, self.init(), ord) as $ty
                }

                /// Stores a value.
                pub fn store(&self, v: $ty, ord: Ordering) {
                    rt::rt_atomic_store(&self.id, self.init(), ord, v as u64)
                }

                /// Atomically replaces the value, returning the old one.
                pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                    rt::rt_atomic_rmw(&self.id, self.init(), ord, |_| v as u64) as $ty
                }

                /// Atomically adds (wrapping), returning the old value.
                pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                    rt::rt_atomic_rmw(&self.id, self.init(), ord, |old| {
                        (old as $ty).wrapping_add(v) as u64
                    }) as $ty
                }

                /// Atomically subtracts (wrapping), returning the old value.
                pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                    rt::rt_atomic_rmw(&self.id, self.init(), ord, |old| {
                        (old as $ty).wrapping_sub(v) as u64
                    }) as $ty
                }

                /// Atomically stores the maximum, returning the old value.
                pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                    rt::rt_atomic_rmw(&self.id, self.init(), ord, |old| {
                        (old as $ty).max(v) as u64
                    }) as $ty
                }

                /// Atomically stores the minimum, returning the old value.
                pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                    rt::rt_atomic_rmw(&self.id, self.init(), ord, |old| {
                        (old as $ty).min(v) as u64
                    }) as $ty
                }

                /// Compare-exchange; `Ok(previous)` on success.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::rt_atomic_cas(
                        &self.id,
                        self.init(),
                        current as u64,
                        new as u64,
                        success,
                        failure,
                    )
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
                }

                /// Weak compare-exchange (never fails spuriously here).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// CAS loop over `f`, as in std.
                pub fn fetch_update(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    mut f: impl FnMut($ty) -> Option<$ty>,
                ) -> Result<$ty, $ty> {
                    let mut prev = self.load(fetch_order);
                    while let Some(next) = f(prev) {
                        match self.compare_exchange_weak(prev, next, set_order, fetch_order) {
                            Ok(v) => return Ok(v),
                            Err(v) => prev = v,
                        }
                    }
                    Err(prev)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$ty>::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_struct(stringify!($name)).finish_non_exhaustive()
                }
            }
        };
    }

    atomic_impl!(AtomicU32, u32, "Model-checked `AtomicU32`.");
    atomic_impl!(AtomicU64, u64, "Model-checked `AtomicU64`.");
    atomic_impl!(AtomicUsize, usize, "Model-checked `AtomicUsize`.");

    /// Model-checked `AtomicBool`.
    pub struct AtomicBool {
        initial: bool,
        id: ObjectId,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                initial: v,
                id: ObjectId::new(),
            }
        }

        fn init(&self) -> u64 {
            self.initial as u64
        }

        /// Loads the value; weaker orderings may observe stale stores.
        pub fn load(&self, ord: Ordering) -> bool {
            rt::rt_atomic_load(&self.id, self.init(), ord) != 0
        }

        /// Stores a value.
        pub fn store(&self, v: bool, ord: Ordering) {
            rt::rt_atomic_store(&self.id, self.init(), ord, v as u64)
        }

        /// Atomically replaces the value, returning the old one.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            rt::rt_atomic_rmw(&self.id, self.init(), ord, |_| v as u64) != 0
        }

        /// Compare-exchange; `Ok(previous)` on success.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            rt::rt_atomic_cas(
                &self.id,
                self.init(),
                current as u64,
                new as u64,
                success,
                failure,
            )
            .map(|v| v != 0)
            .map_err(|v| v != 0)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("AtomicBool").finish_non_exhaustive()
        }
    }
}

/// Model-checked mutex with the parking_lot calling convention.
pub struct Mutex<T: ?Sized> {
    id: rt::ObjectId,
    data: StdUnsafeCell<T>,
}

// SAFETY: the runtime serializes all access — `lock()` blocks (in model
// time) until the lock is free, so `&mut T` handed out via the guard is
// exclusive, matching std::sync::Mutex's Send/Sync conditions.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above; the guard provides exclusive access.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            id: rt::ObjectId::new(),
            data: StdUnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking (in model time) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        rt::rt_lock(&self.id);
        MutexGuard { lock: self }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if rt::rt_try_lock(&self.id) {
            Some(MutexGuard { lock: self })
        } else {
            None
        }
    }

    /// Mutable access through exclusive ownership (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the runtime granted this thread the lock; no other
        // guard exists until drop releases it.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the lock guarantees exclusivity.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rt::rt_unlock(&self.lock.id);
    }
}

/// Model-checked reader-writer lock.
///
/// Modelled as an *exclusive* lock: readers serialize with each other.
/// This shrinks the schedule space and is sound — every behaviour of the
/// exclusive model is a legal behaviour of the shared-read lock; only
/// reader-reader parallelism (which cannot race by construction) is not
/// explored.
pub struct RwLock<T: ?Sized>(Mutex<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access (modelled exclusively).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.lock())
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.lock())
    }

    /// Mutable access through exclusive ownership.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(MutexGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(MutexGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
