//! Offline stand-in for the `criterion` crate.
//!
//! The real criterion cannot be fetched in this build environment. This shim
//! keeps the `benches/` targets compiling and runnable: each benchmark body
//! executes a small fixed number of iterations and prints wall-clock time per
//! iteration — a smoke test plus a rough number, not a statistical harness.

// API-compat shim: mirror the upstream crate, not clippy idiom.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

const ITERS: u64 = 25;

/// Benchmark driver; configuration knobs are accepted and ignored.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// Runs the measured closure and records elapsed time.
#[derive(Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = ITERS;
    }

    fn report(&self, name: &str) {
        if self.iters > 0 {
            let per_iter = self.elapsed.as_nanos() / u128::from(self.iters);
            println!("bench {name}: {per_iter} ns/iter ({} iters)", self.iters);
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    pub fn finish(self) {}
}

/// Display label for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    pub fn new<D: Display, P: Display>(name: D, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
