//! End-to-end integrity of all four schemes under the CacheBench mix:
//! every hit must return exactly the last value written for that key, and
//! each scheme's write-amplification invariants must hold.

use std::sync::Arc;

use zns_cache_repro::f2fs_lite::{FileSystem, FsConfig};
use zns_cache_repro::ftl::{BlockSsd, FtlConfig};
use zns_cache_repro::sim::Nanos;
use zns_cache_repro::workload::{value_for_key, CacheBench, CacheBenchConfig, Op};
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice};
use zns_cache_repro::zns_cache::backend::MiddleConfig;
use zns_cache_repro::zns_cache::{CacheConfig, Scheme, SchemeCache};

fn build(scheme: Scheme) -> SchemeCache {
    let config = CacheConfig::small_test();
    match scheme {
        Scheme::Block => SchemeCache::block(
            Arc::new(BlockSsd::new(FtlConfig::small_test())),
            4 * 4096,
            None,
            config,
        )
        .unwrap(),
        Scheme::File => SchemeCache::file(
            Arc::new(FileSystem::format(FsConfig::small_test())),
            4 * 4096,
            20,
            config,
            Nanos::ZERO,
        )
        .unwrap(),
        Scheme::Zone => SchemeCache::zone(
            Arc::new(ZnsDevice::new(ZnsConfig::small_test())),
            None,
            config,
        )
        .unwrap(),
        Scheme::Region => SchemeCache::region(
            Arc::new(ZnsDevice::new(ZnsConfig::small_test())),
            MiddleConfig::small_test(),
            config,
        )
        .unwrap(),
    }
}

/// Runs the paper's mix with hit verification; returns (hits, misses).
fn churn(sc: &SchemeCache, ops: u64, keys: u64, seed: u64) -> (u64, u64) {
    let mut bench = CacheBench::new(CacheBenchConfig::paper_mix(keys, seed));
    let mut t = Nanos::ZERO;
    let (mut hits, mut misses) = (0, 0);
    for _ in 0..ops {
        match bench.next_op() {
            Op::Get { id, key } => {
                let (value, t2) = sc.cache.get(&key, t).expect("get");
                t = t2;
                match value {
                    Some(v) => {
                        hits += 1;
                        let expect = value_for_key(id, bench.version_of(id));
                        assert_eq!(
                            v.as_ref(),
                            expect.as_slice(),
                            "{}: stale or corrupt value for key {id}",
                            sc.scheme
                        );
                    }
                    None => {
                        misses += 1;
                        let fill = value_for_key(id, bench.version_of(id));
                        t = sc.cache.set(&key, &fill, t).expect("miss fill");
                    }
                }
            }
            Op::Set { key, value, .. } => t = sc.cache.set(&key, &value, t).expect("set"),
            Op::Delete { key, .. } => t = sc.cache.delete(&key, t).expect("delete").1,
        }
    }
    (hits, misses)
}

#[test]
fn every_scheme_serves_verified_hits_under_churn() {
    for scheme in Scheme::ALL {
        let sc = build(scheme);
        let (hits, misses) = churn(&sc, 20_000, 1_500, 11);
        assert!(hits > 1_000, "{scheme}: only {hits} hits ({misses} misses)");
        let m = sc.cache.metrics();
        assert!(m.flushes > 0, "{scheme}: nothing reached flash");
        assert!(
            m.evicted_regions > 0,
            "{scheme}: no evictions — workload too small to exercise churn"
        );
    }
}

#[test]
fn zone_cache_wa_is_exactly_one() {
    let sc = build(Scheme::Zone);
    churn(&sc, 15_000, 1_500, 3);
    assert_eq!(sc.write_amplification(), 1.0);
    let dev_stats = sc.zns.as_ref().unwrap().stats();
    assert_eq!(dev_stats.write_amplification(), 1.0);
    assert!(dev_stats.zone_resets > 0, "evictions must reset zones");
}

#[test]
fn zns_device_level_wa_is_one_for_all_zns_schemes() {
    // The defining ZNS property: whatever the scheme above does, the
    // *device* never amplifies.
    for scheme in [Scheme::File, Scheme::Zone, Scheme::Region] {
        let sc = build(scheme);
        churn(&sc, 15_000, 1_500, 5);
        let dev = sc.zns.as_ref().expect("zns-based scheme");
        assert_eq!(
            dev.stats().write_amplification(),
            1.0,
            "{scheme}: ZNS device amplified"
        );
    }
}

#[test]
fn end_to_end_wa_ordering_matches_the_paper() {
    // Zone == 1; Block and Region > 1 but modest; File highest (filesystem
    // metadata + cleaning on top of cache churn).
    let mut wa = std::collections::HashMap::new();
    for scheme in Scheme::ALL {
        let sc = build(scheme);
        churn(&sc, 25_000, 1_500, 7);
        wa.insert(scheme, sc.write_amplification());
    }
    assert_eq!(wa[&Scheme::Zone], 1.0);
    assert!(wa[&Scheme::Region] >= 1.0);
    assert!(wa[&Scheme::Block] >= 1.0);
    assert!(
        wa[&Scheme::File] >= wa[&Scheme::Zone],
        "File-Cache should amplify at least as much as Zone-Cache: {wa:?}"
    );
}

#[test]
fn deletes_never_resurrect() {
    for scheme in Scheme::ALL {
        let sc = build(scheme);
        let mut t = Nanos::ZERO;
        t = sc.cache.set(b"k", b"v1", t).unwrap();
        t = sc.cache.flush(t).unwrap();
        let (deleted, t2) = sc.cache.delete(b"k", t).unwrap();
        assert!(deleted);
        t = t2;
        // Churn enough to cycle regions; "k" must stay gone.
        let value = vec![9u8; 900];
        for i in 0..2_000u32 {
            let key = format!("other-{i}");
            t = sc.cache.set(key.as_bytes(), &value, t).unwrap();
        }
        let (v, _) = sc.cache.get(b"k", t).unwrap();
        assert!(v.is_none(), "{scheme}: deleted key came back");
    }
}
