//! Warm-restart and crash-recovery behaviour across the stack: the cache's
//! index snapshot, and the filesystem's checkpointed tables.

use std::sync::Arc;

use zns_cache_repro::f2fs_lite::{FileSystem, FsConfig};
use zns_cache_repro::sim::{Nanos, RamDisk};
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice};
use zns_cache_repro::zns_cache::backend::{MiddleConfig, MiddleLayerBackend, ZoneBackend};
use zns_cache_repro::zns_cache::{recovery, CacheConfig, LogCache};

#[test]
fn zone_cache_survives_warm_restart() {
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let backend = Arc::new(ZoneBackend::new(dev));
    let cache = LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap();
    let mut t = Nanos::ZERO;
    for i in 0..200u32 {
        let key = format!("key-{i}");
        let value = format!("value-{i}");
        t = cache.set(key.as_bytes(), value.as_bytes(), t).unwrap();
    }
    let (snap, t) = recovery::snapshot(&cache, t).unwrap();
    drop(cache);

    let cache2 = recovery::recover(backend, CacheConfig::small_test(), &snap).unwrap();
    let mut found = 0;
    for i in 0..200u32 {
        let key = format!("key-{i}");
        let (v, _) = cache2.get(key.as_bytes(), t).unwrap();
        if let Some(v) = v {
            assert_eq!(v.as_ref(), format!("value-{i}").as_bytes());
            found += 1;
        }
    }
    // Everything still fit in the cache, so nothing may be lost.
    assert_eq!(found, 200, "objects lost across restart");
}

#[test]
fn region_cache_middle_layer_state_survives_with_the_backend() {
    // The middle layer's mapping lives with the backend object; a cache
    // restart on top of it must keep every mapped region readable.
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let backend = Arc::new(MiddleLayerBackend::new(dev, MiddleConfig::small_test()));
    let cache = LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap();
    let mut t = Nanos::ZERO;
    let value = vec![5u8; 800];
    for i in 0..300u32 {
        let key = format!("key-{i}");
        t = cache.set(key.as_bytes(), &value, t).unwrap();
    }
    let (snap, t) = recovery::snapshot(&cache, t).unwrap();
    drop(cache);

    let cache2 = recovery::recover(backend, CacheConfig::small_test(), &snap).unwrap();
    let live_before = cache2.len();
    assert!(live_before > 0);
    let (v, _) = cache2.get(b"key-299", t).unwrap();
    assert_eq!(v.as_deref(), Some(&value[..]), "latest insert lost");
}

#[test]
fn snapshot_rejects_a_different_backend() {
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let backend = Arc::new(ZoneBackend::new(dev));
    let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
    let (snap, _) = recovery::snapshot(&cache, Nanos::ZERO).unwrap();

    let other_dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let other =
        Arc::new(MiddleLayerBackend::new(other_dev, MiddleConfig::small_test()));
    assert!(recovery::recover(other, CacheConfig::small_test(), &snap).is_err());
}

#[test]
fn filesystem_recovers_to_last_checkpoint_only() {
    let config = FsConfig::small_test();
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let meta = Arc::new(RamDisk::new(config.meta_blocks));
    let fs = FileSystem::format_on(dev.clone(), meta.clone(), &config);

    let ino = fs.create("f", Nanos::ZERO).unwrap();
    let t = fs.pwrite(ino, 0, &[1u8; 4096], Nanos::ZERO).unwrap();
    let t = fs.checkpoint(t).unwrap();
    // Post-checkpoint write that will be lost by the crash.
    let t = fs.pwrite(ino, 4096, &[2u8; 4096], t).unwrap();
    drop(fs); // crash without checkpoint

    let (fs2, t) = FileSystem::mount(dev, meta, &config, t).unwrap();
    let ino = fs2.open("f").unwrap();
    // The checkpointed block is intact; the later write never happened
    // (checkpoint-granular durability, as documented).
    assert_eq!(fs2.size(ino).unwrap(), 4096);
    let mut buf = vec![0u8; 4096];
    fs2.pread(ino, 0, &mut buf, t).unwrap();
    assert!(buf.iter().all(|&b| b == 1));
}

#[test]
fn filesystem_double_crash_alternates_slots() {
    let config = FsConfig::small_test();
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let meta = Arc::new(RamDisk::new(config.meta_blocks));
    let fs = FileSystem::format_on(dev.clone(), meta.clone(), &config);
    let ino = fs.create("f", Nanos::ZERO).unwrap();
    let mut t = fs.pwrite(ino, 0, &[1u8; 4096], Nanos::ZERO).unwrap();
    t = fs.checkpoint(t).unwrap();
    t = fs.pwrite(ino, 0, &[2u8; 4096], t).unwrap();
    t = fs.checkpoint(t).unwrap();
    drop(fs);

    // Recover → newest checkpoint (value 2); mutate; checkpoint; recover.
    let (fs2, mut t) = FileSystem::mount(dev.clone(), meta.clone(), &config, t).unwrap();
    let ino = fs2.open("f").unwrap();
    let mut buf = vec![0u8; 4096];
    t = fs2.pread(ino, 0, &mut buf, t).unwrap();
    assert!(buf.iter().all(|&b| b == 2));
    t = fs2.pwrite(ino, 0, &[3u8; 4096], t).unwrap();
    t = fs2.checkpoint(t).unwrap();
    drop(fs2);

    let (fs3, t) = FileSystem::mount(dev, meta, &config, t).unwrap();
    let ino = fs3.open("f").unwrap();
    fs3.pread(ino, 0, &mut buf, t).unwrap();
    assert!(buf.iter().all(|&b| b == 3));
}
