//! Warm-restart and crash-recovery behaviour across the stack: the cache's
//! index snapshot, the filesystem's checkpointed tables, and the
//! crash-point sweep — a scripted workload crashed at *every* sync, seal,
//! reset, and mid-salvage boundary (DESIGN.md §7), recovered by device
//! scan, and held to two invariants at each point:
//!
//! 1. no acknowledged-durable write is lost (unless its region was
//!    legitimately evicted or its zone went dark), and
//! 2. no corrupt object is ever served — every lookup is exact bytes or a
//!    clean miss.

use std::sync::Arc;

use zns_cache_repro::f2fs_lite::{FileSystem, FsConfig};
use zns_cache_repro::sim::{BlockDevice, Nanos, RamDisk, BLOCK_SIZE};
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice, ZoneId, ZoneState};
use zns_cache_repro::zns_cache::backend::{
    BlockBackend, FileBackend, MiddleConfig, MiddleLayerBackend, RegionBackend, ZoneBackend,
};
use zns_cache_repro::zns_cache::{recovery, CacheConfig, EvictionPolicy, LogCache, Maintainer};

#[test]
fn zone_cache_survives_warm_restart() {
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let backend = Arc::new(ZoneBackend::new(dev));
    let cache = LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap();
    let mut t = Nanos::ZERO;
    for i in 0..200u32 {
        let key = format!("key-{i}");
        let value = format!("value-{i}");
        t = cache.set(key.as_bytes(), value.as_bytes(), t).unwrap();
    }
    let (snap, t) = recovery::snapshot(&cache, t).unwrap();
    drop(cache);

    let cache2 = recovery::recover(backend, CacheConfig::small_test(), &snap).unwrap();
    let mut found = 0;
    for i in 0..200u32 {
        let key = format!("key-{i}");
        let (v, _) = cache2.get(key.as_bytes(), t).unwrap();
        if let Some(v) = v {
            assert_eq!(v.as_ref(), format!("value-{i}").as_bytes());
            found += 1;
        }
    }
    // Everything still fit in the cache, so nothing may be lost.
    assert_eq!(found, 200, "objects lost across restart");
}

#[test]
fn region_cache_middle_layer_state_survives_with_the_backend() {
    // The middle layer's mapping lives with the backend object; a cache
    // restart on top of it must keep every mapped region readable.
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let backend = Arc::new(MiddleLayerBackend::new(dev, MiddleConfig::small_test()));
    let cache = LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap();
    let mut t = Nanos::ZERO;
    let value = vec![5u8; 800];
    for i in 0..300u32 {
        let key = format!("key-{i}");
        t = cache.set(key.as_bytes(), &value, t).unwrap();
    }
    let (snap, t) = recovery::snapshot(&cache, t).unwrap();
    drop(cache);

    let cache2 = recovery::recover(backend, CacheConfig::small_test(), &snap).unwrap();
    let live_before = cache2.len();
    assert!(live_before > 0);
    let (v, _) = cache2.get(b"key-299", t).unwrap();
    assert_eq!(v.as_deref(), Some(&value[..]), "latest insert lost");
}

#[test]
fn snapshot_rejects_a_different_backend() {
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let backend = Arc::new(ZoneBackend::new(dev));
    let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
    let (snap, _) = recovery::snapshot(&cache, Nanos::ZERO).unwrap();

    let other_dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let other =
        Arc::new(MiddleLayerBackend::new(other_dev, MiddleConfig::small_test()));
    assert!(recovery::recover(other, CacheConfig::small_test(), &snap).is_err());
}

#[test]
fn filesystem_recovers_to_last_checkpoint_only() {
    let config = FsConfig::small_test();
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let meta = Arc::new(RamDisk::new(config.meta_blocks));
    let fs = FileSystem::format_on(dev.clone(), meta.clone(), &config);

    let ino = fs.create("f", Nanos::ZERO).unwrap();
    let t = fs.pwrite(ino, 0, &[1u8; 4096], Nanos::ZERO).unwrap();
    let t = fs.checkpoint(t).unwrap();
    // Post-checkpoint write that will be lost by the crash.
    let t = fs.pwrite(ino, 4096, &[2u8; 4096], t).unwrap();
    drop(fs); // crash without checkpoint

    let (fs2, t) = FileSystem::mount(dev, meta, &config, t).unwrap();
    let ino = fs2.open("f").unwrap();
    // The checkpointed block is intact; the later write never happened
    // (checkpoint-granular durability, as documented).
    assert_eq!(fs2.size(ino).unwrap(), 4096);
    let mut buf = vec![0u8; 4096];
    fs2.pread(ino, 0, &mut buf, t).unwrap();
    assert!(buf.iter().all(|&b| b == 1));
}

#[test]
fn filesystem_double_crash_alternates_slots() {
    let config = FsConfig::small_test();
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let meta = Arc::new(RamDisk::new(config.meta_blocks));
    let fs = FileSystem::format_on(dev.clone(), meta.clone(), &config);
    let ino = fs.create("f", Nanos::ZERO).unwrap();
    let mut t = fs.pwrite(ino, 0, &[1u8; 4096], Nanos::ZERO).unwrap();
    t = fs.checkpoint(t).unwrap();
    t = fs.pwrite(ino, 0, &[2u8; 4096], t).unwrap();
    t = fs.checkpoint(t).unwrap();
    drop(fs);

    // Recover → newest checkpoint (value 2); mutate; checkpoint; recover.
    let (fs2, mut t) = FileSystem::mount(dev.clone(), meta.clone(), &config, t).unwrap();
    let ino = fs2.open("f").unwrap();
    let mut buf = vec![0u8; 4096];
    t = fs2.pread(ino, 0, &mut buf, t).unwrap();
    assert!(buf.iter().all(|&b| b == 2));
    t = fs2.pwrite(ino, 0, &[3u8; 4096], t).unwrap();
    t = fs2.checkpoint(t).unwrap();
    drop(fs2);

    let (fs3, t) = FileSystem::mount(dev, meta, &config, t).unwrap();
    let ino = fs3.open("f").unwrap();
    fs3.pread(ino, 0, &mut buf, t).unwrap();
    assert!(buf.iter().all(|&b| b == 3));
}

// ===== Crash-point sweep ==================================================
//
// Each scheme runs a scripted workload whose steps end exactly on the
// boundaries the fault model cares about: a region **seal** (flush write),
// a device **sync** (block scheme only — ZNS writes are durable at
// completion), a zone/region **reset** (eviction), and a **mid-salvage**
// point (a scrub pass that has re-inserted live data off a read-only zone
// but not yet flushed the copies). The sweep crashes after every prefix of
// the script, recovers by device scan, and checks the §7 invariants.

/// Deterministic payload so recovery checks exact bytes, not just presence.
fn sweep_value(key: &str, len: usize) -> Vec<u8> {
    let seed = key.bytes().fold(0u8, |a, b| a.wrapping_mul(31).wrapping_add(b));
    (0..len).map(|i| seed.wrapping_add(i as u8)).collect()
}

/// One boundary step of a block-scheme crash sweep: drive the cache,
/// maintainer, and raw disk, recording progress in the `Script`.
type BlockStep<'a> = Box<dyn Fn(&LogCache, &Maintainer, &RamDisk, &mut Script) + 'a>;

/// One boundary step of a ZNS-scheme crash sweep (writes are durable at
/// completion, so no raw-disk sync dimension).
type ZnsStep<'a> = Box<dyn Fn(&LogCache, &mut Script) + 'a>;

/// Tracks the two key sets the invariants are stated over.
#[derive(Default)]
struct Script {
    t: Nanos,
    /// Every key ever acknowledged: must read back exact or miss.
    acked: Vec<(String, usize)>,
    /// Keys that must survive a crash *right now*: acknowledged, durable,
    /// and not invalidated by a legitimate eviction since.
    required: Vec<(String, usize)>,
}

impl Script {
    fn ack(&mut self, key: String, len: usize) {
        self.acked.push((key, len));
    }
    fn require_all(&mut self, keys: &[(String, usize)]) {
        for k in keys {
            if !self.required.contains(k) {
                self.required.push(k.clone());
            }
        }
    }
    fn unrequire_prefix(&mut self, prefix: &str) {
        self.required.retain(|(k, _)| !k.starts_with(prefix));
    }
}

/// Post-crash verdict: every required key is served exactly; every other
/// acknowledged key is exact-or-miss; the survivor still takes writes.
fn check_recovered(label: &str, point: usize, cache: &LogCache, script: &Script) {
    let mut t = script.t;
    for (key, len) in &script.required {
        let (v, t2) = cache
            .get(key.as_bytes(), t)
            .unwrap_or_else(|e| panic!("{label}@{point}: get({key}) errored: {e}"));
        let got = v.unwrap_or_else(|| {
            panic!("{label}@{point}: acknowledged durable write {key} lost in crash")
        });
        assert_eq!(
            got.as_ref(),
            &sweep_value(key, *len)[..],
            "{label}@{point}: corrupt bytes served for {key}"
        );
        t = t2;
    }
    for (key, len) in &script.acked {
        let (v, t2) = cache
            .get(key.as_bytes(), t)
            .unwrap_or_else(|e| panic!("{label}@{point}: get({key}) errored: {e}"));
        if let Some(got) = v {
            assert_eq!(
                got.as_ref(),
                &sweep_value(key, *len)[..],
                "{label}@{point}: corrupt bytes served for {key}"
            );
        }
        t = t2;
    }
    let t = cache.set(b"post-crash", b"alive", t).unwrap();
    let (v, _) = cache.get(b"post-crash", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"alive"[..]), "{label}@{point}: dead after recovery");
}

/// Sets `count` keys `prefix-000..` sized so four tile a region, then
/// flushes: ends exactly on a seal boundary. Fixed-width keys keep every
/// object the same size, so batches always align with region boundaries.
fn seal_batch(cache: &LogCache, script: &mut Script, prefix: &str, count: u32, obj_len: usize) {
    let val_len = obj_len - 12 - (prefix.len() + 4); // OBJECT_HEADER + "<prefix>-NNN"
    for i in 0..count {
        let key = format!("{prefix}-{i:03}");
        script.t = cache
            .set(key.as_bytes(), &sweep_value(&key, val_len), script.t)
            .unwrap();
        script.ack(key, val_len);
    }
    script.t = cache.flush(script.t).unwrap();
}

#[test]
fn block_cache_crash_point_sweep() {
    // 4-region device; Fifo makes the eviction victim (the oldest seal,
    // batch "a") deterministic at every crash point.
    let config = CacheConfig {
        eviction: EvictionPolicy::Fifo,
        clean_region_watermark: 1,
        ..CacheConfig::small_test()
    };
    let region = 4 * BLOCK_SIZE;
    let total_points = 10;
    for point in 0..=total_points {
        let ram = Arc::new(RamDisk::new(16));
        let backend = Arc::new(BlockBackend::new(
            Arc::clone(&ram) as Arc<dyn BlockDevice>,
            region,
        ));
        let cache =
            Arc::new(LogCache::new(Arc::clone(&backend) as _, config.clone()).unwrap());
        let maintainer = Maintainer::new(Arc::clone(&cache));
        let mut s = Script::default();
        let steps: Vec<BlockStep<'_>> = vec![
            // 1: seal a — durable only after the next sync.
            Box::new(|c, _, _, s| seal_batch(c, s, "a", 4, BLOCK_SIZE)),
            // 2: sync — batch a is now acknowledged durable.
            Box::new(|_, _, ram, s| {
                s.t = ram.sync(s.t).unwrap();
                let a: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("a-")).cloned().collect();
                s.require_all(&a);
            }),
            // 3: seal b.
            Box::new(|c, _, _, s| seal_batch(c, s, "b", 4, BLOCK_SIZE)),
            // 4: sync.
            Box::new(|_, _, ram, s| {
                s.t = ram.sync(s.t).unwrap();
                let b: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("b-")).cloned().collect();
                s.require_all(&b);
            }),
            // 5: seal c and d — the device is now full.
            Box::new(|c, _, _, s| {
                seal_batch(c, s, "c", 4, BLOCK_SIZE);
                seal_batch(c, s, "d", 4, BLOCK_SIZE);
            }),
            // 6: sync.
            Box::new(|_, _, ram, s| {
                s.t = ram.sync(s.t).unwrap();
                let cd: Vec<_> = s
                    .acked
                    .iter()
                    .filter(|(k, _)| k.starts_with("c-") || k.starts_with("d-"))
                    .cloned()
                    .collect();
                s.require_all(&cd);
            }),
            // 7: reset — the maintainer evicts the oldest region (batch a).
            // The trim is volatile until the next sync: a crash here may
            // resurrect batch a, which is legal (exact bytes), but batch a
            // is no longer *required*.
            Box::new(|_, m, _, s| {
                let evicted = m.run_once(s.t).unwrap();
                assert_eq!(evicted.len(), 1, "expected exactly one eviction");
                s.unrequire_prefix("a-");
            }),
            // 8: sync — the reset is durable.
            Box::new(|_, _, ram, s| s.t = ram.sync(s.t).unwrap()),
            // 9: seal e into the recycled slot.
            Box::new(|c, _, _, s| seal_batch(c, s, "e", 4, BLOCK_SIZE)),
            // 10: sync.
            Box::new(|_, _, ram, s| {
                s.t = ram.sync(s.t).unwrap();
                let e: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("e-")).cloned().collect();
                s.require_all(&e);
            }),
        ];
        assert_eq!(steps.len(), total_points);
        for step in steps.iter().take(point) {
            step(&cache, &maintainer, &ram, &mut s);
        }
        // Power cut: unsynced writes vanish, the DRAM index dies with the
        // process, and recovery gets nothing but the device.
        ram.power_cut();
        drop(cache);
        let backend2 = Arc::new(BlockBackend::new(
            Arc::clone(&ram) as Arc<dyn BlockDevice>,
            region,
        ));
        let recovered =
            recovery::recover_or_scan(backend2, config.clone(), None, s.t).unwrap();
        check_recovered("Block-Cache", point, &recovered, &s);
    }
}

/// Shared script for the two ZNS-native schemes: seal, fill, reset,
/// reuse, degrade, scrub mid-salvage, flush. ZNS writes are durable at
/// completion, so a crash is "lose the DRAM index, keep the device".
fn zns_crash_point_sweep(
    label: &str,
    make: impl Fn() -> (Arc<ZnsDevice>, Arc<dyn RegionBackend>),
    config: &CacheConfig,
    filler_regions: u32,
    evict_at_reset: usize,
) {
    let total_points = 8;
    for point in 0..=total_points {
        let (dev, backend) = make();
        let cache = Arc::new(LogCache::new(Arc::clone(&backend), config.clone()).unwrap());
        let obj_len = backend.region_size() / 4;
        let mut s = Script::default();
        let steps: Vec<ZnsStep<'_>> = vec![
            // 1: seal a — durable immediately on ZNS.
            Box::new(|c, s| {
                seal_batch(c, s, "a", 4, obj_len);
                let a: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("a-")).cloned().collect();
                s.require_all(&a);
            }),
            // 2: seal b.
            Box::new(|c, s| {
                seal_batch(c, s, "b", 4, obj_len);
                let b: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("b-")).cloned().collect();
                s.require_all(&b);
            }),
            // 3: fill most of the device with filler seals, leaving just
            // enough slack that a later salvage pass never has to evict a
            // required batch to find room.
            Box::new(|c, s| {
                seal_batch(c, s, "f", filler_regions * 4, obj_len);
                let f: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("f-")).cloned().collect();
                s.require_all(&f);
            }),
            // 4: reset — eviction reclaims the oldest seal (batch a).
            Box::new(move |c, s| {
                let evicted = c.maintain(s.t).unwrap();
                assert_eq!(evicted.len(), evict_at_reset, "unexpected eviction count");
                s.unrequire_prefix("a-");
            }),
            // 5: seal e into the recycled slot.
            Box::new(|c, s| {
                seal_batch(c, s, "e", 4, obj_len);
                let e: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("e-")).cloned().collect();
                s.require_all(&e);
            }),
            // 6: a full zone falls read-only. Nothing is lost — read-only
            // media still serves — so the required set is unchanged.
            Box::new({
                let dev = Arc::clone(&dev);
                move |_, s| {
                    let z = (0..dev.num_zones())
                        .map(ZoneId)
                        .find(|&z| dev.zone_state(z) == Ok(ZoneState::Full))
                        .expect("no full zone to degrade");
                    dev.degrade(z, false, s.t).unwrap();
                }
            }),
            // 7: MID-SALVAGE — the scrubber has re-inserted the read-only
            // zone's live objects into the (volatile) active buffer and
            // retired the source region. A crash here must still recover
            // every object from the original read-only media.
            Box::new(|c, s| {
                let report = c.scrub(s.t).unwrap();
                assert!(report.salvaged_objects > 0, "salvage never ran");
                s.t = report.done;
            }),
            // 8: the salvage copies land; both copies now hold the bytes.
            Box::new(|c, s| s.t = c.flush(s.t).unwrap()),
        ];
        assert_eq!(steps.len(), total_points);
        for step in steps.iter().take(point) {
            step(&cache, &mut s);
        }
        drop(cache);
        let recovered =
            recovery::recover_or_scan(Arc::clone(&backend), config.clone(), None, s.t)
                .unwrap();
        check_recovered(label, point, &recovered, &s);
    }
}

#[test]
fn zone_cache_crash_point_sweep() {
    // 16 zones: a + b + 12 fillers leaves 2 free; the watermark of 3 makes
    // the reset boundary evict exactly one region (batch a, Fifo), and the
    // slack absorbs the salvage re-insertions without touching batch b.
    let config = CacheConfig {
        eviction: EvictionPolicy::Fifo,
        clean_region_watermark: 3,
        ..CacheConfig::small_test()
    };
    zns_crash_point_sweep(
        "Zone-Cache",
        || {
            let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
            let backend = Arc::new(ZoneBackend::new(Arc::clone(&dev)));
            (dev, backend as Arc<dyn RegionBackend>)
        },
        &config,
        12,
        1,
    );
}

#[test]
fn region_cache_crash_point_sweep() {
    // 96 user regions over 16 zones: a + b + 84 fillers leaves 10 free;
    // the watermark of 11 forces exactly one eviction at the reset
    // boundary, and a salvaged zone (up to 8 slots) fits in the slack.
    let config = CacheConfig {
        eviction: EvictionPolicy::Fifo,
        clean_region_watermark: 11,
        ..CacheConfig::small_test()
    };
    zns_crash_point_sweep(
        "Region-Cache",
        || {
            let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
            let backend =
                Arc::new(MiddleLayerBackend::new(Arc::clone(&dev), MiddleConfig::small_test()));
            (dev, backend as Arc<dyn RegionBackend>)
        },
        &config,
        84,
        1,
    );
}

#[test]
fn file_cache_crash_point_sweep() {
    // The filesystem scheme: the cache index dies, the file (and the
    // filesystem under it) survive. Sealed regions are pwrites into the
    // cache file; the scan walks the file's regions back.
    let config = CacheConfig {
        eviction: EvictionPolicy::Fifo,
        clean_region_watermark: 1,
        ..CacheConfig::small_test()
    };
    let region = 4 * BLOCK_SIZE;
    let total_points = 5;
    for point in 0..=total_points {
        let fs_config = FsConfig::small_test();
        let dev = Arc::new(ZnsDevice::new(fs_config.zns.clone()));
        let meta = Arc::new(RamDisk::new(fs_config.meta_blocks));
        let fs = Arc::new(FileSystem::format_on(Arc::clone(&dev), meta, &fs_config));
        let backend = Arc::new(
            FileBackend::create(Arc::clone(&fs), "cache", region, 8, Nanos::ZERO).unwrap(),
        );
        let cache = Arc::new(
            LogCache::new(Arc::clone(&backend) as Arc<dyn RegionBackend>, config.clone())
                .unwrap(),
        );
        let mut s = Script::default();
        let steps: Vec<ZnsStep<'_>> = vec![
            // 1: seal a.
            Box::new(|c, s| {
                seal_batch(c, s, "a", 4, BLOCK_SIZE);
                let a: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("a-")).cloned().collect();
                s.require_all(&a);
            }),
            // 2: seal b.
            Box::new(|c, s| {
                seal_batch(c, s, "b", 4, BLOCK_SIZE);
                let b: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("b-")).cloned().collect();
                s.require_all(&b);
            }),
            // 3: fill the remaining six regions.
            Box::new(|c, s| {
                seal_batch(c, s, "f", 24, BLOCK_SIZE);
                let f: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("f-")).cloned().collect();
                s.require_all(&f);
            }),
            // 4: reset — evict the oldest seal (batch a).
            Box::new(|c, s| {
                let evicted = c.maintain(s.t).unwrap();
                assert_eq!(evicted.len(), 1);
                s.unrequire_prefix("a-");
            }),
            // 5: seal e into the recycled region.
            Box::new(|c, s| {
                seal_batch(c, s, "e", 4, BLOCK_SIZE);
                let e: Vec<_> =
                    s.acked.iter().filter(|(k, _)| k.starts_with("e-")).cloned().collect();
                s.require_all(&e);
            }),
        ];
        assert_eq!(steps.len(), total_points);
        for step in steps.iter().take(point) {
            step(&cache, &mut s);
        }
        drop(cache);
        let recovered = recovery::recover_or_scan(
            Arc::clone(&backend) as Arc<dyn RegionBackend>,
            config.clone(),
            None,
            s.t,
        )
        .unwrap();
        check_recovered("File-Cache", point, &recovered, &s);
    }
}

#[test]
fn scan_recovery_quarantines_degraded_zones() {
    // A zone that degrades while the cache is down must not re-enter
    // service on recovery: the free pool once resurrected dead zones and
    // the first write cycled onto one failed with a device error.
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let backend = Arc::new(ZoneBackend::new(Arc::clone(&dev)));
    let cache = LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap();
    let obj_len = backend.region_size() / 4;
    let val_len = obj_len - 12 - 6;
    let mut t = Nanos::ZERO;
    for i in 0..8u32 {
        let key = format!("dz-{i:03}");
        t = cache.set(key.as_bytes(), &sweep_value(&key, val_len), t).unwrap();
    }
    t = cache.flush(t).unwrap();

    // One sealed zone dies outright; one still-empty zone falls read-only
    // (unwritable with nothing to salvage — it must be retired, not freed).
    let full: Vec<ZoneId> = (0..dev.num_zones())
        .map(ZoneId)
        .filter(|&z| dev.zone_state(z) == Ok(ZoneState::Full))
        .collect();
    let empty: Vec<ZoneId> = (0..dev.num_zones())
        .map(ZoneId)
        .filter(|&z| dev.zone_state(z) == Ok(ZoneState::Empty))
        .collect();
    dev.degrade(full[0], true, t).unwrap();
    dev.degrade(empty[0], false, t).unwrap();
    drop(cache);

    let cache =
        recovery::recover_or_scan(backend.clone(), CacheConfig::small_test(), None, t).unwrap();
    assert!(
        cache.metrics().quarantined_regions >= 2,
        "degraded zones re-entered service after scan recovery"
    );

    // Cycle writes through every remaining slot — more regions' worth than
    // the device has zones. Every set and flush must succeed: nothing may
    // ever be allocated on, or evicted onto, dead media.
    for i in 0..(dev.num_zones() * 4) {
        let key = format!("nw-{i:03}");
        t = cache.set(key.as_bytes(), &sweep_value(&key, val_len), t).unwrap();
    }
    t = cache.flush(t).unwrap();

    // Original keys still answer exact-or-miss (the healthy sealed zone
    // may have been legitimately evicted by the write storm; what matters
    // is no error and no wrong bytes).
    for i in 0..8u32 {
        let key = format!("dz-{i:03}");
        let (v, t2) = cache.get(key.as_bytes(), t).unwrap();
        if let Some(got) = v {
            assert_eq!(got.as_ref(), &sweep_value(&key, val_len)[..]);
        }
        t = t2;
    }
}
