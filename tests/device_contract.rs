//! The `BlockDevice` contract, exercised uniformly across every
//! block-addressed device in the workspace (RAM disk, FTL SSD, HDD):
//! read-your-writes, bounds enforcement, monotonic time, trim behaviour.

use std::sync::Arc;

use zns_cache_repro::ftl::{BlockSsd, FtlConfig};
use zns_cache_repro::hdd::{Hdd, HddConfig};
use zns_cache_repro::sim::{BlockDevice, Lba, Nanos, RamDisk, BLOCK_SIZE};

fn devices() -> Vec<(&'static str, Arc<dyn BlockDevice>)> {
    vec![
        ("ramdisk", Arc::new(RamDisk::new(256))),
        ("ftl-ssd", Arc::new(BlockSsd::new(FtlConfig::small_test()))),
        ("hdd", Arc::new(Hdd::new(HddConfig::small_test()))),
    ]
}

#[test]
fn read_your_writes_across_devices() {
    for (name, dev) in devices() {
        let mut t = Nanos::ZERO;
        for lba in [0u64, 7, 100] {
            let data = vec![(lba % 251) as u8 + 1; 2 * BLOCK_SIZE];
            t = dev.write(Lba(lba), &data, t).unwrap_or_else(|e| {
                panic!("{name}: write failed: {e}");
            });
            let mut out = vec![0u8; 2 * BLOCK_SIZE];
            t = dev.read(Lba(lba), &mut out, t).unwrap();
            assert_eq!(out, data, "{name}: lba {lba} corrupt");
        }
    }
}

#[test]
fn completion_times_are_monotone_per_stream() {
    for (name, dev) in devices() {
        let mut t = Nanos::ZERO;
        let data = vec![1u8; BLOCK_SIZE];
        for lba in 0..20u64 {
            let t2 = dev.write(Lba(lba), &data, t).unwrap();
            assert!(t2 >= t, "{name}: completion went backwards");
            t = t2;
        }
    }
}

#[test]
fn out_of_range_rejected_without_side_effects() {
    for (name, dev) in devices() {
        let cap = dev.block_count();
        let data = vec![1u8; BLOCK_SIZE];
        assert!(dev.write(Lba(cap), &data, Nanos::ZERO).is_err(), "{name}");
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert!(dev.read(Lba(cap), &mut buf, Nanos::ZERO).is_err(), "{name}");
        // A straddling request is rejected wholesale.
        let two = vec![1u8; 2 * BLOCK_SIZE];
        assert!(dev.write(Lba(cap - 1), &two, Nanos::ZERO).is_err(), "{name}");
    }
}

#[test]
fn misaligned_buffers_rejected() {
    for (name, dev) in devices() {
        assert!(
            dev.write(Lba(0), &[0u8; 100], Nanos::ZERO).is_err(),
            "{name}: accepted misaligned write"
        );
        let mut buf = [0u8; 10];
        assert!(
            dev.read(Lba(0), &mut buf, Nanos::ZERO).is_err(),
            "{name}: accepted misaligned read"
        );
    }
}

#[test]
fn trim_then_read_returns_zeros_on_mapping_devices() {
    // Only the FTL interprets trim; it must read back zeros afterwards.
    let dev = BlockSsd::new(FtlConfig::small_test());
    let data = vec![0x77u8; BLOCK_SIZE];
    let t = dev.write(Lba(3), &data, Nanos::ZERO).unwrap();
    let t = dev.trim(Lba(3), 1, t).unwrap();
    let mut out = vec![1u8; BLOCK_SIZE];
    dev.read(Lba(3), &mut out, t).unwrap();
    assert!(out.iter().all(|&b| b == 0));
}

#[test]
fn capacity_bytes_consistent() {
    for (name, dev) in devices() {
        assert_eq!(
            dev.capacity_bytes(),
            dev.block_count() * BLOCK_SIZE as u64,
            "{name}"
        );
    }
}
