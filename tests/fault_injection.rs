//! Failure-path behaviour: injected device faults must surface as typed
//! errors, never corrupt state, and the system must keep working once the
//! fault clears.

use std::sync::Arc;

use zns_cache_repro::lsm::{Db, DbConfig};
use zns_cache_repro::sim::fault::{FaultKind, FaultyDevice};
use zns_cache_repro::sim::{Nanos, RamDisk};
use zns_cache_repro::zns_cache::backend::BlockBackend;
use zns_cache_repro::zns_cache::{CacheConfig, CacheError, LogCache};

fn faulty_cache() -> (LogCache, Arc<FaultyDevice>) {
    let dev = Arc::new(FaultyDevice::new(Arc::new(RamDisk::new(256))));
    let backend = Arc::new(BlockBackend::new(dev.clone(), 4 * 4096));
    let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
    (cache, dev)
}

#[test]
fn flush_write_fault_surfaces_and_cache_recovers() {
    let (cache, dev) = faulty_cache();
    let mut t = Nanos::ZERO;
    // Fill most of one region buffer.
    let value = vec![1u8; 3000];
    for i in 0..4u32 {
        t = cache.set(format!("a{i}").as_bytes(), &value, t).unwrap();
    }
    // The next buffer rollover performs the region write: make it fail.
    dev.arm(FaultKind::Writes, 1);
    let mut failed = false;
    for i in 0..8u32 {
        match cache.set(format!("b{i}").as_bytes(), &value, t) {
            Ok(t2) => t = t2,
            Err(CacheError::Io(msg)) => {
                assert!(msg.contains("injected"), "unexpected error: {msg}");
                failed = true;
                break;
            }
            Err(other) => panic!("wrong error type: {other}"),
        }
    }
    assert!(failed, "injected write fault never surfaced");
    assert_eq!(dev.injected(), 1);

    // Fault cleared: the cache continues to serve and accept data.
    dev.disarm();
    let t2 = cache.set(b"after", b"ok", t).unwrap();
    let (v, _) = cache.get(b"after", t2).unwrap();
    assert_eq!(v.as_deref(), Some(&b"ok"[..]));
}

#[test]
fn read_fault_surfaces_on_flash_hit() {
    let (cache, dev) = faulty_cache();
    let t = cache.set(b"k", b"v", Nanos::ZERO).unwrap();
    let t = cache.flush(t).unwrap();
    dev.arm(FaultKind::Reads, 1);
    match cache.get(b"k", t) {
        Err(CacheError::Io(msg)) => assert!(msg.contains("injected")),
        other => panic!("expected injected read error, got {other:?}"),
    }
    dev.disarm();
    let (v, _) = cache.get(b"k", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"v"[..]));
}

#[test]
fn lsm_storage_fault_fails_the_operation_not_the_db() {
    let dev = Arc::new(FaultyDevice::new(Arc::new(RamDisk::new(8192))));
    let db = Db::open(DbConfig {
        dev: dev.clone(),
        ..DbConfig::small_test()
    })
    .unwrap();
    let mut t = Nanos::ZERO;
    for i in 0..50u32 {
        t = db.put(format!("k{i:03}").as_bytes(), b"value", t).unwrap();
    }
    t = db.flush(t).unwrap();

    // Reads failing at the device must propagate as storage errors.
    dev.arm(FaultKind::Reads, 100);
    let err = db.get(b"k001", t);
    assert!(err.is_err(), "device fault swallowed");
    dev.disarm();

    // And the database still answers once the device heals.
    let (v, _) = db.get(b"k001", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"value"[..]));
}
