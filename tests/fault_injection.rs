//! Failure-path behaviour: injected device faults must surface as typed
//! errors, never corrupt state, and the system must keep working once the
//! fault clears.
//!
//! The engine's failure-hardening contract under test:
//!
//! * transient faults (small credit budgets) are absorbed by the bounded
//!   retry policy and never reach the caller;
//! * permanent faults exhaust the retry budget, surface as typed errors,
//!   and quarantine the failing region instead of wedging the cache;
//! * silent corruption (bit flips) is caught by per-object checksums and
//!   served as a miss, never as bad bytes;
//! * all four scheme backends (Block/File/Zone/Region-Cache) ride the same
//!   machinery;
//! * a power cut plus a corrupted snapshot still recovers every durably
//!   written object via device scan.

use std::sync::Arc;

use zns_cache_repro::f2fs_lite::{FileSystem, FsConfig};
use zns_cache_repro::lsm::{Db, DbConfig};
use zns_cache_repro::sim::fault::{FaultInjector, FaultKind, FaultSpec, FaultyDevice};
use zns_cache_repro::sim::{BlockDevice, Nanos, RamDisk, BLOCK_SIZE};
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice};
use zns_cache_repro::zns_cache::backend::{
    BlockBackend, FileBackend, MiddleConfig, MiddleLayerBackend, ZoneBackend,
};
use zns_cache_repro::zns_cache::{recovery, CacheConfig, CacheError, LogCache};

const REGION: usize = 4 * BLOCK_SIZE;

/// Offsets a test's base fault seed so the CI fault matrix
/// (`FAULT_MATRIX_SEED=0..7`, see `.github/workflows/ci.yml`) re-runs the
/// whole file under eight distinct fault-RNG streams. The assertions here
/// are seed-robust by construction: payloads tile regions exactly, so a
/// flipped bit lands in checksummed data wherever the RNG puts it.
fn matrix_seed(base: u64) -> u64 {
    let offset = std::env::var("FAULT_MATRIX_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base + offset * 1_000
}

/// A value sized so one object (12-byte header + 2-byte key + value) fills
/// exactly one 4 KiB block — corruption tests then know any flipped bit
/// lands inside a checksummed object, not in padding.
fn block_value(fill: u8) -> Vec<u8> {
    vec![fill; BLOCK_SIZE - 12 - 2]
}

fn block_cache(disk_blocks: u64, seed: u64) -> (LogCache, Arc<FaultInjector>) {
    let inj = Arc::new(FaultInjector::with_seed(seed));
    let dev = Arc::new(FaultyDevice::with_injector(
        Arc::new(RamDisk::new(disk_blocks)),
        Arc::clone(&inj),
    ));
    let backend = Arc::new(BlockBackend::new(dev, REGION));
    let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
    (cache, inj)
}

#[test]
fn transient_flush_fault_is_absorbed_by_retry() {
    let (cache, inj) = block_cache(256, matrix_seed(7));
    let mut t = Nanos::ZERO;
    for i in 0..3u32 {
        t = cache.set(format!("a{i}").as_bytes(), &vec![1u8; 3000], t).unwrap();
    }
    // One write-fault credit: the flush fails once, the retry lands it.
    inj.push(FaultSpec::fail_writes(1));
    t = cache.flush(t).unwrap();
    let m = cache.metrics();
    assert!(m.retries >= 1, "transient fault did not register a retry");
    assert_eq!(m.retries_exhausted, 0);
    assert_eq!(m.flush_failures, 0);
    assert_eq!(inj.injected(), 1);

    // Everything written before the fault is served from flash.
    for i in 0..3u32 {
        let (v, t2) = cache.get(format!("a{i}").as_bytes(), t).unwrap();
        assert_eq!(v.as_deref(), Some(&vec![1u8; 3000][..]));
        t = t2;
    }
}

#[test]
fn exhausted_write_retries_quarantine_the_region() {
    let (cache, inj) = block_cache(256, matrix_seed(8));
    let mut t = Nanos::ZERO;
    for i in 0..3u32 {
        t = cache.set(format!("a{i}").as_bytes(), &vec![2u8; 3000], t).unwrap();
    }
    // Exactly the retry budget: every attempt fails, the flush gives up.
    inj.push(FaultSpec::fail_writes(3));
    match cache.flush(t) {
        Err(CacheError::Io(msg)) => assert!(msg.contains("injected"), "unexpected error: {msg}"),
        other => panic!("expected exhausted retries to surface Io, got {other:?}"),
    }
    let m = cache.metrics();
    assert_eq!(m.retries, 2, "attempts 2 and 3 are retries");
    assert_eq!(m.retries_exhausted, 1);
    assert_eq!(m.flush_failures, 1);
    assert_eq!(m.quarantined_regions, 1);
    assert_eq!(m.quarantined_bytes, REGION as u64);

    // The buffered objects died with the failed flush: misses, not errors.
    let (v, t2) = cache.get(b"a0", t).unwrap();
    assert!(v.is_none());
    t = t2;

    // Credits exhausted, slot quarantined: the cache keeps working.
    t = cache.set(b"after", b"ok", t).unwrap();
    t = cache.flush(t).unwrap();
    let (v, _) = cache.get(b"after", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"ok"[..]));
}

#[test]
fn read_fault_transient_then_permanent() {
    let (cache, inj) = block_cache(256, matrix_seed(9));
    let t = cache.set(b"k", b"v", Nanos::ZERO).unwrap();
    let t = cache.flush(t).unwrap();

    // Transient: one credit is absorbed by the retry loop.
    inj.push(FaultSpec::fail_reads(1));
    let (v, t) = cache.get(b"k", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"v"[..]));
    assert!(cache.metrics().retries >= 1);

    // Permanent: the budget exhausts and the error surfaces, typed.
    inj.push(FaultSpec::fail_reads(FaultSpec::PERMANENT));
    match cache.get(b"k", t) {
        Err(CacheError::Io(msg)) => assert!(msg.contains("injected")),
        other => panic!("expected injected read error, got {other:?}"),
    }
    assert!(cache.metrics().retries_exhausted >= 1);

    // The fault clears and the entry was never invalidated.
    inj.clear();
    let (v, _) = cache.get(b"k", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"v"[..]));
}

#[test]
fn corrupt_read_is_served_as_checksummed_miss() {
    let (cache, inj) = block_cache(256, matrix_seed(10));
    let value = block_value(0xA5);
    let mut t = Nanos::ZERO;
    for i in 0..4u32 {
        t = cache.set(format!("c{i}").as_bytes(), &value, t).unwrap();
    }
    t = cache.flush(t).unwrap();

    // One read returns a flipped bit: the checksum catches it, the entry
    // is invalidated, and the caller sees a miss — never corrupt bytes.
    inj.push(FaultSpec::corrupt_reads(1));
    let (v, t2) = cache.get(b"c0", t).unwrap();
    assert!(v.is_none(), "corrupt object must be a miss");
    assert_eq!(cache.metrics().corrupt_reads, 1);
    t = t2;

    // Invalidated: a clean miss now, not an error or a stale value.
    let (v, t2) = cache.get(b"c0", t).unwrap();
    assert!(v.is_none());
    t = t2;

    // Unaffected neighbours still verify and serve.
    for i in 1..4u32 {
        let (v, t2) = cache.get(format!("c{i}").as_bytes(), t).unwrap();
        assert_eq!(v.as_deref(), Some(&value[..]));
        t = t2;
    }
}

#[test]
fn corrupt_flush_is_detected_on_later_reads() {
    let (cache, inj) = block_cache(256, matrix_seed(11));
    let value = block_value(0x3C);
    let mut t = Nanos::ZERO;
    // Four block-sized objects fill the region image exactly: a flipped
    // bit in the flush payload must land inside some checksummed object.
    for i in 0..4u32 {
        t = cache.set(format!("d{i}").as_bytes(), &value, t).unwrap();
    }
    inj.push(FaultSpec::corrupt_writes(1));
    t = cache.flush(t).unwrap();

    let mut misses = 0;
    for i in 0..4u32 {
        let (v, t2) = cache.get(format!("d{i}").as_bytes(), t).unwrap();
        match v {
            Some(got) => assert_eq!(&got[..], &value[..], "served bytes must verify"),
            None => misses += 1,
        }
        t = t2;
    }
    assert_eq!(misses, 1, "exactly one object took the flipped bit");
    assert_eq!(cache.metrics().corrupt_reads, 1);
}

#[test]
fn trim_fault_quarantines_the_victim_and_eviction_moves_on() {
    // 16 blocks = 4 regions: filling the cache forces region eviction.
    let (cache, inj) = block_cache(16, matrix_seed(12));
    // Permanent-ish trim failure for one full retry budget: the first
    // eviction victim is quarantined, the next victim serves the slot.
    inj.push(FaultSpec::fail_trims(3));
    let mut t = Nanos::ZERO;
    for i in 0..40u32 {
        t = cache.set(format!("t{i:02}").as_bytes(), &vec![5u8; 3000], t).unwrap();
    }
    let m = cache.metrics();
    assert_eq!(m.quarantined_regions, 1, "failed discard must quarantine");
    assert_eq!(m.quarantined_bytes, REGION as u64);
    assert_eq!(m.retries_exhausted, 1);
    // The cache shrank but never stopped: recent inserts are readable.
    let (v, _) = cache.get(b"t39", t).unwrap();
    assert_eq!(v.as_deref(), Some(&vec![5u8; 3000][..]));
}

#[test]
fn torn_zone_write_retries_clean_then_quarantines_when_persistent() {
    let inj = Arc::new(FaultInjector::with_seed(matrix_seed(13)));
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()).with_fault_injector(Arc::clone(&inj)));
    let backend = Arc::new(ZoneBackend::new(dev));
    let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();

    let mut t = Nanos::ZERO;
    for i in 0..3u32 {
        t = cache.set(format!("z{i}").as_bytes(), &vec![6u8; 3000], t).unwrap();
    }
    // One torn append is transient: it parks the write pointer mid-zone,
    // but the flush's retry resets the debris and lands the full image —
    // no region slot is lost, no data either.
    inj.push(FaultSpec::torn_writes(1, 0.5));
    t = cache.flush(t).expect("single tear must be absorbed by the retry");
    let m = cache.metrics();
    assert!(m.retries >= 1, "the tear must have cost a retry");
    assert_eq!(m.flush_failures, 0);
    assert_eq!(m.quarantined_regions, 0);
    for i in 0..3u32 {
        let (v, t2) = cache.get(format!("z{i}").as_bytes(), t).unwrap();
        assert_eq!(v.as_deref(), Some(&vec![6u8; 3000][..]), "z{i} after tear");
        t = t2;
    }

    // Tearing every attempt of the retry budget is a dying zone: the
    // engine must give up and quarantine it.
    let attempts = cache.config().retry.attempts.max(1) as u64;
    for i in 0..3u32 {
        t = cache.set(format!("q{i}").as_bytes(), &vec![7u8; 3000], t).unwrap();
    }
    inj.push(FaultSpec::torn_writes(attempts, 0.5));
    assert!(cache.flush(t).is_err(), "persistent tearing must fail the flush");
    let m = cache.metrics();
    assert_eq!(m.flush_failures, 1);
    assert_eq!(m.quarantined_regions, 1);

    // One dead zone does not wedge the cache: new data lands elsewhere.
    t = cache.set(b"fresh", b"data", t).unwrap();
    t = cache.flush(t).unwrap();
    let (v, _) = cache.get(b"fresh", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"data"[..]));
}

/// One cache per scheme, each wired to its own fault plan.
fn all_scheme_rigs(now: Nanos) -> Vec<(&'static str, LogCache, Arc<FaultInjector>)> {
    let mut rigs = Vec::new();

    let (cache, inj) = block_cache(256, matrix_seed(21));
    rigs.push(("Block-Cache", cache, inj));

    {
        let inj = Arc::new(FaultInjector::with_seed(matrix_seed(22)));
        let config = FsConfig::small_test();
        let dev =
            Arc::new(ZnsDevice::new(config.zns.clone()).with_fault_injector(Arc::clone(&inj)));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        let fs = Arc::new(FileSystem::format_on(dev, meta, &config));
        let backend = Arc::new(FileBackend::create(fs, "cache", REGION, 8, now).unwrap());
        let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
        rigs.push(("File-Cache", cache, inj));
    }
    {
        let inj = Arc::new(FaultInjector::with_seed(matrix_seed(23)));
        let dev =
            Arc::new(ZnsDevice::new(ZnsConfig::small_test()).with_fault_injector(Arc::clone(&inj)));
        let backend = Arc::new(ZoneBackend::new(dev));
        let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
        rigs.push(("Zone-Cache", cache, inj));
    }
    {
        let inj = Arc::new(FaultInjector::with_seed(matrix_seed(24)));
        let dev =
            Arc::new(ZnsDevice::new(ZnsConfig::small_test()).with_fault_injector(Arc::clone(&inj)));
        let backend = Arc::new(MiddleLayerBackend::new(dev, MiddleConfig::small_test()));
        let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
        rigs.push(("Region-Cache", cache, inj));
    }
    rigs
}

#[test]
fn transient_faults_are_absorbed_across_all_four_schemes() {
    for (label, cache, inj) in all_scheme_rigs(Nanos::ZERO) {
        let mut t = Nanos::ZERO;
        let value = vec![9u8; 3000];
        for i in 0..3u32 {
            t = cache
                .set(format!("k{i}").as_bytes(), &value, t)
                .unwrap_or_else(|e| panic!("{label}: set failed: {e}"));
        }
        t = cache.flush(t).unwrap_or_else(|e| panic!("{label}: flush failed: {e}"));

        // Transient read fault: absorbed, the value still arrives.
        inj.push(FaultSpec::fail_reads(1));
        let (v, t2) = cache
            .get(b"k0", t)
            .unwrap_or_else(|e| panic!("{label}: faulted get failed: {e}"));
        assert_eq!(v.as_deref(), Some(&value[..]), "{label}: wrong bytes");
        t = t2;

        // Transient write fault: the next flush retries and lands.
        inj.push(FaultSpec::fail_writes(1));
        t = cache
            .set(b"w", &value, t)
            .unwrap_or_else(|e| panic!("{label}: set after arming failed: {e}"));
        t = cache.flush(t).unwrap_or_else(|e| panic!("{label}: faulted flush failed: {e}"));
        let (v, _) = cache
            .get(b"w", t)
            .unwrap_or_else(|e| panic!("{label}: get after flush failed: {e}"));
        assert_eq!(v.as_deref(), Some(&value[..]), "{label}: wrong bytes after retry");

        let m = cache.metrics();
        assert!(m.retries >= 2, "{label}: retries not counted ({})", m.retries);
        assert_eq!(m.retries_exhausted, 0, "{label}: budget wrongly exhausted");
        assert!(inj.injected() >= 2, "{label}: faults never fired");
    }
}

#[test]
fn power_cut_with_corrupt_snapshot_recovers_by_device_scan() {
    let ram = Arc::new(RamDisk::new(64));
    let backend = Arc::new(BlockBackend::new(
        Arc::clone(&ram) as Arc<dyn BlockDevice>,
        REGION,
    ));
    let cache = LogCache::new(Arc::clone(&backend) as _, CacheConfig::small_test()).unwrap();

    let value = vec![4u8; 3000];
    let mut t = Nanos::ZERO;
    // Durable batch: flushed to the device AND synced.
    for i in 0..8u32 {
        t = cache.set(format!("dur{i}").as_bytes(), &value, t).unwrap();
    }
    t = cache.flush(t).unwrap();
    t = ram.sync(t).unwrap();
    let durable_objects = cache.metrics().flushes; // flushed regions so far

    // Volatile batch: written but never synced — a power cut drops it.
    for i in 0..4u32 {
        t = cache.set(format!("vol{i}").as_bytes(), &value, t).unwrap();
    }
    t = cache.flush(t).unwrap();

    // The index snapshot itself is damaged in the outage.
    let (mut snap, t) = recovery::snapshot(&cache, t).unwrap();
    snap[10] ^= 0xFF;
    ram.power_cut();

    // Recovery: the corrupt snapshot is rejected, the device scan rebuilds
    // the index from whatever survived, and every durable entry is served.
    let backend2 = Arc::new(BlockBackend::new(Arc::clone(&ram) as Arc<dyn BlockDevice>, REGION));
    let recovered =
        recovery::recover_or_scan(backend2, CacheConfig::small_test(), Some(&snap), t).unwrap();
    assert_eq!(recovered.metrics().scan_recovered_objects, 8);
    assert!(durable_objects >= 1);

    let mut t2 = t;
    for i in 0..8u32 {
        let (v, t3) = recovered.get(format!("dur{i}").as_bytes(), t2).unwrap();
        assert_eq!(v.as_deref(), Some(&value[..]), "durable dur{i} lost");
        t2 = t3;
    }
    // Unsynced writes are gone — as misses, never as errors or panics.
    for i in 0..4u32 {
        let (v, t3) = recovered.get(format!("vol{i}").as_bytes(), t2).unwrap();
        assert!(v.is_none(), "vol{i} should not survive the power cut");
        t2 = t3;
    }
    // The rebuilt cache is live: it accepts and serves new writes.
    let t3 = recovered.set(b"post", b"recovery", t2).unwrap();
    let (v, _) = recovered.get(b"post", t3).unwrap();
    assert_eq!(v.as_deref(), Some(&b"recovery"[..]));
}

#[test]
fn lsm_storage_fault_fails_the_operation_not_the_db() {
    let dev = Arc::new(FaultyDevice::new(Arc::new(RamDisk::new(8192))));
    let db = Db::open(DbConfig {
        dev: dev.clone(),
        ..DbConfig::small_test()
    })
    .unwrap();
    let mut t = Nanos::ZERO;
    for i in 0..50u32 {
        t = db.put(format!("k{i:03}").as_bytes(), b"value", t).unwrap();
    }
    t = db.flush(t).unwrap();

    // Reads failing at the device must propagate as storage errors.
    dev.arm(FaultKind::Reads, 100);
    let err = db.get(b"k001", t);
    assert!(err.is_err(), "device fault swallowed");
    dev.disarm();

    // And the database still answers once the device heals.
    let (v, _) = db.get(b"k001", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"value"[..]));
}

#[test]
fn power_cut_during_maintainer_eviction_recovers_by_scan() {
    // A power cut lands inside the maintainer's seal→reset window: the
    // victim region's index entries are gone from DRAM, its trim has been
    // issued (after absorbing a transient trim fault) but not yet synced,
    // and a fresh region has already been sealed over another slot. The
    // scan must recover every durable object exactly — including the
    // legally-resurrected victim, whose unsynced trim the outage reverted.
    let inj = Arc::new(FaultInjector::with_seed(matrix_seed(41)));
    let ram = Arc::new(RamDisk::new(16)); // 4 regions
    let dev = Arc::new(FaultyDevice::with_injector(
        Arc::clone(&ram) as Arc<dyn BlockDevice>,
        Arc::clone(&inj),
    ));
    let config = CacheConfig {
        clean_region_watermark: 1,
        ..CacheConfig::small_test()
    };
    let backend = Arc::new(BlockBackend::new(dev, REGION));
    let cache = Arc::new(LogCache::new(backend, config.clone()).unwrap());
    let maintainer = zns_cache_repro::zns_cache::Maintainer::new(Arc::clone(&cache));

    // Fill all four regions and make them durable. Three-byte keys, so
    // each object tiles exactly one 4 KiB block.
    let value = vec![0x5Au8; BLOCK_SIZE - 12 - 3];
    let mut t = Nanos::ZERO;
    for i in 0..16u32 {
        t = cache.set(format!("m{i:02}").as_bytes(), &value, t).unwrap();
    }
    t = cache.flush(t).unwrap();
    t = ram.sync(t).unwrap();

    // Background eviction with a transient trim fault in the window: the
    // retry absorbs it, exactly one victim is reclaimed.
    inj.push(FaultSpec::fail_trims(1));
    let evicted = maintainer.run_once(t).unwrap();
    assert_eq!(evicted.len(), 1, "watermark of 1 must evict one region");
    let m = cache.metrics();
    assert!(m.retries >= 1, "trim fault never retried");
    assert_eq!(m.maintainer_evictions, 1);

    // Power cut before the trim ever syncs; the DRAM index dies too.
    ram.power_cut();
    drop(cache);

    let backend2 = Arc::new(BlockBackend::new(
        Arc::clone(&ram) as Arc<dyn BlockDevice>,
        REGION,
    ));
    let recovered = recovery::recover_or_scan(backend2, config, None, t).unwrap();
    // The unsynced trim was rolled back: all 16 durable objects — the 12
    // survivors and the evicted victim's 4 — scan back with exact bytes.
    assert_eq!(recovered.metrics().scan_recovered_objects, 16);
    let mut t2 = t;
    for i in 0..16u32 {
        let (v, t3) = recovered.get(format!("m{i:02}").as_bytes(), t2).unwrap();
        assert_eq!(v.as_deref(), Some(&value[..]), "m{i:02} lost or corrupt after outage");
        t2 = t3;
    }
    // And the recovered cache still evicts and writes normally.
    let t3 = recovered.set(b"fresh", b"write", t2).unwrap();
    let (v, _) = recovered.get(b"fresh", t3).unwrap();
    assert_eq!(v.as_deref(), Some(&b"write"[..]));
}
