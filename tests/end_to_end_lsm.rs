//! The full §4.2 stack as an integration test: mini-RocksDB on the HDD
//! model with each scheme as secondary cache, validated against an
//! in-memory model database.

use std::collections::HashMap;
use std::sync::Arc;

use zns_cache_repro::hdd::{Hdd, HddConfig};
use zns_cache_repro::lsm::{Db, DbConfig, NavySecondary};
use zns_cache_repro::sim::Nanos;
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice};
use zns_cache_repro::zns_cache::backend::MiddleConfig;
use zns_cache_repro::zns_cache::{CacheConfig, Scheme, SchemeCache};

fn flash(scheme: Scheme) -> SchemeCache {
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    match scheme {
        Scheme::Zone => SchemeCache::zone(dev, None, CacheConfig::small_test()).unwrap(),
        Scheme::Region => {
            SchemeCache::region(dev, MiddleConfig::small_test(), CacheConfig::small_test())
                .unwrap()
        }
        other => panic!("test only wires ZNS schemes, got {other}"),
    }
}

fn db_with(flash: &SchemeCache) -> Db {
    Db::open(DbConfig {
        dev: Arc::new(Hdd::new(HddConfig::small_test())),
        secondary: Some(Arc::new(NavySecondary::new(flash.cache.clone()))),
        block_cache_bytes: 8 * 1024, // tiny DRAM so the flash tier works
        ..DbConfig::small_test()
    })
    .unwrap()
}

#[test]
fn lsm_with_flash_secondary_matches_model() {
    for scheme in [Scheme::Zone, Scheme::Region] {
        let fc = flash(scheme);
        let db = db_with(&fc);
        let mut model: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
        let mut t = Nanos::ZERO;

        // Deterministic mixed workload: puts, overwrites, deletes.
        for i in 0..3_000u32 {
            let key = format!("key{:05}", (i * 17) % 800).into_bytes();
            match i % 7 {
                6 => {
                    t = db.delete(&key, t).unwrap();
                    model.insert(key, None);
                }
                _ => {
                    let value = format!("value-{i}").into_bytes();
                    t = db.put(&key, &value, t).unwrap();
                    model.insert(key, Some(value));
                }
            }
        }
        t = db.flush(t).unwrap();

        // Every model entry must agree — through DRAM, flash, or HDD.
        for (key, expect) in &model {
            let (got, t2) = db.get(key, t).unwrap();
            t = t2;
            assert_eq!(
                got.as_deref(),
                expect.as_deref(),
                "{scheme}: key {} diverged",
                String::from_utf8_lossy(key)
            );
        }
        // The flash tier must actually have participated.
        let m = fc.cache.metrics();
        assert!(m.sets > 0, "{scheme}: no block demotions reached flash");
    }
}

#[test]
fn secondary_cache_hits_reduce_device_reads() {
    let fc = flash(Scheme::Region);
    let db = db_with(&fc);
    let mut t = Nanos::ZERO;
    for i in 0..2_000u32 {
        let key = format!("key{i:05}");
        t = db.put(key.as_bytes(), b"value-payload-xx", t).unwrap();
    }
    t = db.flush(t).unwrap();

    // Two passes over the same keys: the second should be served mostly
    // from the caches.
    let hdd_reads_between = |db: &Db, t0: Nanos| {
        let mut t = t0;
        for i in (0..2_000u32).step_by(13) {
            let key = format!("key{i:05}");
            let (v, t2) = db.get(key.as_bytes(), t).unwrap();
            assert!(v.is_some());
            t = t2;
        }
        t
    };
    t = hdd_reads_between(&db, t);
    let misses_after_first = db.cache_stats().misses;
    hdd_reads_between(&db, t);
    let misses_after_second = db.cache_stats().misses;
    assert!(
        misses_after_second - misses_after_first < misses_after_first / 2 + 1,
        "second pass should mostly hit the cache tiers: {} then {}",
        misses_after_first,
        misses_after_second - misses_after_first
    );
}
