//! Zone-death torture: kill a quarter of the device mid-run and demand the
//! cache neither lies nor wedges.
//!
//! The robustness contract under test (DESIGN.md §7):
//!
//! * zones forced Read-Only or Offline mid-run never cause a wrong byte to
//!   be served — every lookup returns the exact acknowledged value or a
//!   clean miss;
//! * the scrubber salvages live data off read-only zones before they go
//!   dark, so losses stay proportional to *offline* capacity only;
//! * capacity accounting shrinks with the dead zones (quarantined slots
//!   never return to service) and the engine keeps accepting writes;
//! * injected latent corruption is detected — and turned into misses —
//!   within a single scrub cycle;
//! * the conventional Block-Cache rides the same CRC/quarantine machinery
//!   under its own device's failure modes.

use std::sync::Arc;

use zns_cache_repro::f2fs_lite::{FileSystem, FsConfig};
use zns_cache_repro::sim::fault::{FaultInjector, FaultSpec, FaultyDevice};
use zns_cache_repro::sim::{Nanos, RamDisk, BLOCK_SIZE};
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice, ZoneId, ZoneState};
use zns_cache_repro::zns_cache::backend::{
    BlockBackend, FileBackend, MiddleConfig, MiddleLayerBackend, RegionBackend, ZoneBackend,
};
use zns_cache_repro::zns_cache::{CacheConfig, LogCache, Maintainer};

/// Offsets a test's base fault seed so the CI fault matrix
/// (`FAULT_MATRIX_SEED=0..7`, see `.github/workflows/ci.yml`) re-runs the
/// whole file under eight distinct fault-RNG streams.
fn matrix_seed(base: u64) -> u64 {
    let offset = std::env::var("FAULT_MATRIX_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base + offset * 1_000
}

/// Deterministic per-key payload so every lookup can verify exact bytes.
fn value_for(key: &str, len: usize) -> Vec<u8> {
    let seed = key.bytes().fold(0u8, |a, b| a.wrapping_mul(31).wrapping_add(b));
    (0..len).map(|i| seed.wrapping_add(i as u8)).collect()
}

/// Every key must come back as its exact bytes or a clean miss — never an
/// error, never corrupt data. Returns (hits, misses).
fn assert_correct_or_miss(
    label: &str,
    cache: &LogCache,
    keys: &[(String, usize)],
    t: &mut Nanos,
) -> (usize, usize) {
    let (mut hits, mut misses) = (0, 0);
    for (key, len) in keys {
        let (v, t2) = cache
            .get(key.as_bytes(), *t)
            .unwrap_or_else(|e| panic!("{label}: get({key}) errored after zone death: {e}"));
        match v {
            Some(got) => {
                assert_eq!(
                    got.as_ref(),
                    &value_for(key, *len)[..],
                    "{label}: wrong bytes served for {key}"
                );
                hits += 1;
            }
            None => misses += 1,
        }
        *t = t2;
    }
    (hits, misses)
}

/// Full zones, i.e. sealed data at risk when the media degrades.
fn full_zones(dev: &ZnsDevice) -> Vec<ZoneId> {
    (0..dev.num_zones())
        .map(ZoneId)
        .filter(|&z| dev.zone_state(z) == Ok(ZoneState::Full))
        .collect()
}

#[test]
fn zone_cache_survives_a_quarter_of_the_device_dying() {
    let inj = Arc::new(FaultInjector::with_seed(matrix_seed(31)));
    let dev =
        Arc::new(ZnsDevice::new(ZnsConfig::small_test()).with_fault_injector(Arc::clone(&inj)));
    let backend = Arc::new(ZoneBackend::new(Arc::clone(&dev)));
    let cache = Arc::new(LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap());
    let maintainer =
        Maintainer::new(Arc::clone(&cache)).with_scrub_interval(Nanos::from_millis(1));

    // Four objects tile one region (= one zone) exactly.
    let obj_len = backend.region_size() / 4;
    let val_len = obj_len - 12 - 6; // OBJECT_HEADER + 6-byte key
    let mut keys: Vec<(String, usize)> = Vec::new();
    let mut t = Nanos::ZERO;

    // Phase 1: eight zones of sealed data.
    for i in 0..32u32 {
        let key = format!("zd-{i:03}");
        t = cache.set(key.as_bytes(), &value_for(&key, val_len), t).unwrap();
        keys.push((key, val_len));
    }
    t = cache.flush(t).unwrap();
    let sealed = full_zones(&dev);
    assert!(sealed.len() >= 8, "expected 8 full zones, got {}", sealed.len());

    // Kill 25% of the device mid-run: 2 zones fall read-only (salvageable),
    // 2 go dark entirely.
    let quarter = (dev.num_zones() as usize / 4).max(4);
    for (i, &z) in sealed.iter().take(quarter).enumerate() {
        dev.degrade(z, i % 2 == 1, t).unwrap();
    }
    assert_eq!(dev.readonly_zones(), 2);
    assert_eq!(dev.offline_zones(), 2);
    assert_eq!(
        dev.usable_capacity_bytes(),
        (dev.num_zones() as u64 - 4) * dev.zone_cap_blocks() * BLOCK_SIZE as u64,
        "all four degraded zones must leave the usable-capacity account"
    );

    // Phase 2: the run continues. One write lands on a zone that degrades
    // at the exact moment of the flush — the engine must reroute, not fail.
    inj.push(FaultSpec::degrade_read_only_writes(1));
    for i in 32..44u32 {
        let key = format!("zd-{i:03}");
        t = cache.set(key.as_bytes(), &value_for(&key, val_len), t).unwrap();
        keys.push((key, val_len));
    }
    t = cache.flush(t).unwrap();

    // One scrub cycle: salvage the read-only zones, retire the dead ones.
    maintainer.run_once(t + Nanos::from_millis(1)).unwrap();
    t += Nanos::from_millis(2);

    let m = cache.metrics();
    assert!(m.zones_readonly >= 2, "read-only regions not retired: {m:?}");
    assert!(m.zones_offline >= 2, "offline regions not retired: {m:?}");
    assert!(m.scrub_salvaged_objects >= 1, "nothing salvaged: {m:?}");
    assert!(m.scrub_salvaged_bytes > 0);
    assert!(m.quarantined_regions >= 4, "dead zones must shrink capacity: {m:?}");
    assert!(m.write_reroutes >= 1, "degraded flush was not rerouted: {m:?}");

    // No lies, and losses proportional to dead capacity: only the two
    // offline zones (4 objects each) may take data with them. The flush
    // that hit the mid-life degradation may additionally drop its own
    // buffered region (reroute preserves the cache, not that buffer).
    let (hits, misses) = assert_correct_or_miss("Zone-Cache", &cache, &keys, &mut t);
    assert!(hits + misses == keys.len());
    assert!(
        misses <= 2 * 4 + 4,
        "lost {misses} of {} objects; only 2 offline zones (+1 rerouted buffer) may lose data",
        keys.len()
    );
    assert!(hits >= keys.len() - 12, "hit ratio fell further than lost capacity");

    // The survivor still takes and serves new writes.
    t = cache.set(b"after-death", b"alive", t).unwrap();
    t = cache.flush(t).unwrap();
    let (v, _) = cache.get(b"after-death", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"alive"[..]));
}

#[test]
fn scrub_detects_every_latent_corruption_within_one_cycle() {
    // Three regions each take one silently flipped bit at write time; the
    // payloads tile every region exactly, so each flip lands inside a
    // checksummed object (or its header) — never in padding.
    let inj = Arc::new(FaultInjector::with_seed(matrix_seed(32)));
    let dev =
        Arc::new(ZnsDevice::new(ZnsConfig::small_test()).with_fault_injector(Arc::clone(&inj)));
    let backend = Arc::new(ZoneBackend::new(Arc::clone(&dev)));
    let cache = Arc::new(LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap());

    let obj_len = backend.region_size() / 4;
    let val_len = obj_len - 12 - 6;
    let mut keys = Vec::new();
    let mut t = Nanos::ZERO;
    // Arm one credit per region batch: a region flush is a stream of
    // zone-append commands, and each append rolls the fault dice — so a
    // single 3-credit plan would burn all three flips on the first
    // region's first chunks. One credit per flush pins one flip to each
    // region.
    for batch in 0..3u32 {
        inj.push(FaultSpec::latent_corruption(1));
        for i in batch * 4..batch * 4 + 4 {
            let key = format!("lc-{i:03}");
            t = cache.set(key.as_bytes(), &value_for(&key, val_len), t).unwrap();
            keys.push((key, val_len));
        }
        t = cache.flush(t).unwrap();
    }
    assert_eq!(inj.injected(), 3, "all three corruptions must have fired");

    // One scrub pass finds all three before any reader trips over them.
    let report = cache.scrub(t).unwrap();
    assert_eq!(
        report.corrupt_objects, 3,
        "scrub must detect 100% of injected latent corruptions in one cycle"
    );
    t = report.done;
    assert_eq!(cache.metrics().scrub_corrupt_objects, 3);

    // The corrupted objects are misses now; everything else verifies.
    let (hits, misses) = assert_correct_or_miss("latent", &cache, &keys, &mut t);
    assert_eq!(misses, 3, "corrupt objects must become misses");
    assert_eq!(hits, 9);
    // A second cycle finds nothing: the pass converged.
    let again = cache.scrub(t).unwrap();
    assert_eq!(again.corrupt_objects, 0);
}

#[test]
fn region_cache_middle_layer_survives_zone_death() {
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let backend = Arc::new(MiddleLayerBackend::new(Arc::clone(&dev), MiddleConfig::small_test()));
    let cache = Arc::new(LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap());

    // Four objects tile each 16 KiB middle-layer region.
    let obj_len = backend.region_size() / 4;
    let val_len = obj_len - 12 - 6;
    let mut keys = Vec::new();
    let mut t = Nanos::ZERO;
    for i in 0..160u32 {
        let key = format!("ml-{i:03}");
        t = cache.set(key.as_bytes(), &value_for(&key, val_len), t).unwrap();
        keys.push((key, val_len));
    }
    t = cache.flush(t).unwrap();

    // Kill 25% of the zones under the translation layer, half of them dark.
    let sealed = full_zones(&dev);
    assert!(sealed.len() >= 4, "expected full zones, got {}", sealed.len());
    let quarter = (dev.num_zones() as usize / 4).max(4);
    let mut offline_zones = 0u64;
    for (i, &z) in sealed.iter().take(quarter).enumerate() {
        let offline = i % 2 == 1;
        offline_zones += offline as u64;
        dev.degrade(z, offline, t).unwrap();
    }

    // The run continues across the kill, then one scrub cycle salvages
    // read-only slots and retires dead ones.
    for i in 160..176u32 {
        let key = format!("ml-{i:03}");
        t = cache.set(key.as_bytes(), &value_for(&key, val_len), t).unwrap();
        keys.push((key, val_len));
    }
    t = cache.flush(t).unwrap();
    let report = cache.scrub(t).unwrap();
    t = report.done;

    let m = cache.metrics();
    assert!(m.zones_readonly >= 1, "no read-only slot was salvaged: {m:?}");
    assert!(m.zones_offline >= 1, "no dead slot was retired: {m:?}");
    assert!(report.salvaged_objects >= 1);

    // Proportionality: each dead zone strands at most 8 slots × 4 objects.
    let (hits, misses) = assert_correct_or_miss("Region-Cache", &cache, &keys, &mut t);
    let max_lost = (offline_zones * 8 * 4) as usize;
    assert!(
        misses <= max_lost,
        "lost {misses} of {} objects; at most {max_lost} lived on offline zones",
        keys.len()
    );
    assert!(hits >= keys.len() - max_lost);

    // Still writable after the device shrank.
    t = cache.set(b"ml-after", b"alive", t).unwrap();
    t = cache.flush(t).unwrap();
    let (v, _) = cache.get(b"ml-after", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"alive"[..]));
}

#[test]
fn file_cache_keeps_serving_when_zones_fall_read_only() {
    // The filesystem scheme: wear-out strikes the zones under the file.
    // Read-only zones stay readable, the allocator routes around them,
    // and the cleaner salvages their live blocks — no lookup may error.
    let config = FsConfig::small_test();
    let dev = Arc::new(ZnsDevice::new(config.zns.clone()));
    let meta = Arc::new(RamDisk::new(config.meta_blocks));
    let fs = Arc::new(FileSystem::format_on(Arc::clone(&dev), meta, &config));
    let region = 4 * BLOCK_SIZE;
    let backend =
        Arc::new(FileBackend::create(Arc::clone(&fs), "cache", region, 8, Nanos::ZERO).unwrap());
    let cache = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());

    let val_len = 3_000;
    let mut keys = Vec::new();
    let mut t = Nanos::ZERO;
    // Three passes over the key set: the rewrites append enough fresh
    // filesystem blocks that several zones seal under the file.
    for i in 0..120u32 {
        let key = format!("fc-{:03}", i % 40);
        t = cache.set(key.as_bytes(), &value_for(&key, val_len), t).unwrap();
        if i < 40 {
            keys.push((key, val_len));
        }
    }
    t = cache.flush(t).unwrap();

    // A quarter of the device wears out to read-only under the file data.
    let sealed = full_zones(&dev);
    assert!(!sealed.is_empty(), "no full zones under the filesystem");
    let quarter = sealed.len().min((dev.num_zones() as usize / 4).max(1));
    for &z in sealed.iter().take(quarter) {
        dev.degrade(z, false, t).unwrap();
    }
    assert!(dev.readonly_zones() >= 1);

    // Keep overwriting: every rewrite forces fresh allocations that must
    // dodge the dead zones, and cleaning pressure must tolerate them.
    for i in 0..40u32 {
        let key = format!("fc-{i:03}");
        t = cache.set(key.as_bytes(), &value_for(&key, val_len), t).unwrap();
    }
    t = cache.flush(t).unwrap();

    // Read-only zones lose nothing: every object is served or was
    // superseded in-cache (evicted) — and never with wrong bytes.
    let (hits, _misses) = assert_correct_or_miss("File-Cache", &cache, &keys, &mut t);
    assert!(hits > 0, "cache went dark after read-only degradation");
    t = cache.set(b"fc-after", b"alive", t).unwrap();
    t = cache.flush(t).unwrap();
    let (v, _) = cache.get(b"fc-after", t).unwrap();
    assert_eq!(v.as_deref(), Some(&b"alive"[..]));
}

#[test]
fn block_cache_rides_the_same_machinery_under_device_failures() {
    // The conventional scheme has no zones to lose, but the same torture
    // discipline applies to its failure modes: silent corruption becomes
    // misses, dead trims become quarantined slots, and the cache serves on.
    let inj = Arc::new(FaultInjector::with_seed(matrix_seed(33)));
    let dev = Arc::new(FaultyDevice::with_injector(
        Arc::new(RamDisk::new(64)),
        Arc::clone(&inj),
    ));
    let backend = Arc::new(BlockBackend::new(dev, 4 * BLOCK_SIZE));
    let cache = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());

    let val_len = BLOCK_SIZE - 12 - 6; // tiles a region in four objects
    inj.push(FaultSpec::latent_corruption(2));
    let mut keys = Vec::new();
    let mut t = Nanos::ZERO;
    for i in 0..32u32 {
        let key = format!("bc-{i:03}");
        t = cache.set(key.as_bytes(), &value_for(&key, val_len), t).unwrap();
        keys.push((key, val_len));
    }
    t = cache.flush(t).unwrap();
    inj.push(FaultSpec::fail_trims(3));

    // One scrub cycle turns both flipped bits into misses up front.
    let report = cache.scrub(t).unwrap();
    assert_eq!(report.corrupt_objects, 2);
    t = report.done;

    let (hits, misses) = assert_correct_or_miss("Block-Cache", &cache, &keys, &mut t);
    assert_eq!(misses, 2, "exactly the corrupted objects may miss");
    assert_eq!(hits, 30);

    // Keep writing until eviction trips over the failing trims: the victim
    // quarantines, capacity shrinks, and inserts keep landing.
    for i in 32..80u32 {
        let key = format!("bc-{i:03}");
        t = cache.set(key.as_bytes(), &value_for(&key, val_len), t).unwrap();
    }
    let m = cache.metrics();
    assert!(m.quarantined_regions >= 1, "failed trim must quarantine: {m:?}");
    let (v, _) = cache.get(b"bc-079", t).unwrap();
    assert_eq!(v.as_deref(), Some(&value_for("bc-079", val_len)[..]));
}
