//! Property-based tests over the core invariants: the cache behaves like a
//! map (modulo evictions), the zoned device enforces its contract under
//! arbitrary op streams, the FTL never loses acknowledged writes, and the
//! filesystem is read-your-writes under random I/O.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use zns_cache_repro::f2fs_lite::{FileSystem, FsConfig};
use zns_cache_repro::ftl::{BlockSsd, FtlConfig};
use zns_cache_repro::sim::{BlockDevice, Lba, Nanos, BLOCK_SIZE};
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice, ZoneId};
use zns_cache_repro::zns_cache::backend::{MiddleConfig, MiddleLayerBackend};
use zns_cache_repro::zns_cache::{recovery, CacheConfig, LogCache};

#[derive(Clone, Debug)]
enum CacheOp {
    Set(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..300))
            .prop_map(|(k, v)| CacheOp::Set(k, v)),
        any::<u8>().prop_map(CacheOp::Get),
        any::<u8>().prop_map(CacheOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cache hit must always return the *latest* value for the key; a
    /// key that was deleted (and not re-set) must never hit.
    #[test]
    fn cache_is_a_subset_of_a_map(ops in proptest::collection::vec(cache_op(), 1..300)) {
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let backend = Arc::new(MiddleLayerBackend::new(dev, MiddleConfig::small_test()));
        let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
        let mut model: HashMap<u8, Option<Vec<u8>>> = HashMap::new();
        let mut t = Nanos::ZERO;
        for op in ops {
            match op {
                CacheOp::Set(k, v) => {
                    t = cache.set(&[k], &v, t).unwrap();
                    model.insert(k, Some(v));
                }
                CacheOp::Get(k) => {
                    let (got, t2) = cache.get(&[k], t).unwrap();
                    t = t2;
                    if let Some(got) = got {
                        match model.get(&k) {
                            Some(Some(expect)) => prop_assert_eq!(got.as_ref(), expect.as_slice()),
                            _ => prop_assert!(false, "hit for a deleted/never-set key"),
                        }
                    }
                }
                CacheOp::Delete(k) => {
                    t = cache.delete(&[k], t).1;
                    model.insert(k, None);
                }
            }
        }
    }

    /// Arbitrary zone op sequences never corrupt the device: every
    /// accepted write is readable, every rejected op leaves state intact.
    #[test]
    fn zns_state_machine_is_sound(ops in proptest::collection::vec((0u32..8, 0u8..4), 1..200)) {
        let dev = ZnsDevice::new(ZnsConfig::small_test());
        let mut t = Nanos::ZERO;
        // Shadow write pointers per zone.
        let mut wp = vec![0u64; dev.num_zones() as usize];
        let mut full = vec![false; dev.num_zones() as usize];
        for (zone_raw, action) in ops {
            let zone = ZoneId(zone_raw % dev.num_zones());
            let z = zone.0 as usize;
            match action {
                0 => {
                    // write one block
                    let data = vec![zone.0 as u8; BLOCK_SIZE];
                    match dev.write(zone, &data, t) {
                        Ok(t2) => {
                            t = t2;
                            prop_assert!(!full[z], "write accepted on full zone");
                            wp[z] += 1;
                            if wp[z] == dev.zone_cap_blocks() { full[z] = true; }
                        }
                        Err(_) => {}
                    }
                }
                1 => {
                    t = dev.reset(zone, t).unwrap();
                    wp[z] = 0;
                    full[z] = false;
                }
                2 => {
                    if dev.finish(zone, t).is_ok() {
                        full[z] = true;
                    }
                }
                _ => {
                    // read below wp must succeed; at/above must fail
                    if wp[z] > 0 {
                        let mut buf = vec![0u8; BLOCK_SIZE];
                        prop_assert!(dev.read(zone, wp[z] - 1, &mut buf, t).is_ok());
                    }
                    let mut buf = vec![0u8; BLOCK_SIZE];
                    prop_assert!(dev.read(zone, wp[z], &mut buf, t).is_err());
                }
            }
            let info = dev.zone_info(zone).unwrap();
            prop_assert_eq!(info.write_pointer, wp[z], "wp diverged on {}", zone);
        }
    }

    /// The FTL is read-your-writes for every LBA under random overwrites
    /// and trims, even while GC runs.
    #[test]
    fn ftl_read_your_writes(ops in proptest::collection::vec((0u64..200, any::<u8>(), any::<bool>()), 1..400)) {
        let ssd = BlockSsd::new(FtlConfig::small_test());
        let mut model: HashMap<u64, Option<u8>> = HashMap::new();
        let mut t = Nanos::ZERO;
        for (lba, fill, is_trim) in ops {
            if is_trim {
                t = ssd.trim(Lba(lba), 1, t).unwrap();
                model.insert(lba, None);
            } else {
                let data = vec![fill; BLOCK_SIZE];
                t = ssd.write(Lba(lba), &data, t).unwrap();
                model.insert(lba, Some(fill));
            }
        }
        for (lba, expect) in model {
            let mut buf = vec![0u8; BLOCK_SIZE];
            t = ssd.read(Lba(lba), &mut buf, t).unwrap();
            let want = expect.unwrap_or(0);
            prop_assert!(buf.iter().all(|&b| b == want), "lba {} corrupt", lba);
        }
    }

    /// Snapshot + recover is lossless: whatever a cache would serve
    /// before a clean shutdown, the recovered cache serves identically.
    #[test]
    fn recovery_is_lossless(ops in proptest::collection::vec(cache_op(), 1..150)) {
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let backend = Arc::new(MiddleLayerBackend::new(dev, MiddleConfig::small_test()));
        let cache = LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap();
        let mut t = Nanos::ZERO;
        for op in ops {
            match op {
                CacheOp::Set(k, v) => t = cache.set(&[k], &v, t).unwrap(),
                CacheOp::Get(k) => t = cache.get(&[k], t).unwrap().1,
                CacheOp::Delete(k) => t = cache.delete(&[k], t).1,
            }
        }
        // What does the original serve right before shutdown?
        let (snap, t2) = recovery::snapshot(&cache, t).unwrap();
        let mut before: HashMap<u8, Option<Vec<u8>>> = HashMap::new();
        let mut t3 = t2;
        for k in 0..=255u8 {
            let (v, tn) = cache.get(&[k], t3).unwrap();
            t3 = tn;
            before.insert(k, v.map(|b| b.to_vec()));
        }
        drop(cache);
        let recovered = recovery::recover(backend, CacheConfig::small_test(), &snap).unwrap();
        for (k, expect) in before {
            let (v, tn) = recovered.get(&[k], t3).unwrap();
            t3 = tn;
            prop_assert_eq!(v.map(|b| b.to_vec()), expect, "key {} diverged", k);
        }
    }

    /// The hybrid (BigHash + log-structured) engine agrees with a map
    /// under mixed-size workloads, including objects crossing the size
    /// threshold between updates.
    #[test]
    fn hybrid_engine_matches_map(
        ops in proptest::collection::vec((any::<u8>(), 0u16..3000, any::<bool>()), 1..200)
    ) {
        use zns_cache_repro::zns_cache::backend::BlockBackend;
        use zns_cache_repro::zns_cache::bighash::{BigHash, HybridEngine};
        use zns_cache_repro::sim::{Lba, RamDisk};

        let bucket_dev = Arc::new(RamDisk::new(16));
        let small = BigHash::new(bucket_dev, Lba(0), 16).unwrap();
        let region_dev = Arc::new(RamDisk::new(512));
        let backend = Arc::new(BlockBackend::new(region_dev, 16 * BLOCK_SIZE));
        let large = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());
        let hybrid = HybridEngine::new(small, large, 256);

        let mut model: HashMap<u8, Option<Vec<u8>>> = HashMap::new();
        let mut t = Nanos::ZERO;
        for (k, len, is_delete) in ops {
            if is_delete {
                t = hybrid.delete(&[k], t).unwrap().1;
                model.insert(k, None);
            } else {
                let v = vec![k ^ 0x5a; len as usize];
                t = hybrid.set(&[k], &v, t).unwrap();
                model.insert(k, Some(v));
            }
        }
        for (k, expect) in model {
            let (got, t2) = hybrid.get(&[k], t).unwrap();
            t = t2;
            if let Some(got) = got {
                // The cache may evict, but a hit must be the latest value.
                prop_assert_eq!(Some(got.to_vec()), expect, "key {} stale", k);
            }
        }
    }

    /// The filesystem is read-your-writes at block granularity under
    /// random writes to a file, across enough churn to trigger cleaning.
    #[test]
    fn f2fs_read_your_writes(writes in proptest::collection::vec((0u64..64, any::<u8>()), 1..250)) {
        let fs = FileSystem::format(FsConfig::small_test());
        let ino = fs.create("f", Nanos::ZERO).unwrap();
        let mut model: HashMap<u64, u8> = HashMap::new();
        let mut t = Nanos::ZERO;
        for (block, fill) in writes {
            let data = vec![fill; BLOCK_SIZE];
            t = fs.pwrite(ino, block * BLOCK_SIZE as u64, &data, t).unwrap();
            model.insert(block, fill);
        }
        for (block, fill) in model {
            let mut buf = vec![0u8; BLOCK_SIZE];
            t = fs.pread(ino, block * BLOCK_SIZE as u64, &mut buf, t).unwrap();
            prop_assert!(buf.iter().all(|&b| b == fill), "block {} corrupt", block);
        }
    }
}
