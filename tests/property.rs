//! Randomized property tests over the core invariants: the cache behaves
//! like a map (modulo evictions), the zoned device enforces its contract
//! under arbitrary op streams, the FTL never loses acknowledged writes, and
//! the filesystem is read-your-writes under random I/O.
//!
//! Each property runs against a battery of seeded random op streams (the
//! offline toolchain has no proptest, so shrinking is replaced by printing
//! the failing seed — rerun with that seed to reproduce).

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zns_cache_repro::f2fs_lite::{FileSystem, FsConfig};
use zns_cache_repro::ftl::{BlockSsd, FtlConfig};
use zns_cache_repro::sim::{BlockDevice, Lba, Nanos, BLOCK_SIZE};
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice, ZoneId};
use zns_cache_repro::zns_cache::backend::{MiddleConfig, MiddleLayerBackend};
use zns_cache_repro::zns_cache::{recovery, CacheConfig, LogCache};

const SEEDS: std::ops::Range<u64> = 0..12;

#[derive(Clone, Debug)]
enum CacheOp {
    Set(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
}

fn cache_ops(rng: &mut StdRng, max_len: usize) -> Vec<CacheOp> {
    let n = rng.gen_range(1..max_len);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..256u64) as u8;
            match rng.gen_range(0..3u32) {
                0 => {
                    let len = rng.gen_range(1..300usize);
                    let v = (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect();
                    CacheOp::Set(k, v)
                }
                1 => CacheOp::Get(k),
                _ => CacheOp::Delete(k),
            }
        })
        .collect()
}

/// A cache hit must always return the *latest* value for the key; a key
/// that was deleted (and not re-set) must never hit.
#[test]
fn cache_is_a_subset_of_a_map() {
    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = cache_ops(&mut rng, 300);
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let backend = Arc::new(MiddleLayerBackend::new(dev, MiddleConfig::small_test()));
        let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
        let mut model: HashMap<u8, Option<Vec<u8>>> = HashMap::new();
        let mut t = Nanos::ZERO;
        for op in ops {
            match op {
                CacheOp::Set(k, v) => {
                    t = cache.set(&[k], &v, t).unwrap();
                    model.insert(k, Some(v));
                }
                CacheOp::Get(k) => {
                    let (got, t2) = cache.get(&[k], t).unwrap();
                    t = t2;
                    if let Some(got) = got {
                        match model.get(&k) {
                            Some(Some(expect)) => assert_eq!(
                                got.as_ref(),
                                expect.as_slice(),
                                "seed {seed}: stale value for key {k}"
                            ),
                            _ => panic!("seed {seed}: hit for a deleted/never-set key {k}"),
                        }
                    }
                }
                CacheOp::Delete(k) => {
                    t = cache.delete(&[k], t).unwrap().1;
                    model.insert(k, None);
                }
            }
        }
    }
}

/// Arbitrary zone op sequences never corrupt the device: every accepted
/// write is readable, every rejected op leaves state intact.
#[test]
fn zns_state_machine_is_sound() {
    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let dev = ZnsDevice::new(ZnsConfig::small_test());
        let mut t = Nanos::ZERO;
        // Shadow write pointers per zone.
        let mut wp = vec![0u64; dev.num_zones() as usize];
        let mut full = vec![false; dev.num_zones() as usize];
        let n = rng.gen_range(1..200usize);
        for _ in 0..n {
            let zone = ZoneId(rng.gen_range(0..8u32) % dev.num_zones());
            let z = zone.0 as usize;
            match rng.gen_range(0..4u32) {
                0 => {
                    // write one block
                    let data = vec![zone.0 as u8; BLOCK_SIZE];
                    if let Ok(t2) = dev.write(zone, &data, t) {
                        t = t2;
                        assert!(!full[z], "seed {seed}: write accepted on full zone");
                        wp[z] += 1;
                        if wp[z] == dev.zone_cap_blocks() {
                            full[z] = true;
                        }
                    }
                }
                1 => {
                    t = dev.reset(zone, t).unwrap();
                    wp[z] = 0;
                    full[z] = false;
                }
                2 => {
                    if dev.finish(zone, t).is_ok() {
                        full[z] = true;
                    }
                }
                _ => {
                    // read below wp must succeed; at/above must fail
                    if wp[z] > 0 {
                        let mut buf = vec![0u8; BLOCK_SIZE];
                        assert!(dev.read(zone, wp[z] - 1, &mut buf, t).is_ok());
                    }
                    let mut buf = vec![0u8; BLOCK_SIZE];
                    assert!(dev.read(zone, wp[z], &mut buf, t).is_err());
                }
            }
            let info = dev.zone_info(zone).unwrap();
            assert_eq!(info.write_pointer, wp[z], "seed {seed}: wp diverged on {zone}");
        }
    }
}

/// The FTL is read-your-writes for every LBA under random overwrites and
/// trims, even while GC runs.
#[test]
fn ftl_read_your_writes() {
    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let ssd = BlockSsd::new(FtlConfig::small_test());
        let mut model: HashMap<u64, Option<u8>> = HashMap::new();
        let mut t = Nanos::ZERO;
        let n = rng.gen_range(1..400usize);
        for _ in 0..n {
            let lba = rng.gen_range(0..200u64);
            let fill = rng.gen_range(0..256u64) as u8;
            if rng.gen_bool(0.5) {
                t = ssd.trim(Lba(lba), 1, t).unwrap();
                model.insert(lba, None);
            } else {
                let data = vec![fill; BLOCK_SIZE];
                t = ssd.write(Lba(lba), &data, t).unwrap();
                model.insert(lba, Some(fill));
            }
        }
        for (lba, expect) in model {
            let mut buf = vec![0u8; BLOCK_SIZE];
            t = ssd.read(Lba(lba), &mut buf, t).unwrap();
            let want = expect.unwrap_or(0);
            assert!(
                buf.iter().all(|&b| b == want),
                "seed {seed}: lba {lba} corrupt"
            );
        }
    }
}

/// Snapshot + recover is lossless: whatever a cache would serve before a
/// clean shutdown, the recovered cache serves identically.
#[test]
fn recovery_is_lossless() {
    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = cache_ops(&mut rng, 150);
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let backend = Arc::new(MiddleLayerBackend::new(dev, MiddleConfig::small_test()));
        let cache = LogCache::new(backend.clone(), CacheConfig::small_test()).unwrap();
        let mut t = Nanos::ZERO;
        for op in ops {
            match op {
                CacheOp::Set(k, v) => t = cache.set(&[k], &v, t).unwrap(),
                CacheOp::Get(k) => t = cache.get(&[k], t).unwrap().1,
                CacheOp::Delete(k) => t = cache.delete(&[k], t).unwrap().1,
            }
        }
        // What does the original serve right before shutdown?
        let (snap, t2) = recovery::snapshot(&cache, t).unwrap();
        let mut before: HashMap<u8, Option<Vec<u8>>> = HashMap::new();
        let mut t3 = t2;
        for k in 0..=255u8 {
            let (v, tn) = cache.get(&[k], t3).unwrap();
            t3 = tn;
            before.insert(k, v.map(|b| b.to_vec()));
        }
        drop(cache);
        let recovered = recovery::recover(backend, CacheConfig::small_test(), &snap).unwrap();
        for (k, expect) in before {
            let (v, tn) = recovered.get(&[k], t3).unwrap();
            t3 = tn;
            assert_eq!(
                v.map(|b| b.to_vec()),
                expect,
                "seed {seed}: key {k} diverged"
            );
        }
    }
}

/// The hybrid (BigHash + log-structured) engine agrees with a map under
/// mixed-size workloads, including objects crossing the size threshold
/// between updates.
#[test]
fn hybrid_engine_matches_map() {
    use zns_cache_repro::sim::RamDisk;
    use zns_cache_repro::zns_cache::backend::BlockBackend;
    use zns_cache_repro::zns_cache::bighash::{BigHash, HybridEngine};

    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let bucket_dev = Arc::new(RamDisk::new(16));
        let small = BigHash::new(bucket_dev, Lba(0), 16).unwrap();
        let region_dev = Arc::new(RamDisk::new(512));
        let backend = Arc::new(BlockBackend::new(region_dev, 16 * BLOCK_SIZE));
        let large = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());
        let hybrid = HybridEngine::new(small, large, 256);

        let mut model: HashMap<u8, Option<Vec<u8>>> = HashMap::new();
        let mut t = Nanos::ZERO;
        let n = rng.gen_range(1..200usize);
        for _ in 0..n {
            let k = rng.gen_range(0..256u64) as u8;
            if rng.gen_bool(0.5) {
                t = hybrid.delete(&[k], t).unwrap().1;
                model.insert(k, None);
            } else {
                let len = rng.gen_range(0..3000usize);
                let v = vec![k ^ 0x5a; len];
                t = hybrid.set(&[k], &v, t).unwrap();
                model.insert(k, Some(v));
            }
        }
        for (k, expect) in model {
            let (got, t2) = hybrid.get(&[k], t).unwrap();
            t = t2;
            if let Some(got) = got {
                // The cache may evict, but a hit must be the latest value.
                assert_eq!(Some(got.to_vec()), expect, "seed {seed}: key {k} stale");
            }
        }
    }
}

/// The filesystem is read-your-writes at block granularity under random
/// writes to a file, across enough churn to trigger cleaning.
#[test]
fn f2fs_read_your_writes() {
    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let fs = FileSystem::format(FsConfig::small_test());
        let ino = fs.create("f", Nanos::ZERO).unwrap();
        let mut model: HashMap<u64, u8> = HashMap::new();
        let mut t = Nanos::ZERO;
        let n = rng.gen_range(1..250usize);
        for _ in 0..n {
            let block = rng.gen_range(0..64u64);
            let fill = rng.gen_range(0..256u64) as u8;
            let data = vec![fill; BLOCK_SIZE];
            t = fs.pwrite(ino, block * BLOCK_SIZE as u64, &data, t).unwrap();
            model.insert(block, fill);
        }
        for (block, fill) in model {
            let mut buf = vec![0u8; BLOCK_SIZE];
            t = fs.pread(ino, block * BLOCK_SIZE as u64, &mut buf, t).unwrap();
            assert!(
                buf.iter().all(|&b| b == fill),
                "seed {seed}: block {block} corrupt"
            );
        }
    }
}
