//! Concurrency torture for the sharded engine: real OS threads, one
//! shared cache, faults firing underneath.
//!
//! The contract under test:
//!
//! * 8 threads of mixed get/set/delete traffic on every scheme backend
//!   (Block/File/Zone/Region-Cache) complete without deadlock while torn
//!   writes, clean read failures, and read bit-flips are injected;
//! * a hit NEVER returns wrong bytes — per-object CRCs plus generation
//!   revalidation turn every fault into a miss or a typed error;
//! * once faults clear, freshly committed writes are all served back
//!   verbatim (nothing the engine acknowledged in the quiet phase is
//!   lost);
//! * a reader stuck inside a device read holds no lock any writer needs:
//!   a concurrent set on another key completes while the read is blocked
//!   (the lock-drop-and-revalidate read path's defining property);
//! * maintainer passes driven at explicit simulated times are
//!   deterministic: same state, same time, same victims.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use zns_cache_repro::f2fs_lite::{FileSystem, FsConfig};
use zns_cache_repro::sim::fault::{FaultInjector, FaultSpec, FaultyDevice};
use zns_cache_repro::sim::{Nanos, RamDisk, BLOCK_SIZE};
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice};
use zns_cache_repro::zns_cache::backend::{
    BlockBackend, FileBackend, MiddleConfig, MiddleLayerBackend, RegionBackend, ZoneBackend,
};
use zns_cache_repro::zns_cache::{CacheConfig, CacheError, LogCache, Maintainer, RegionId};

const REGION: usize = 4 * BLOCK_SIZE;
const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 1_500;
const KEYS: u64 = 400;

/// Deterministic per-key value: any hit can be byte-verified regardless
/// of which thread wrote it (all writers of a key write the same bytes).
fn value_for(id: u64) -> Vec<u8> {
    let len = 200 + (id % 800) as usize;
    (0..len).map(|i| (id as usize * 31 + i) as u8).collect()
}

fn key_for(id: u64) -> Vec<u8> {
    format!("obj-{id:06}").into_bytes()
}

/// One cache per scheme, each wired to its own fault injector.
fn all_scheme_rigs() -> Vec<(&'static str, Arc<LogCache>, Arc<FaultInjector>)> {
    let mut rigs = Vec::new();
    {
        let inj = Arc::new(FaultInjector::with_seed(31));
        let dev = Arc::new(FaultyDevice::with_injector(
            Arc::new(RamDisk::new(1024)),
            Arc::clone(&inj),
        ));
        let backend = Arc::new(BlockBackend::new(dev, REGION));
        let cache = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());
        rigs.push(("Block-Cache", cache, inj));
    }
    {
        let inj = Arc::new(FaultInjector::with_seed(32));
        let config = FsConfig::small_test();
        let dev =
            Arc::new(ZnsDevice::new(config.zns.clone()).with_fault_injector(Arc::clone(&inj)));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        let fs = Arc::new(FileSystem::format_on(dev, meta, &config));
        let backend = Arc::new(FileBackend::create(fs, "cache", REGION, 12, Nanos::ZERO).unwrap());
        let cache = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());
        rigs.push(("File-Cache", cache, inj));
    }
    {
        let inj = Arc::new(FaultInjector::with_seed(33));
        let dev =
            Arc::new(ZnsDevice::new(ZnsConfig::small_test()).with_fault_injector(Arc::clone(&inj)));
        let backend = Arc::new(ZoneBackend::new(dev));
        let cache = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());
        rigs.push(("Zone-Cache", cache, inj));
    }
    {
        let inj = Arc::new(FaultInjector::with_seed(34));
        let dev =
            Arc::new(ZnsDevice::new(ZnsConfig::small_test()).with_fault_injector(Arc::clone(&inj)));
        let backend = Arc::new(MiddleLayerBackend::new(dev, MiddleConfig::small_test()));
        let cache = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());
        rigs.push(("Region-Cache", cache, inj));
    }
    rigs
}

/// Mixed-op worker. Returns `(gets, verified_hits, faulted_ops)`; panics
/// (propagated through the join handle) if a hit returns wrong bytes.
fn torture_worker(cache: Arc<LogCache>, label: &'static str, thread: u64) -> (u64, u64, u64) {
    // Cheap xorshift so the mix is deterministic per thread without
    // pulling the workload crate into dev-only plumbing.
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (thread + 1).wrapping_mul(0xD129_8E54_32C7_91AB);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut t = Nanos::ZERO;
    let (mut gets, mut hits, mut faulted) = (0u64, 0u64, 0u64);
    for _ in 0..OPS_PER_THREAD {
        let id = next() % KEYS;
        let key = key_for(id);
        match next() % 10 {
            // 60% lookups.
            0..=5 => match cache.get(&key, t) {
                Ok((Some(v), t2)) => {
                    assert_eq!(
                        v.as_ref(),
                        value_for(id).as_slice(),
                        "{label}: thread {thread} read wrong bytes for key {id}"
                    );
                    gets += 1;
                    hits += 1;
                    t = t2;
                }
                Ok((None, t2)) => {
                    gets += 1;
                    t = t2;
                }
                // Exhausted read retries under injected faults: a typed
                // error, never a panic or bad bytes.
                Err(CacheError::Io(_)) => faulted += 1,
                Err(e) => panic!("{label}: unexpected get error: {e}"),
            },
            // 30% inserts.
            6..=8 => match cache.set(&key, &value_for(id), t) {
                Ok(t2) => t = t2,
                // A flush that exhausted its retries inside this set.
                Err(CacheError::Io(_)) => faulted += 1,
                Err(e) => panic!("{label}: unexpected set error: {e}"),
            },
            // 10% deletes.
            _ => match cache.delete(&key, t) {
                Ok((_, t2)) => t = t2,
                Err(CacheError::Io(_)) => faulted += 1,
                Err(e) => panic!("{label}: unexpected delete error: {e}"),
            },
        }
    }
    (gets, hits, faulted)
}

#[test]
fn eight_thread_torture_under_faults_all_schemes() {
    for (label, cache, inj) in all_scheme_rigs() {
        // Probabilistic fault plan for the torture phase. Counts are
        // credits, so the storm is bounded and the quiet phase is clean:
        // torn writes stay rare because each one permanently costs the
        // cache a quarantined region slot.
        inj.push(FaultSpec::torn_writes(2, 0.5).with_probability(0.3));
        inj.push(FaultSpec::fail_writes(30).with_probability(0.2));
        inj.push(FaultSpec::fail_reads(60).with_probability(0.15));
        inj.push(FaultSpec::corrupt_reads(25).with_probability(0.2));

        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for thread in 0..THREADS as u64 {
            let cache = Arc::clone(&cache);
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                let out = torture_worker(cache, label, thread);
                let _ = tx.send(());
                out
            }));
        }
        drop(tx);
        // Deadlock watchdog: every worker must finish within the budget.
        // A wedged shard lock or a reader-writer cycle trips this instead
        // of hanging CI forever. Generous because a loaded single-core
        // host timeshares 8 workers per scheme; a real deadlock never
        // finishes, so slack costs nothing when healthy.
        for _ in 0..THREADS {
            rx.recv_timeout(Duration::from_secs(600)).unwrap_or_else(|e| {
                panic!("{label}: torture worker did not finish (possible deadlock): {e}")
            });
        }
        let (mut gets, mut hits, mut faulted) = (0u64, 0u64, 0u64);
        for h in handles {
            let (g, h_, f) = h.join().expect("worker panicked");
            gets += g;
            hits += h_;
            faulted += f;
        }
        assert!(gets > 0, "{label}: no lookups completed");
        assert!(
            hits > 0,
            "{label}: torture produced zero verified hits ({gets} gets, {faulted} faulted ops)"
        );

        // Quiet phase: faults off, freshly acknowledged writes must all
        // come back verbatim (no lost committed writes).
        inj.clear();
        let mut t = cache.observed_clock();
        for i in 0..16u64 {
            let id = 10_000 + i;
            t = cache
                .set(&key_for(id), &value_for(id), t)
                .unwrap_or_else(|e| panic!("{label}: quiet-phase set failed: {e}"));
        }
        t = cache
            .flush(t)
            .unwrap_or_else(|e| panic!("{label}: quiet-phase flush failed: {e}"));
        for i in 0..16u64 {
            let id = 10_000 + i;
            let (v, t2) = cache
                .get(&key_for(id), t)
                .unwrap_or_else(|e| panic!("{label}: quiet-phase get failed: {e}"));
            assert_eq!(
                v.as_deref(),
                Some(value_for(id).as_slice()),
                "{label}: committed write lost or corrupted after fault storm"
            );
            t = t2;
        }
        // Every surviving torture key still verifies.
        for id in 0..KEYS {
            let (v, t2) = cache
                .get(&key_for(id), t)
                .unwrap_or_else(|e| panic!("{label}: post-storm get failed: {e}"));
            if let Some(v) = v {
                assert_eq!(v.as_ref(), value_for(id).as_slice(), "{label}: key {id}");
            }
            t = t2;
        }
        let m = cache.metrics();
        assert!(
            m.hits <= m.gets,
            "{label}: lookup accounting drifted under concurrency"
        );
    }
}

/// A [`RegionBackend`] decorator whose next read parks on a condvar until
/// released — a device-latency magnifier with no simulated-time footprint.
struct GateBackend {
    inner: Arc<dyn RegionBackend>,
    armed: AtomicBool,
    reader_parked: AtomicBool,
    released: Mutex<bool>,
    cv: Condvar,
}

impl GateBackend {
    fn new(inner: Arc<dyn RegionBackend>) -> Self {
        GateBackend {
            inner,
            armed: AtomicBool::new(false),
            reader_parked: AtomicBool::new(false),
            released: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl RegionBackend for GateBackend {
    fn region_size(&self) -> usize {
        self.inner.region_size()
    }

    fn num_regions(&self) -> u32 {
        self.inner.num_regions()
    }

    fn write_region(
        &self,
        region: RegionId,
        data: &[u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        self.inner.write_region(region, data, now)
    }

    fn read(
        &self,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        if self.armed.swap(false, Ordering::AcqRel) {
            self.reader_parked.store(true, Ordering::Release);
            let mut released = self.released.lock().unwrap();
            while !*released {
                released = self.cv.wait(released).unwrap();
            }
        }
        self.inner.read(region, offset, buf, now)
    }

    fn readable_bytes(&self, region: RegionId) -> usize {
        self.inner.readable_bytes(region)
    }

    fn discard_region(&self, region: RegionId, now: Nanos) -> Result<Nanos, CacheError> {
        self.inner.discard_region(region, now)
    }

    fn host_bytes_written(&self) -> u64 {
        self.inner.host_bytes_written()
    }

    fn media_bytes_written(&self) -> u64 {
        self.inner.media_bytes_written()
    }

    fn label(&self) -> &'static str {
        "gated"
    }
}

#[test]
fn blocked_flash_read_does_not_block_concurrent_set() {
    let inner: Arc<dyn RegionBackend> = Arc::new(BlockBackend::new(
        Arc::new(RamDisk::new(1024)),
        REGION,
    ));
    let gate = Arc::new(GateBackend::new(inner));
    let backend: Arc<dyn RegionBackend> = Arc::clone(&gate) as Arc<dyn RegionBackend>;
    // dram_bytes == 0 in small_test, so every hit takes the flash path.
    let cache = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());

    let t = cache.set(b"victim", &value_for(1), Nanos::ZERO).unwrap();
    let t = cache.flush(t).unwrap();

    gate.armed.store(true, Ordering::Release);
    let reader = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            let (v, _) = cache.get(b"victim", t).expect("gated read");
            v.expect("victim must hit")
        })
    };
    // Wait until the reader is provably parked inside the device read.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !gate.reader_parked.load(Ordering::Acquire) {
        assert!(
            std::time::Instant::now() < deadline,
            "reader never reached the gated device read"
        );
        std::thread::yield_now();
    }

    // The regression this guards: with I/O under the engine lock, this
    // set would queue behind the parked read. It must complete while the
    // reader is still inside the device.
    let (tx, rx) = mpsc::channel();
    let writer = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            let t2 = cache.set(b"other", &value_for(2), t).expect("concurrent set");
            tx.send(()).expect("report set completion");
            t2
        })
    };
    rx.recv_timeout(Duration::from_secs(10))
        .expect("set blocked behind an in-flight device read — I/O is under a lock again");
    assert!(
        gate.reader_parked.load(Ordering::Acquire),
        "gate released early; the test proved nothing"
    );
    writer.join().expect("writer panicked");

    gate.release();
    let value = reader.join().expect("reader panicked");
    assert_eq!(value.as_ref(), value_for(1).as_slice());

    let (v, _) = cache.get(b"other", cache.observed_clock()).unwrap();
    assert_eq!(v.as_deref(), Some(value_for(2).as_slice()));
}

/// Builds one Zone-Cache with a clean-pool watermark so maintainer passes
/// have work to do.
fn zone_cache_with_watermark() -> Arc<LogCache> {
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let backend = Arc::new(ZoneBackend::new(dev));
    let mut config = CacheConfig::small_test();
    config.clean_region_watermark = 3;
    Arc::new(LogCache::new(backend, config).unwrap())
}

#[test]
fn maintainer_driven_at_sim_times_is_deterministic() {
    let mut results = Vec::new();
    for _ in 0..2 {
        let cache = zone_cache_with_watermark();
        let mut t = Nanos::ZERO;
        // Cold fill: unique keys keep every region's entries valid, so the
        // free pool actually drains. (A hot-key loop would fully invalidate
        // old regions, which the engine reclaims for free — no eviction.)
        for i in 0..4_000u64 {
            t = cache.set(&key_for(i), &value_for(i), t).unwrap();
        }
        t = cache.flush(t).unwrap();
        // Deterministic sim-time driving: no background thread, explicit
        // clock, identical state -> identical victims in identical order.
        let maintainer = Maintainer::new(Arc::clone(&cache));
        let first = maintainer.run_once(t).unwrap();
        let again = maintainer.run_once(t + Nanos::from_millis(1)).unwrap();
        assert!(
            again.is_empty(),
            "pool already at watermark; second pass must be a no-op"
        );
        results.push((first, cache.clean_regions()));
    }
    assert_eq!(results[0], results[1], "maintainer passes diverged");
    assert!(
        !results[0].0.is_empty(),
        "watermark pass evicted nothing — the test exercised no work"
    );
}
