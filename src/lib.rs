//! Reproduction of *"Can ZNS SSDs be Better Storage Devices for Persistent
//! Cache?"* (HotStorage '24).
//!
//! This root crate re-exports the workspace so examples and integration
//! tests can reach every layer through one dependency:
//!
//! * [`zns_cache`] — the paper's subject: the log-structured persistent
//!   cache with its four scheme backends,
//! * [`zns`] / [`ftl`] / [`nand`] — the ZNS SSD, the conventional SSD, and
//!   the shared flash model beneath both,
//! * [`f2fs_lite`] — the ZNS filesystem under File-Cache,
//! * [`lsm`] / [`hdd`] — the RocksDB-style store and its disk for the
//!   end-to-end evaluation,
//! * [`workload`] — CacheBench/db_bench-style generators,
//! * [`sim`] — the simulated-time kernel.
//!
//! See `README.md` for a walkthrough, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use zns_cache_repro::zns::{ZnsConfig, ZnsDevice};
//! use zns_cache_repro::zns_cache::backend::ZoneBackend;
//! use zns_cache_repro::zns_cache::{CacheConfig, LogCache};
//! use zns_cache_repro::sim::Nanos;
//!
//! let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
//! let cache = LogCache::new(Arc::new(ZoneBackend::new(dev)), CacheConfig::small_test())?;
//! let t = cache.set(b"hello", b"world", Nanos::ZERO)?;
//! assert!(cache.get(b"hello", t)?.0.is_some());
//! # Ok::<(), zns_cache_repro::zns_cache::CacheError>(())
//! ```

pub use f2fs_lite;
pub use ftl;
pub use hdd;
pub use lsm;
pub use nand;
pub use sim;
pub use workload;
pub use zns;
pub use zns_cache;
pub use zns_cache_server;
