//! Drives the raw ZNS device interface — writes, appends, resets, finish,
//! state-machine limits — and prints a `report-zones`-style table, useful
//! for understanding the zone model the cache schemes sit on.
//!
//! ```text
//! cargo run --example zone_inspector
//! ```

use zns_cache_repro::sim::Nanos;
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice, ZoneId};

fn report(dev: &ZnsDevice, what: &str) {
    println!("-- {what}");
    println!("zone  state          wp/cap     resets");
    for info in dev.report_zones().iter().take(8) {
        println!(
            "{:>4}  {:<13}  {:>4}/{:<4}  {:>5}",
            info.id.0, info.state.to_string(), info.write_pointer, info.capacity, info.reset_count
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = ZnsDevice::new(ZnsConfig::small_test());
    println!(
        "device: {} zones x {} blocks (cap {} blocks), max open {}, max active {}\n",
        dev.num_zones(),
        dev.zone_size_blocks(),
        dev.zone_cap_blocks(),
        dev.max_open_zones(),
        dev.max_active_zones()
    );

    let block = vec![0xabu8; 4096];
    let mut t = Nanos::ZERO;

    // Sequential writes implicitly open a zone.
    for _ in 0..3 {
        t = dev.write(ZoneId(0), &block, t)?;
    }
    // Zone append returns the offset it chose.
    let (off, t2) = dev.append(ZoneId(1), &block, t)?;
    t = t2;
    println!("append to zone 1 landed at block offset {off}");

    // Fill zone 2 to capacity: it becomes Full on its own.
    let whole = vec![0xcdu8; (dev.zone_cap_blocks() as usize) * 4096];
    t = dev.write(ZoneId(2), &whole, t)?;

    // Finish zone 3 early; reset zone 0.
    dev.write(ZoneId(3), &block, t)?;
    dev.finish(ZoneId(3), t)?;
    t = dev.reset(ZoneId(0), t)?;
    report(&dev, "after writes / append / finish / reset");

    // Violations are rejected, not absorbed.
    let wrong_offset = dev.write_at(ZoneId(1), 7, &block, t);
    println!("\nwrite at wrong offset  -> {wrong_offset:?}");
    let read_ahead = {
        let mut buf = vec![0u8; 4096];
        dev.read(ZoneId(1), 5, &mut buf, t)
    };
    println!("read beyond pointer    -> {read_ahead:?}");
    let write_full = dev.write(ZoneId(2), &block, t);
    println!("write to full zone     -> {write_full:?}");

    let stats = dev.stats();
    println!(
        "\nstats: host wrote {} blocks, media wrote {} bytes, WA = {:.3} (always 1.0 on ZNS)",
        stats.host_blocks_written,
        stats.media_bytes_written,
        stats.write_amplification()
    );
    Ok(())
}
