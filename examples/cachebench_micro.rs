//! A miniature CacheBench session against the Region-Cache scheme, with
//! end-to-end data verification: every hit is checked byte-for-byte
//! against the deterministic value the workload would have written.
//!
//! ```text
//! cargo run --example cachebench_micro
//! ```

use std::sync::Arc;

use zns_cache_repro::sim::Nanos;
use zns_cache_repro::workload::{value_for_key, CacheBench, CacheBenchConfig, Op};
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice};
use zns_cache_repro::zns_cache::backend::MiddleConfig;
use zns_cache_repro::zns_cache::{CacheConfig, SchemeCache};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small Region-Cache over a 16-zone device, keeping payloads in RAM
    // so hits can be verified.
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let sc = SchemeCache::region(dev, MiddleConfig::small_test(), CacheConfig::small_test())?;
    let cache = &sc.cache;

    let mut bench = CacheBench::new(CacheBenchConfig::paper_mix(2_000, 7));
    let mut t = Nanos::ZERO;
    let (mut hits, mut misses, mut verified) = (0u64, 0u64, 0u64);

    for _ in 0..30_000 {
        match bench.next_op() {
            Op::Get { id, key } => {
                let (value, t2) = cache.get(&key, t)?;
                t = t2;
                match value {
                    Some(v) => {
                        hits += 1;
                        // The cache must return exactly what was last set.
                        let expect = value_for_key(id, bench.version_of(id));
                        assert_eq!(v.as_ref(), expect.as_slice(), "corrupt hit for key {id}");
                        verified += 1;
                    }
                    None => {
                        misses += 1;
                        // Look-aside fill.
                        let fill = value_for_key(id, bench.version_of(id));
                        t = cache.set(&key, &fill, t)?;
                    }
                }
            }
            Op::Set { key, value, .. } => t = cache.set(&key, &value, t)?,
            Op::Delete { key, .. } => t = cache.delete(&key, t)?.1,
        }
    }

    let m = cache.metrics();
    println!("ops           : 30000 over {t} simulated");
    println!("hits / misses : {hits} / {misses} (verified {verified} payloads)");
    println!("engine        : {m:#?}");
    println!("middle layer  : {:?}", sc.middle.as_ref().unwrap().stats());
    println!("device WA     : {:.3}", sc.write_amplification());
    Ok(())
}
