//! The paper's end-to-end stack in miniature: an LSM key-value store on a
//! (simulated) HDD whose block cache demotes into a ZNS flash cache —
//! RocksDB + CacheLib as in §4.2.
//!
//! ```text
//! cargo run --example lsm_secondary
//! ```

use std::sync::Arc;

use zns_cache_repro::hdd::{Hdd, HddConfig};
use zns_cache_repro::lsm::bench::{fill_random, read_random};
use zns_cache_repro::lsm::{Db, DbConfig, NavySecondary};
use zns_cache_repro::sim::Nanos;
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice};
use zns_cache_repro::zns_cache::backend::MiddleConfig;
use zns_cache_repro::zns_cache::{CacheConfig, SchemeCache};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Flash secondary cache: Region-Cache on a small ZNS device.
    let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
    let flash = SchemeCache::region(dev, MiddleConfig::small_test(), CacheConfig::small_test())?;
    let secondary = Arc::new(NavySecondary::new(flash.cache.clone()));

    // The database on a mechanical disk.
    let db = Db::open(DbConfig {
        dev: Arc::new(Hdd::new(HddConfig::small_test())),
        secondary: Some(secondary),
        block_cache_bytes: 16 * 1024, // tiny DRAM → flash tier matters
        ..DbConfig::small_test()
    })?;

    // db_bench: fillrandom then readrandom with exp-range skew.
    let keys = 2_000;
    let t = fill_random(&db, keys, 64, 42, Nanos::ZERO)?;
    println!("filled {keys} keys; db stats: {:?}", db.stats());

    for er in [5.0, 15.0, 25.0] {
        let r = read_random(&db, keys, 2_000, er, 4, 7, t)?;
        println!(
            "readrandom ER={er:>4}: {:>8.0} ops/s, found {:>4}/{}, p50 {}, p99 {}",
            r.ops_per_sec(),
            r.found,
            r.ops,
            r.latency.percentile(50.0),
            r.latency.percentile(99.0),
        );
    }

    let cache_stats = db.cache_stats();
    println!(
        "block cache: dram {} / flash {} / device {} (hit ratio {:.2})",
        cache_stats.dram_hits,
        cache_stats.secondary_hits,
        cache_stats.misses,
        cache_stats.hit_ratio()
    );
    println!(
        "flash cache engine: {} objects, WA {:.3}",
        flash.cache.len(),
        flash.write_amplification()
    );
    Ok(())
}
