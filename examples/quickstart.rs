//! Quickstart: build each of the paper's four cache schemes, store and
//! fetch a few objects, and print what the device underneath saw.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use zns_cache_repro::f2fs_lite::{FileSystem, FsConfig};
use zns_cache_repro::ftl::{BlockSsd, FtlConfig};
use zns_cache_repro::sim::Nanos;
use zns_cache_repro::zns::{ZnsConfig, ZnsDevice};
use zns_cache_repro::zns_cache::backend::MiddleConfig;
use zns_cache_repro::zns_cache::{CacheConfig, CacheError, Scheme, SchemeCache};

fn build(scheme: Scheme) -> Result<SchemeCache, CacheError> {
    let config = CacheConfig::small_test();
    match scheme {
        Scheme::Block => SchemeCache::block(
            Arc::new(BlockSsd::new(FtlConfig::small_test())),
            4 * 4096,
            None,
            config,
        ),
        Scheme::File => SchemeCache::file(
            Arc::new(FileSystem::format(FsConfig::small_test())),
            4 * 4096,
            24,
            config,
            Nanos::ZERO,
        ),
        Scheme::Zone => SchemeCache::zone(
            Arc::new(ZnsDevice::new(ZnsConfig::small_test())),
            None,
            config,
        ),
        Scheme::Region => SchemeCache::region(
            Arc::new(ZnsDevice::new(ZnsConfig::small_test())),
            MiddleConfig::small_test(),
            config,
        ),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for scheme in Scheme::ALL {
        let sc = build(scheme)?;
        let cache = &sc.cache;

        // Store a handful of objects and overwrite one.
        let mut t = Nanos::ZERO;
        t = cache.set(b"user:1001", b"{\"name\":\"ada\"}", t)?;
        t = cache.set(b"user:1002", b"{\"name\":\"grace\"}", t)?;
        t = cache.set(b"user:1001", b"{\"name\":\"ada lovelace\"}", t)?;

        // Push everything to flash and read back.
        t = cache.flush(t)?;
        let (hit, t2) = cache.get(b"user:1001", t)?;
        let (miss, _) = cache.get(b"user:9999", t2)?;

        println!("== {scheme}");
        println!(
            "   get(user:1001) -> {:?}  ({} simulated)",
            hit.as_deref().map(String::from_utf8_lossy),
            t2 - t
        );
        println!("   get(user:9999) -> {miss:?}");
        let m = cache.metrics();
        println!(
            "   sets={} gets={} hit_ratio={:.2} write_amplification={:.3}",
            m.sets,
            m.gets,
            m.hit_ratio(),
            sc.write_amplification()
        );
    }
    Ok(())
}
