//! Strongly-typed simulated time.
//!
//! All device models express durations and timestamps as [`Nanos`]. The type
//! is a transparent wrapper over `u64` nanoseconds with saturating
//! arithmetic: an experiment that runs "too long" clamps rather than
//! panicking mid-simulation.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, or a duration, in nanoseconds.
///
/// Which of the two a value means is contextual, exactly as with `u64`
/// timestamps in trace formats; the arithmetic provided (`Add`, `Sub`,
/// scalar `Mul`/`Div`) covers both uses.
///
/// # Example
///
/// ```
/// use sim::Nanos;
///
/// let start = Nanos::from_micros(10);
/// let end = start + Nanos::from_micros(5);
/// assert_eq!((end - start).as_micros(), 5);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Nanos(pub u64);

/// Convenience alias used in configuration code where microsecond
/// granularity reads better.
pub type Micros = Nanos;

impl Nanos {
    /// The zero timestamp — the instant every simulation starts at.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable time; used as an "idle forever" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Truncating conversion to microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Truncating conversion to milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Conversion to (fractional) seconds, for throughput math.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating difference; zero when `other` is later than `self`.
    #[inline]
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Whether this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    /// # Panics
    ///
    /// Panics if `rhs` is zero, mirroring integer division.
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, x| acc + x)
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Nanos::from_millis(3).as_micros(), 3_000);
        assert_eq!(Nanos::from_secs(3).as_millis(), 3_000);
        assert_eq!(Nanos::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Nanos::MAX + Nanos(1), Nanos::MAX);
        assert_eq!(Nanos(1) - Nanos(5), Nanos::ZERO);
        assert_eq!(Nanos(5).saturating_sub(Nanos(1)), Nanos(4));
    }

    #[test]
    fn ordering_helpers() {
        assert_eq!(Nanos(3).max(Nanos(7)), Nanos(7));
        assert_eq!(Nanos(3).min(Nanos(7)), Nanos(3));
        assert!(Nanos::ZERO.is_zero());
        assert!(!Nanos(1).is_zero());
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(500)), "500ns");
        assert_eq!(format!("{}", Nanos::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Nanos::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }
}
