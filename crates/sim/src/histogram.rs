//! Log-bucketed latency histogram.
//!
//! The evaluation reports P50/P99 latencies (Fig. 5c/5d of the paper), so the
//! kernel ships a compact HDR-style histogram: buckets grow geometrically,
//! giving <1% bucket width across nine decades of nanoseconds while using a
//! fixed 40 KiB of memory, and percentiles interpolate linearly inside the
//! selected bucket so sub-microsecond distributions (DRAM-tier hits cluster
//! around the ~1 µs lookup cost) resolve to distinct values instead of
//! pinning at a bucket boundary. Recording is wait-free (atomic bucket
//! increments), so one histogram can be shared by many worker threads, and
//! histograms can be merged, which the closed-loop drivers use to combine
//! per-worker recordings.

use std::sync::atomic::{AtomicU64, Ordering};

// relaxed-ok(file): wait-free statistics buckets; counts are merged and
// reported with no ordering dependence on any other memory.

use crate::time::Nanos;

/// Sub-buckets per power of two; 128 gives <= 1/128 ≈ 0.8% bucket width,
/// fine enough that the ~1 µs DRAM-hit cluster and the multi-µs flash
/// path land in different buckets (16 sub-buckets pinned every scheme's
/// p50 to the same 1024 ns boundary).
const SUBBUCKETS_LOG2: u32 = 7;
const SUBBUCKETS: usize = 1 << SUBBUCKETS_LOG2;
/// Covers values up to 2^40 ns ≈ 18 minutes, far beyond any simulated op.
const DECADES: usize = 40;
const NUM_BUCKETS: usize = DECADES * SUBBUCKETS;

/// A fixed-size log-bucketed histogram of [`Nanos`] durations.
///
/// Recording takes `&self` and is wait-free: every field is an atomic updated
/// with relaxed ordering, so concurrent recorders never block each other.
/// Readers ([`Self::percentile`], [`Self::count`], ...) observe a
/// possibly-slightly-torn view while writers are active; quiesce recorders
/// (or clone) before reporting if exact totals matter.
///
/// # Example
///
/// ```
/// use sim::{LatencyHistogram, Nanos};
///
/// let h = LatencyHistogram::new();
/// for i in 1..=100u64 {
///     h.record(Nanos::from_micros(i));
/// }
/// let p50 = h.percentile(50.0).as_micros();
/// assert!((45..=56).contains(&p50), "p50 was {p50}");
/// assert_eq!(h.count(), 100);
/// ```
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of nanoseconds. `u64` overflows only after 2^64 ns ≈ 584 years of
    /// accumulated latency — unreachable for any run this kernel drives.
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(value: u64) -> usize {
        // Values below SUBBUCKETS land in the linear prefix of bucket space.
        if value < SUBBUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUBBUCKETS_LOG2;
        let sub = ((value >> shift) as usize) & (SUBBUCKETS - 1);
        let idx = ((msb - SUBBUCKETS_LOG2 + 1) as usize) * SUBBUCKETS + sub;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Representative (upper-bound) value for a bucket, the inverse of
    /// [`Self::bucket_index`] up to bucket granularity.
    fn bucket_value(idx: usize) -> u64 {
        if idx < SUBBUCKETS {
            return idx as u64;
        }
        let decade = (idx / SUBBUCKETS) as u32;
        let sub = (idx % SUBBUCKETS) as u64;
        let base = 1u64 << (decade + SUBBUCKETS_LOG2 - 1);
        base + (sub + 1) * (base >> SUBBUCKETS_LOG2)
    }

    /// Records one duration. Wait-free; safe to call from many threads.
    pub fn record(&self, value: Nanos) {
        let v = value.as_nanos();
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples, zero when empty.
    pub fn mean(&self) -> Nanos {
        let sum = self.sum.load(Ordering::Relaxed);
        Nanos::from_nanos(sum.checked_div(self.count()).unwrap_or(0))
    }

    /// Smallest recorded sample, zero when empty.
    pub fn min(&self) -> Nanos {
        if self.count() == 0 {
            Nanos::ZERO
        } else {
            Nanos::from_nanos(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Nanos {
        Nanos::from_nanos(self.max.load(Ordering::Relaxed))
    }

    /// Lower bound of a bucket: the upper bound of its predecessor.
    fn bucket_lower(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else {
            Self::bucket_value(idx - 1)
        }
    }

    /// Value at or below which `p` percent of samples fall.
    ///
    /// The rank is located in the log-bucketed counts, then the value is
    /// linearly interpolated between the bucket's bounds by the rank's
    /// position among the bucket's samples — so two distributions whose
    /// mass lands in the same bucket still report distinct percentiles,
    /// and a percentile is never quantized to a bucket boundary.
    ///
    /// `p` is clamped into `[0, 100]`. Returns zero for an empty histogram.
    pub fn percentile(&self, p: f64) -> Nanos {
        let count = self.count();
        if count == 0 {
            return Nanos::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let floor = self.min().as_nanos();
        let ceil = self.max().as_nanos();
        let mut seen = 0u64;
        for (idx, c) in self.buckets.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c != 0 && seen + c >= target {
                let lower = Self::bucket_lower(idx);
                let upper = Self::bucket_value(idx);
                let frac = (target - seen) as f64 / c as f64;
                let v = lower as f64 + frac * (upper - lower) as f64;
                return Nanos::from_nanos((v.round() as u64).clamp(floor, ceil));
            }
            seen += c;
        }
        self.max()
    }

    /// Merges another histogram into this one.
    ///
    /// Wait-free against concurrent recorders on either side, but for an
    /// exact merged total the other histogram should be quiescent.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = b.load(Ordering::Relaxed);
            if v != 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        if other.count() > 0 {
            self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Clears all recorded samples. Not atomic with respect to concurrent
    /// recorders; quiesce first.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Clone for LatencyHistogram {
    fn clone(&self) -> Self {
        LatencyHistogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| AtomicU64::new(b.load(Ordering::Relaxed)))
                .collect(),
            count: AtomicU64::new(self.count.load(Ordering::Relaxed)),
            sum: AtomicU64::new(self.sum.load(Ordering::Relaxed)),
            min: AtomicU64::new(self.min.load(Ordering::Relaxed)),
            max: AtomicU64::new(self.max.load(Ordering::Relaxed)),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.percentile(50.0), Nanos::ZERO);
        assert_eq!(h.min(), Nanos::ZERO);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = LatencyHistogram::new();
        h.record(Nanos::from_micros(123));
        for p in [0.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(p).as_micros();
            assert!((116..=130).contains(&v), "p{p} was {v}");
        }
    }

    #[test]
    fn percentiles_have_bounded_relative_error() {
        let h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(Nanos::from_nanos(i * 100));
        }
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = (p / 100.0 * 10_000.0) as u64 * 100;
            let got = h.percentile(p).as_nanos();
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.08, "p{p}: exact {exact} got {got} err {err}");
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Nanos::from_micros(1));
        b.record(Nanos::from_micros(1_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min().as_micros(), 1);
        assert_eq!(a.max().as_micros(), 1_000);
    }

    #[test]
    fn max_is_not_exceeded_by_percentile() {
        let h = LatencyHistogram::new();
        h.record(Nanos::from_nanos(1_000_003));
        assert!(h.percentile(100.0) <= h.max());
    }

    #[test]
    fn reset_clears_everything() {
        let h = LatencyHistogram::new();
        h.record(Nanos::from_micros(5));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), Nanos::ZERO);
    }

    #[test]
    fn nearby_submicrosecond_distributions_have_distinct_p50s() {
        // Regression: with 16 sub-buckets per decade, every scheme's
        // DRAM-hit p50 quantized to the 1024 ns bucket boundary, so the
        // benchmark artifact could not tell a 950 ns path from an 1100 ns
        // one. Two point masses 60 ns apart must resolve to distinct,
        // accurate p50s.
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..1_000 {
            a.record(Nanos::from_nanos(950));
            b.record(Nanos::from_nanos(1_010));
        }
        let p50_a = a.percentile(50.0).as_nanos();
        let p50_b = b.percentile(50.0).as_nanos();
        assert_ne!(p50_a, p50_b, "sub-µs distributions collapsed to one p50");
        assert!((945..=955).contains(&p50_a), "p50 of 950ns mass was {p50_a}");
        assert!((1_005..=1_015).contains(&p50_b), "p50 of 1010ns mass was {p50_b}");
    }

    #[test]
    fn interpolation_spreads_ranks_within_a_bucket() {
        // 100 samples of a point mass: p10..p100 must all stay inside the
        // mass's bucket and be clamped into the recorded [min, max].
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Nanos::from_nanos(3_000));
        }
        for p in [10.0, 50.0, 90.0, 100.0] {
            assert_eq!(h.percentile(p).as_nanos(), 3_000, "point mass must report itself");
        }
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0;
        for v in (0..1_000_000u64).step_by(997) {
            let idx = LatencyHistogram::bucket_index(v);
            assert!(idx >= last);
            last = idx;
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(Nanos::from_nanos((t * 10_000 + i) % 50_000 + 1));
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert!(h.max().as_nanos() <= 50_000);
        assert!(h.min().as_nanos() >= 1);
    }

    #[test]
    fn clone_snapshots_state() {
        let h = LatencyHistogram::new();
        h.record(Nanos::from_micros(7));
        let c = h.clone();
        h.record(Nanos::from_micros(9));
        assert_eq!(c.count(), 1);
        assert_eq!(h.count(), 2);
    }
}
