//! Log-bucketed latency histogram.
//!
//! The evaluation reports P50/P99 latencies (Fig. 5c/5d of the paper), so the
//! kernel ships a compact HDR-style histogram: buckets grow geometrically,
//! giving ~4% relative error across nine decades of nanoseconds while using a
//! fixed 1.5 KiB of memory. Histograms can be merged, which the closed-loop
//! driver uses to combine per-worker recordings.

use crate::time::Nanos;

/// Sub-buckets per power of two; 16 gives <= 1/16 ≈ 6% relative error.
const SUBBUCKETS_LOG2: u32 = 4;
const SUBBUCKETS: usize = 1 << SUBBUCKETS_LOG2;
/// Covers values up to 2^40 ns ≈ 18 minutes, far beyond any simulated op.
const DECADES: usize = 40;
const NUM_BUCKETS: usize = DECADES * SUBBUCKETS;

/// A fixed-size log-bucketed histogram of [`Nanos`] durations.
///
/// # Example
///
/// ```
/// use sim::{LatencyHistogram, Nanos};
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=100u64 {
///     h.record(Nanos::from_micros(i));
/// }
/// let p50 = h.percentile(50.0).as_micros();
/// assert!((45..=56).contains(&p50), "p50 was {p50}");
/// assert_eq!(h.count(), 100);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u128,
    min: Nanos,
    max: Nanos,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: Nanos::MAX,
            max: Nanos::ZERO,
        }
    }

    fn bucket_index(value: u64) -> usize {
        // Values below SUBBUCKETS land in the linear prefix of bucket space.
        if value < SUBBUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUBBUCKETS_LOG2;
        let sub = ((value >> shift) as usize) & (SUBBUCKETS - 1);
        let idx = ((msb - SUBBUCKETS_LOG2 + 1) as usize) * SUBBUCKETS + sub;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Representative (upper-bound) value for a bucket, the inverse of
    /// [`Self::bucket_index`] up to bucket granularity.
    fn bucket_value(idx: usize) -> u64 {
        if idx < SUBBUCKETS {
            return idx as u64;
        }
        let decade = (idx / SUBBUCKETS) as u32;
        let sub = (idx % SUBBUCKETS) as u64;
        let base = 1u64 << (decade + SUBBUCKETS_LOG2 - 1);
        base + (sub + 1) * (base >> SUBBUCKETS_LOG2)
    }

    /// Records one duration.
    pub fn record(&mut self, value: Nanos) {
        let v = value.as_nanos();
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples, zero when empty.
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            Nanos::from_nanos((self.sum / self.count as u128) as u64)
        }
    }

    /// Smallest recorded sample, zero when empty.
    pub fn min(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Value at or below which `p` percent of samples fall.
    ///
    /// `p` is clamped into `[0, 100]`. Returns zero for an empty histogram.
    pub fn percentile(&self, p: f64) -> Nanos {
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Nanos::from_nanos(Self::bucket_value(idx).min(self.max.as_nanos()));
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = Nanos::MAX;
        self.max = Nanos::ZERO;
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.percentile(50.0), Nanos::ZERO);
        assert_eq!(h.min(), Nanos::ZERO);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos::from_micros(123));
        for p in [0.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(p).as_micros();
            assert!((116..=130).contains(&v), "p{p} was {v}");
        }
    }

    #[test]
    fn percentiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(Nanos::from_nanos(i * 100));
        }
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = (p / 100.0 * 10_000.0) as u64 * 100;
            let got = h.percentile(p).as_nanos();
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.08, "p{p}: exact {exact} got {got} err {err}");
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Nanos::from_micros(1));
        b.record(Nanos::from_micros(1_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min().as_micros(), 1);
        assert_eq!(a.max().as_micros(), 1_000);
    }

    #[test]
    fn max_is_not_exceeded_by_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos::from_nanos(1_000_003));
        assert!(h.percentile(100.0) <= h.max());
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos::from_micros(5));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), Nanos::ZERO);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0;
        for v in (0..1_000_000u64).step_by(997) {
            let idx = LatencyHistogram::bucket_index(v);
            assert!(idx >= last);
            last = idx;
        }
    }
}
