//! Structured event tracing with simulated-time timestamps.
//
// ordering-ok(file): the ring is a seqlock — Release publishes each
// slot's payload against the Acquire re-check in `snapshot`, and the
// global enable flag / sequence counter use SeqCst so a toggle is a
// total-order barrier between test phases. This is diagnostics
// infrastructure; it deliberately lives outside the engine's
// loom-modeled protocol module and its interleavings are covered by the
// `trace_*` stress tests instead.
//!
//! A global, process-wide event log built for diagnosing concurrency
//! pathologies (cleaner-vs-foreground serialization, eviction stalls,
//! per-zone interference) that aggregate counters cannot localize in
//! time. Design constraints, in priority order:
//!
//! 1. **Zero overhead when disabled.** [`emit`] loads one atomic flag
//!    and returns. No allocation, no locks, no branches beyond the
//!    gate. Callers sprinkle `trace::emit(..)` on hot paths freely.
//! 2. **No cross-thread contention when enabled.** Each thread writes
//!    to its own fixed-capacity ring buffer, registered once (the only
//!    lock, taken on a thread's *first* event). Slots are plain
//!    atomics — no `unsafe`, Miri-clean.
//! 3. **Snapshots merge and order.** [`snapshot`] collects every
//!    thread's ring, drops slots that are mid-write (seqlock check),
//!    and sorts by `(sim time, global sequence)` into one timeline.
//!
//! Timestamps are **simulated** nanoseconds ([`Nanos`]), so a merged
//! trace lines up with the discrete-event model the benchmarks report
//! in, not with wall-clock scheduling noise.
//!
//! Rings hold the most recent [`RING_CAPACITY`] events per thread;
//! older events are overwritten (see [`dropped`]). Snapshots taken
//! while writers are still emitting are safe but may skip in-flight
//! slots; take them at quiesced points (end of a benchmark phase) for
//! complete timelines.
//!
//! # Example
//!
//! ```
//! use sim::{trace, Nanos};
//!
//! trace::clear();
//! trace::enable();
//! trace::emit(trace::EventKind::ZoneReset, Nanos(500), 3, 0);
//! trace::disable();
//! let events = trace::snapshot();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].kind, trace::EventKind::ZoneReset);
//! assert_eq!(events[0].a, 3);
//! ```

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::Nanos;

/// Events retained per thread; older events are overwritten.
pub const RING_CAPACITY: usize = 16_384;

/// What happened. Payload fields `a`/`b` are kind-specific:
///
/// | kind                 | `a`                    | `b`                         |
/// |----------------------|------------------------|-----------------------------|
/// | `ZoneReset`          | zone id                | 0                           |
/// | `ZoneFinish`         | zone id                | 0                           |
/// | `RegionSeal`         | region id              | bytes written               |
/// | `RegionEvict`        | region id              | objects dropped             |
/// | `RegionQuarantine`   | region id              | 0                           |
/// | `CleanerStart`       | free zones             | 1 = foreground, 0 = bg      |
/// | `CleanerStop`        | free zones             | zones cleaned this pass     |
/// | `CleanerVictim`      | zone id                | valid blocks migrated       |
/// | `InlineEviction`     | region id              | 0                           |
/// | `MaintainerEviction` | region id              | 0                           |
/// | `IoRetry`            | attempt number         | backoff nanos               |
/// | `FaultInjected`      | op (1 rd, 2 wr, 3 trim)| shape (1 fail, 2 torn, 3 flip, 4 ro, 5 off) |
/// | `ZoneReadOnly`       | zone id                | reset count at degradation  |
/// | `ZoneOffline`        | zone id                | 0                           |
/// | `ScrubStart`         | sealed regions to scan | 0                           |
/// | `ScrubStop`          | regions scanned        | corrupt objects found       |
/// | `ScrubSalvage`       | region id              | bytes salvaged              |
/// | `DieService`         | die index              | service end (nanos)         |
/// | `RequestArrive`      | request id             | connection id               |
/// | `RequestShardEnqueue`| request id             | shard id                    |
/// | `RequestEngineStart` | request id             | opcode (1 get, 2 set, 3 del)|
/// | `RequestDone`        | request id             | engine latency (nanos)      |
/// | `RequestShed`        | request id             | shard id                    |
/// | `ConnReadBatch`      | frames decoded         | connection id               |
/// | `ReplyBatchFlush`    | reply frames written   | connection id               |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum EventKind {
    /// A ZNS zone was reset (all data discarded).
    ZoneReset = 1,
    /// A ZNS zone was transitioned to Full via an explicit finish.
    ZoneFinish = 2,
    /// A cache region buffer was flushed and sealed read-only.
    RegionSeal = 3,
    /// A sealed region was evicted and returned to the clean pool.
    RegionEvict = 4,
    /// A region slot was taken out of service after permanent failure.
    RegionQuarantine = 5,
    /// An f2fs-lite cleaning pass began.
    CleanerStart = 6,
    /// An f2fs-lite cleaning pass ended.
    CleanerStop = 7,
    /// The cleaner picked a victim zone and migrated its live blocks.
    CleanerVictim = 8,
    /// A foreground writer evicted inline because the clean pool was dry.
    InlineEviction = 9,
    /// The background maintainer evicted a region.
    MaintainerEviction = 10,
    /// A backend I/O was retried after a transient failure.
    IoRetry = 11,
    /// The fault injector fired: the failure this op reports (or the
    /// corruption it carries) was self-inflicted, not organic.
    FaultInjected = 12,
    /// A zone degraded to the Read-Only terminal state.
    ZoneReadOnly = 13,
    /// A zone degraded to the Offline terminal state.
    ZoneOffline = 14,
    /// A background scrub pass over sealed regions began.
    ScrubStart = 15,
    /// A background scrub pass ended.
    ScrubStop = 16,
    /// The scrubber salvage-migrated live data off a degrading region.
    ScrubSalvage = 17,
    /// One die's service window during a deep-queue zone-append flush:
    /// `t` is the window start, `b` its end. Emitted once per die per
    /// region flush; overlapping windows are the direct evidence that the
    /// stripe's dies program concurrently.
    DieService = 18,
    /// A server frontend decoded one request off a connection. Together
    /// with the other `Request*` kinds this forms a request-scoped span:
    /// filter a trace by `a == request id` and every hop — connection,
    /// shard queue, engine op, plus any zone/GC events emitted in
    /// between on the same shard timeline — lines up end to end.
    RequestArrive = 19,
    /// The request was admitted to a shard's bounded command queue.
    RequestShardEnqueue = 20,
    /// A shard command loop dequeued the request and entered the engine.
    RequestEngineStart = 21,
    /// The engine op completed; `b` is its simulated service latency.
    RequestDone = 22,
    /// The request was shed (typed BUSY reply) instead of queued.
    RequestShed = 23,
    /// One server read syscall drained `a` complete frames off a
    /// connection — the batched data path's read-side amortization
    /// gauge. An `a` persistently at 1 means the frontend is paying one
    /// syscall per request (no pipelining backlog to harvest).
    ConnReadBatch = 24,
    /// One locked write syscall flushed `a` coalesced reply frames to a
    /// connection — the write-side twin of [`EventKind::ConnReadBatch`].
    ReplyBatchFlush = 25,
}

impl EventKind {
    /// Stable snake_case name, used as the JSONL `kind` field.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ZoneReset => "zone_reset",
            EventKind::ZoneFinish => "zone_finish",
            EventKind::RegionSeal => "region_seal",
            EventKind::RegionEvict => "region_evict",
            EventKind::RegionQuarantine => "region_quarantine",
            EventKind::CleanerStart => "cleaner_start",
            EventKind::CleanerStop => "cleaner_stop",
            EventKind::CleanerVictim => "cleaner_victim",
            EventKind::InlineEviction => "inline_eviction",
            EventKind::MaintainerEviction => "maintainer_eviction",
            EventKind::IoRetry => "io_retry",
            EventKind::FaultInjected => "fault_injected",
            EventKind::ZoneReadOnly => "zone_read_only",
            EventKind::ZoneOffline => "zone_offline",
            EventKind::ScrubStart => "scrub_start",
            EventKind::ScrubStop => "scrub_stop",
            EventKind::ScrubSalvage => "scrub_salvage",
            EventKind::DieService => "die_service",
            EventKind::RequestArrive => "request_arrive",
            EventKind::RequestShardEnqueue => "request_shard_enqueue",
            EventKind::RequestEngineStart => "request_engine_start",
            EventKind::RequestDone => "request_done",
            EventKind::RequestShed => "request_shed",
            EventKind::ConnReadBatch => "conn_read_batch",
            EventKind::ReplyBatchFlush => "reply_batch_flush",
        }
    }

    fn from_u64(v: u64) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::ZoneReset,
            2 => EventKind::ZoneFinish,
            3 => EventKind::RegionSeal,
            4 => EventKind::RegionEvict,
            5 => EventKind::RegionQuarantine,
            6 => EventKind::CleanerStart,
            7 => EventKind::CleanerStop,
            8 => EventKind::CleanerVictim,
            9 => EventKind::InlineEviction,
            10 => EventKind::MaintainerEviction,
            11 => EventKind::IoRetry,
            12 => EventKind::FaultInjected,
            13 => EventKind::ZoneReadOnly,
            14 => EventKind::ZoneOffline,
            15 => EventKind::ScrubStart,
            16 => EventKind::ScrubStop,
            17 => EventKind::ScrubSalvage,
            18 => EventKind::DieService,
            19 => EventKind::RequestArrive,
            20 => EventKind::RequestShardEnqueue,
            21 => EventKind::RequestEngineStart,
            22 => EventKind::RequestDone,
            23 => EventKind::RequestShed,
            24 => EventKind::ConnReadBatch,
            25 => EventKind::ReplyBatchFlush,
            _ => return None,
        })
    }
}

/// One merged trace event, ordered by `(t, seq)` within a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global emission order (unique across threads, starts at 1).
    pub seq: u64,
    /// Small dense id of the emitting thread (registration order).
    pub thread: u64,
    /// Simulated timestamp the emitter observed.
    pub t: Nanos,
    /// What happened.
    pub kind: EventKind,
    /// First kind-specific payload (see [`EventKind`] table).
    pub a: u64,
    /// Second kind-specific payload (see [`EventKind`] table).
    pub b: u64,
}

/// One ring slot. `seq == 0` means empty or mid-write; writers store
/// the payload fields between two `seq` stores (0, then the real seq)
/// so readers can detect and skip torn slots — a seqlock with atomics
/// for every field, hence no `unsafe` and no UB under Miri.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    t: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

struct ThreadBuf {
    thread: u64,
    /// Total events ever pushed by this thread (not wrapped).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadBuf {
    fn new(thread: u64) -> ThreadBuf {
        let mut slots = Vec::with_capacity(RING_CAPACITY);
        slots.resize_with(RING_CAPACITY, Slot::default);
        ThreadBuf { thread, head: AtomicU64::new(0), slots: slots.into_boxed_slice() }
    }

    fn push(&self, kind: EventKind, t: Nanos, a: u64, b: u64) {
        // relaxed-ok: seq only needs uniqueness and rough order; the
        // seqlock publication below is what readers synchronize on.
        let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        // relaxed-ok: head is written by this thread only; snapshot
        // readers tolerate a stale head (they skip empty slots anyway).
        let idx = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[idx];
        slot.seq.store(0, Ordering::Release);
        // relaxed-ok: payload stores are fenced by the Release store of
        // `seq` below; readers Acquire-load seq before reading payload.
        slot.t.store(t.0, Ordering::Relaxed);
        // relaxed-ok: see above — published by the seq Release store.
        slot.kind.store(kind as u64, Ordering::Relaxed);
        // relaxed-ok: see above — published by the seq Release store.
        slot.a.store(a, Ordering::Relaxed);
        // relaxed-ok: see above — published by the seq Release store.
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<ThreadBuf>> = const { std::cell::OnceCell::new() };
}

/// Turns tracing on. Threads allocate their ring lazily on first emit.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns tracing off. Already-recorded events stay until [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether [`emit`] currently records anything.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Records one event at simulated time `t`. When tracing is disabled
/// this is a single relaxed atomic load — safe on any hot path.
#[inline]
pub fn emit(kind: EventKind, t: Nanos, a: u64, b: u64) {
    // relaxed-ok: gate flag only decides *whether* to record; no data
    // is published through it, and a stale read merely skips an event
    // at the enable/disable boundary.
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    emit_slow(kind, t, a, b);
}

#[cold]
fn emit_slow(kind: EventKind, t: Nanos, a: u64, b: u64) {
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            // relaxed-ok: thread ids only need uniqueness.
            let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(ThreadBuf::new(id));
            match registry().lock() {
                Ok(mut r) => r.push(Arc::clone(&buf)),
                Err(poisoned) => poisoned.into_inner().push(Arc::clone(&buf)),
            }
            buf
        });
        buf.push(kind, t, a, b);
    });
}

/// Merges every thread's ring into one timeline sorted by
/// `(sim time, emission order)`. Slots being overwritten concurrently
/// are skipped; snapshot at a quiesced point for a complete timeline.
pub fn snapshot() -> Vec<Event> {
    let bufs: Vec<Arc<ThreadBuf>> = match registry().lock() {
        Ok(r) => r.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    };
    let mut out = Vec::new();
    for buf in &bufs {
        for slot in buf.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            // relaxed-ok: payload loads are ordered after the Acquire
            // load of seq above and validated by the re-check below.
            let t = Nanos(slot.t.load(Ordering::Relaxed));
            // relaxed-ok: see above.
            let kind = slot.kind.load(Ordering::Relaxed);
            // relaxed-ok: see above.
            let a = slot.a.load(Ordering::Relaxed);
            // relaxed-ok: see above.
            let b = slot.b.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq {
                continue; // torn: overwritten while we read
            }
            let Some(kind) = EventKind::from_u64(kind) else {
                continue;
            };
            out.push(Event { seq, thread: buf.thread, t, kind, a, b });
        }
    }
    out.sort_by_key(|e| (e.t, e.seq));
    out
}

/// Number of events lost to ring wraparound since the last [`clear`].
pub fn dropped() -> u64 {
    let bufs = match registry().lock() {
        Ok(r) => r.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    };
    bufs.iter()
        .map(|b| b.head.load(Ordering::Acquire).saturating_sub(b.slots.len() as u64))
        .sum()
}

/// Empties every thread's ring (buffers stay allocated and registered).
pub fn clear() {
    let bufs = match registry().lock() {
        Ok(r) => r.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    };
    for buf in &bufs {
        buf.head.store(0, Ordering::Release);
        for slot in buf.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-global tracer, so each test serializes on
    // this lock and starts from a cleared, disabled state.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        let g = match GATE.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        disable();
        clear();
        g
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = exclusive();
        emit(EventKind::RegionSeal, Nanos(1), 1, 1);
        assert!(snapshot().is_empty());
        assert_eq!(dropped(), 0);
    }

    #[test]
    fn events_merge_sorted_by_time_then_order() {
        let _g = exclusive();
        enable();
        emit(EventKind::RegionSeal, Nanos(200), 7, 64);
        emit(EventKind::RegionEvict, Nanos(100), 7, 3);
        emit(EventKind::RegionEvict, Nanos(100), 8, 4);
        disable();
        let ev = snapshot();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].t, Nanos(100));
        assert_eq!((ev[0].a, ev[1].a), (7, 8), "equal timestamps keep emission order");
        assert_eq!(ev[2].kind, EventKind::RegionSeal);
    }

    #[test]
    fn multi_thread_emission_lands_in_one_timeline() {
        let _g = exclusive();
        enable();
        std::thread::scope(|s| {
            for th in 0..4u64 {
                s.spawn(move || {
                    for i in 0..100u64 {
                        emit(EventKind::IoRetry, Nanos(th * 1000 + i), i, th);
                    }
                });
            }
        });
        disable();
        let ev = snapshot();
        assert_eq!(ev.len(), 400);
        assert!(ev.windows(2).all(|w| w[0].t <= w[1].t), "sorted by sim time");
        let threads: std::collections::HashSet<u64> = ev.iter().map(|e| e.thread).collect();
        assert!(threads.len() >= 2, "events from distinct threads merged");
    }

    #[test]
    fn ring_wraparound_keeps_latest_and_counts_dropped() {
        let _g = exclusive();
        enable();
        let total = RING_CAPACITY as u64 + 50;
        for i in 0..total {
            emit(EventKind::ZoneReset, Nanos(i), i, 0);
        }
        disable();
        let ev = snapshot();
        assert_eq!(ev.len(), RING_CAPACITY);
        assert!(ev.iter().all(|e| e.a >= 50), "oldest 50 overwritten");
        assert_eq!(dropped(), 50);
        clear();
        assert!(snapshot().is_empty());
        assert_eq!(dropped(), 0);
    }

    #[test]
    fn kind_names_round_trip() {
        for v in 1..=25 {
            let k = EventKind::from_u64(v).expect("dense ids");
            assert_eq!(k as u64, v);
            assert!(!k.name().is_empty());
        }
        assert_eq!(EventKind::from_u64(0), None);
        assert_eq!(EventKind::from_u64(26), None);
    }
}
