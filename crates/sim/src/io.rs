//! Block-device abstractions.
//!
//! Every block-addressed device in the workspace — the FTL-based
//! conventional SSD, the HDD under the LSM store, and the RAM metadata disk
//! that stands in for the paper's `nullblk` device — implements
//! [`BlockDevice`]. Addresses are 4 KiB logical blocks ([`BLOCK_SIZE`]),
//! matching the 4 KiB I/O unit the paper attributes to Block-Cache and
//! File-Cache (Fig. 1).
//!
//! All operations take the caller's current simulated time and return the
//! operation's *completion* time, letting callers chain dependent I/O and
//! compute latency as `completion - now`.

use core::fmt;

use parking_lot::RwLock;

use crate::time::Nanos;

/// Logical block size used throughout the workspace: 4 KiB.
pub const BLOCK_SIZE: usize = 4096;

/// A logical block address in units of [`BLOCK_SIZE`].
///
/// # Example
///
/// ```
/// use sim::Lba;
///
/// let lba = Lba(10);
/// assert_eq!(lba.byte_offset(), 40_960);
/// assert_eq!(Lba::from_byte_offset(40_960), lba);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lba(pub u64);

impl Lba {
    /// Byte offset of the start of this block.
    #[inline]
    pub const fn byte_offset(self) -> u64 {
        self.0 * BLOCK_SIZE as u64
    }

    /// Converts a byte offset to the containing block address.
    ///
    /// # Panics
    ///
    /// Panics if `off` is not 4 KiB-aligned; misaligned device I/O is always
    /// a bug in the caller.
    #[inline]
    pub fn from_byte_offset(off: u64) -> Self {
        assert!(
            off.is_multiple_of(BLOCK_SIZE as u64),
            "byte offset {off} is not {BLOCK_SIZE}-aligned"
        );
        Lba(off / BLOCK_SIZE as u64)
    }

    /// The address `n` blocks after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> Self {
        Lba(self.0 + n)
    }
}

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lba:{}", self.0)
    }
}

/// Errors surfaced by block and zoned devices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoError {
    /// Read or write beyond the end of the device.
    OutOfRange {
        /// First offending block.
        lba: u64,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// Buffer length is not a multiple of the block size.
    Misaligned {
        /// Offending length in bytes.
        len: usize,
    },
    /// A zoned-device constraint was violated (wrapped from the zns crate).
    Zoned(String),
    /// The device has no free space to accept the write (log-structured
    /// devices and filesystems surface this rather than corrupting state).
    NoSpace,
    /// Catch-all for device-specific failures.
    Device(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::OutOfRange { lba, capacity } => {
                write!(f, "block {lba} out of range (capacity {capacity} blocks)")
            }
            IoError::Misaligned { len } => {
                write!(f, "buffer length {len} is not a multiple of {BLOCK_SIZE}")
            }
            IoError::Zoned(msg) => write!(f, "zoned constraint violated: {msg}"),
            IoError::NoSpace => write!(f, "device out of space"),
            IoError::Device(msg) => write!(f, "device error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Result alias for device operations.
pub type IoResult<T> = Result<T, IoError>;

/// A 4 KiB-block-addressed storage device under simulated time.
///
/// Implementations are internally synchronized (`&self` methods) so that a
/// device can be shared between a cache frontend and a background GC path.
///
/// # Errors
///
/// All I/O methods return [`IoError::OutOfRange`] for accesses past the end
/// of the device and [`IoError::Misaligned`] for buffers that are not a
/// multiple of [`BLOCK_SIZE`].
pub trait BlockDevice: Send + Sync {
    /// Total capacity in blocks.
    fn block_count(&self) -> u64;

    /// Reads `buf.len() / BLOCK_SIZE` blocks starting at `lba`.
    ///
    /// Returns the simulated completion time.
    fn read(&self, lba: Lba, buf: &mut [u8], now: Nanos) -> IoResult<Nanos>;

    /// Writes `data.len() / BLOCK_SIZE` blocks starting at `lba`.
    ///
    /// Returns the simulated completion time.
    fn write(&self, lba: Lba, data: &[u8], now: Nanos) -> IoResult<Nanos>;

    /// Invalidates a block range (TRIM/deallocate). Devices without a
    /// mapping layer treat this as a no-op completing immediately.
    fn trim(&self, _lba: Lba, _blocks: u64, now: Nanos) -> IoResult<Nanos> {
        Ok(now)
    }

    /// Makes all acknowledged writes durable (survive a power cut). Devices
    /// without a volatile cache treat this as a no-op completing
    /// immediately.
    fn sync(&self, now: Nanos) -> IoResult<Nanos> {
        Ok(now)
    }

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.block_count() * BLOCK_SIZE as u64
    }
}

/// Validates an I/O request against device capacity, returning the block
/// count of the request.
pub fn check_request(lba: Lba, len: usize, capacity_blocks: u64) -> IoResult<u64> {
    if !len.is_multiple_of(BLOCK_SIZE) || len == 0 {
        return Err(IoError::Misaligned { len });
    }
    let blocks = (len / BLOCK_SIZE) as u64;
    if lba.0 + blocks > capacity_blocks {
        return Err(IoError::OutOfRange {
            lba: lba.0,
            capacity: capacity_blocks,
        });
    }
    Ok(blocks)
}

/// An in-memory block device with a flat per-block latency, standing in for
/// the paper's `nullblk` metadata device for F2FS.
///
/// Writes land in a volatile image and become durable only on
/// [`BlockDevice::sync`]; [`RamDisk::power_cut`] atomically reverts the
/// volatile image to the last synced state, modeling a crash-consistency
/// boundary for the recovery tests.
///
/// # Example
///
/// ```
/// use sim::{BlockDevice, Lba, Nanos, RamDisk, BLOCK_SIZE};
///
/// let disk = RamDisk::new(16);
/// let data = vec![7u8; BLOCK_SIZE];
/// let done = disk.write(Lba(3), &data, Nanos::ZERO).unwrap();
/// let mut out = vec![0u8; BLOCK_SIZE];
/// disk.read(Lba(3), &mut out, done).unwrap();
/// assert_eq!(out, data);
///
/// // Unsynced writes vanish at a power cut...
/// disk.power_cut();
/// disk.read(Lba(3), &mut out, done).unwrap();
/// assert_eq!(out, vec![0u8; BLOCK_SIZE]);
///
/// // ...synced writes survive one.
/// disk.write(Lba(3), &data, done).unwrap();
/// disk.sync(done).unwrap();
/// disk.power_cut();
/// disk.read(Lba(3), &mut out, done).unwrap();
/// assert_eq!(out, data);
/// ```
pub struct RamDisk {
    state: RwLock<RamState>,
    blocks: u64,
    read_latency: Nanos,
    write_latency: Nanos,
}

struct RamState {
    /// What reads observe: includes unsynced (volatile) writes.
    live: Vec<u8>,
    /// The last synced image: what survives a power cut.
    durable: Vec<u8>,
    /// Blocks written since the last sync.
    dirty: std::collections::BTreeSet<u64>,
}

impl RamDisk {
    /// Creates a RAM disk of `blocks` 4 KiB blocks with `nullblk`-like
    /// latencies (5 µs per block each way).
    pub fn new(blocks: u64) -> Self {
        Self::with_latency(blocks, Nanos::from_micros(5), Nanos::from_micros(5))
    }

    /// Creates a RAM disk with explicit per-block latencies.
    pub fn with_latency(blocks: u64, read_latency: Nanos, write_latency: Nanos) -> Self {
        let bytes = (blocks as usize) * BLOCK_SIZE;
        RamDisk {
            state: RwLock::new(RamState {
                live: vec![0u8; bytes],
                durable: vec![0u8; bytes],
                dirty: std::collections::BTreeSet::new(),
            }),
            blocks,
            read_latency,
            write_latency,
        }
    }

    /// Atomically drops every write since the last [`BlockDevice::sync`],
    /// reverting the device to its durable image — the simulator's
    /// power-cut primitive.
    pub fn power_cut(&self) {
        let mut s = self.state.write();
        let RamState { live, durable, dirty } = &mut *s;
        live.copy_from_slice(durable);
        dirty.clear();
    }

    /// Blocks written since the last sync (unsynced = lost at power cut).
    pub fn dirty_blocks(&self) -> usize {
        self.state.read().dirty.len()
    }
}

impl fmt::Debug for RamDisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RamDisk").field("blocks", &self.blocks).finish()
    }
}

impl BlockDevice for RamDisk {
    fn block_count(&self) -> u64 {
        self.blocks
    }

    fn read(&self, lba: Lba, buf: &mut [u8], now: Nanos) -> IoResult<Nanos> {
        let n = check_request(lba, buf.len(), self.blocks)?;
        let start = lba.byte_offset() as usize;
        buf.copy_from_slice(&self.state.read().live[start..start + buf.len()]);
        Ok(now + self.read_latency * n)
    }

    fn write(&self, lba: Lba, data: &[u8], now: Nanos) -> IoResult<Nanos> {
        let n = check_request(lba, data.len(), self.blocks)?;
        let start = lba.byte_offset() as usize;
        let mut s = self.state.write();
        s.live[start..start + data.len()].copy_from_slice(data);
        for b in lba.0..lba.0 + n {
            s.dirty.insert(b);
        }
        Ok(now + self.write_latency * n)
    }

    fn sync(&self, now: Nanos) -> IoResult<Nanos> {
        let mut s = self.state.write();
        let RamState { live, durable, dirty } = &mut *s;
        for &b in dirty.iter() {
            let start = (b as usize) * BLOCK_SIZE;
            durable[start..start + BLOCK_SIZE].copy_from_slice(&live[start..start + BLOCK_SIZE]);
        }
        dirty.clear();
        Ok(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lba_byte_round_trip() {
        assert_eq!(Lba::from_byte_offset(0), Lba(0));
        assert_eq!(Lba(5).byte_offset(), 5 * 4096);
        assert_eq!(Lba(5).offset(3), Lba(8));
    }

    #[test]
    #[should_panic(expected = "not 4096-aligned")]
    fn misaligned_byte_offset_panics() {
        let _ = Lba::from_byte_offset(100);
    }

    #[test]
    fn check_request_validates() {
        assert_eq!(check_request(Lba(0), BLOCK_SIZE, 4), Ok(1));
        assert!(matches!(
            check_request(Lba(0), 100, 4),
            Err(IoError::Misaligned { len: 100 })
        ));
        assert!(matches!(
            check_request(Lba(3), 2 * BLOCK_SIZE, 4),
            Err(IoError::OutOfRange { .. })
        ));
        assert!(matches!(
            check_request(Lba(0), 0, 4),
            Err(IoError::Misaligned { len: 0 })
        ));
    }

    #[test]
    fn ramdisk_read_your_write() {
        let d = RamDisk::new(8);
        let w = vec![0xabu8; 2 * BLOCK_SIZE];
        let t1 = d.write(Lba(2), &w, Nanos::ZERO).unwrap();
        assert_eq!(t1, Nanos::from_micros(10));
        let mut r = vec![0u8; 2 * BLOCK_SIZE];
        let t2 = d.read(Lba(2), &mut r, t1).unwrap();
        assert_eq!(r, w);
        assert_eq!(t2, t1 + Nanos::from_micros(10));
    }

    #[test]
    fn ramdisk_rejects_out_of_range() {
        let d = RamDisk::new(2);
        let mut buf = vec![0u8; BLOCK_SIZE];
        assert!(d.read(Lba(2), &mut buf, Nanos::ZERO).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::OutOfRange { lba: 9, capacity: 4 };
        assert!(e.to_string().contains("9"));
        assert!(IoError::NoSpace.to_string().contains("space"));
    }

    #[test]
    fn trim_default_is_noop() {
        let d = RamDisk::new(2);
        assert_eq!(d.trim(Lba(0), 1, Nanos(7)).unwrap(), Nanos(7));
        assert_eq!(d.capacity_bytes(), 2 * 4096);
    }

    #[test]
    fn power_cut_drops_unsynced_writes_only() {
        let d = RamDisk::new(4);
        let a = vec![0xaau8; BLOCK_SIZE];
        let b = vec![0xbbu8; BLOCK_SIZE];
        let t = d.write(Lba(0), &a, Nanos::ZERO).unwrap();
        let t = d.sync(t).unwrap();
        let _ = d.write(Lba(1), &b, t).unwrap();
        assert_eq!(d.dirty_blocks(), 1);

        d.power_cut();
        assert_eq!(d.dirty_blocks(), 0);
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read(Lba(0), &mut out, t).unwrap();
        assert_eq!(out, a, "synced block must survive");
        d.read(Lba(1), &mut out, t).unwrap();
        assert!(out.iter().all(|&x| x == 0), "unsynced block must be gone");
    }

    #[test]
    fn sync_then_overwrite_keeps_synced_image() {
        let d = RamDisk::new(2);
        let v1 = vec![1u8; BLOCK_SIZE];
        let v2 = vec![2u8; BLOCK_SIZE];
        let t = d.write(Lba(0), &v1, Nanos::ZERO).unwrap();
        let t = d.sync(t).unwrap();
        let t = d.write(Lba(0), &v2, t).unwrap();
        // Reads see the newest (volatile) data before the cut...
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read(Lba(0), &mut out, t).unwrap();
        assert_eq!(out, v2);
        // ...and the synced version after it.
        d.power_cut();
        d.read(Lba(0), &mut out, t).unwrap();
        assert_eq!(out, v1);
    }
}
