//! Lightweight counters shared by device models.
//!
//! Devices are driven single-threaded by the simulation loop, but their
//! statistics are read concurrently by reporting code, so counters are
//! atomic. Write amplification, host/flash byte counts and GC activity all
//! flow through [`Counter`]s.

use core::fmt;
use core::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
///
/// # Example
///
/// ```
/// use sim::Counter;
///
/// let c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // relaxed-ok: statistics counter
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // relaxed-ok: statistics counter
    }

    /// Resets the counter to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed) // relaxed-ok: statistics counter
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        let c = Counter::new();
        c.add(self.get());
        c
    }
}

/// Computes a write-amplification factor from byte counters.
///
/// Returns `1.0` when no host bytes have been written, because a device that
/// has done nothing has amplified nothing.
///
/// # Example
///
/// ```
/// assert_eq!(sim::stats::write_amplification(100, 150), 1.5);
/// assert_eq!(sim::stats::write_amplification(0, 0), 1.0);
/// ```
pub fn write_amplification(host_bytes: u64, media_bytes: u64) -> f64 {
    if host_bytes == 0 {
        1.0
    } else {
        media_bytes as f64 / host_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_clone_snapshots_value() {
        let c = Counter::new();
        c.add(7);
        let d = c.clone();
        c.add(1);
        assert_eq!(d.get(), 7);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn wa_math() {
        assert_eq!(write_amplification(0, 100), 1.0);
        assert!((write_amplification(100, 139) - 1.39).abs() < 1e-9);
    }
}
