//! Simulation kernel shared by every device model and benchmark in the
//! workspace.
//!
//! The reproduction runs entirely on *simulated time*: device models compute
//! when an operation would complete on real hardware and return that
//! completion timestamp. Nothing in this workspace sleeps or reads the wall
//! clock, which makes every experiment deterministic under a fixed RNG seed.
//!
//! This crate provides:
//!
//! * [`Nanos`] / [`Micros`] — strongly-typed simulated time,
//! * [`LatencyHistogram`] — log-bucketed percentile tracking (p50/p99/...),
//! * [`io`] — the [`io::BlockDevice`] trait all block-addressed devices
//!   implement, plus a latency-model [`io::RamDisk`] used for filesystem
//!   metadata devices (the paper's `nullblk` stand-in),
//! * [`driver`] — a closed-loop multi-worker executor that turns per-op
//!   simulated latencies into throughput numbers.
//!
//! # Example
//!
//! ```
//! use sim::{Nanos, LatencyHistogram};
//!
//! let hist = LatencyHistogram::new();
//! for us in [100u64, 200, 300, 400, 50_000] {
//!     hist.record(Nanos::from_micros(us));
//! }
//! assert!(hist.percentile(50.0).as_micros() >= 200);
//! assert!(hist.percentile(99.0).as_micros() >= 40_000);
//! ```

pub mod aio;
pub mod checksum;
pub mod driver;
pub mod fault;
pub mod histogram;
pub mod io;
pub mod stats;
pub mod time;
pub mod trace;

pub use checksum::{crc32, Crc32};
pub use driver::{ClosedLoop, DriverReport};
pub use fault::{FaultInjector, FaultOp, FaultSpec, Injection};
pub use histogram::LatencyHistogram;
pub use io::{BlockDevice, IoError, IoResult, Lba, RamDisk, BLOCK_SIZE};
pub use stats::Counter;
pub use time::{Micros, Nanos};
