//! Asynchronous submission/completion over simulated time.
//!
//! Real async I/O stacks (io_uring, SPDK) split work into a *submission*
//! step that never blocks and a *completion* step the caller polls or
//! waits on. Under discrete-event time the split looks different but buys
//! the same thing: `submit` runs the device model eagerly — device state
//! mutates at the wall-clock instant of the call — yet the *caller's sim
//! clock does not advance to the completion time*. The caller keeps
//! submitting, and only when it truly needs a result does it pay the
//! completion timestamp. A loop that previously chained
//! `now = dev.op(now)?` across N commands serialized them at QD1; the same
//! loop through an [`IoHandle`] issues them all at the original `now` and
//! takes `max` of the completions — queue-depth-N service across the dies.
//!
//! Each [`IoHandle`] is single-owner (`&mut self` everywhere): no locks,
//! no atomics — the concurrency story is "one handle per shard", exactly
//! like an io_uring per thread. [`IoPool`] stamps handles with distinct
//! shard ids so traces can tell them apart.
//!
//! # Example
//!
//! ```
//! use sim::aio::IoPool;
//! use sim::Nanos;
//!
//! let pool: IoPool<()> = IoPool::new();
//! let mut h = pool.handle();
//! for i in 0..4u64 {
//!     h.submit(Nanos(0), |now| Ok(now + Nanos(100 + i)));
//! }
//! assert_eq!(h.in_flight(), 4);
//! assert_eq!(h.complete_all(Nanos(0)).unwrap(), Nanos(103));
//! assert_eq!(h.in_flight(), 0);
//! ```

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::Nanos;

/// A completed submission: its caller-assigned id and completion time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Monotonic per-handle submission id, returned by [`IoHandle::submit`].
    pub id: u64,
    /// Simulated completion timestamp of the operation.
    pub done: Nanos,
}

/// Hands out per-shard [`IoHandle`]s with distinct shard ids.
///
/// The pool itself holds no queues — submissions live in the handles, which
/// are single-owner and lock-free. It exists so that every shard of a
/// multi-threaded component draws from one id space.
#[derive(Debug, Default)]
pub struct IoPool<E> {
    next_shard: AtomicU64,
    _err: PhantomData<fn() -> E>,
}

impl<E> IoPool<E> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        IoPool {
            next_shard: AtomicU64::new(0),
            _err: PhantomData,
        }
    }

    /// Creates a handle with the next shard id.
    pub fn handle(&self) -> IoHandle<E> {
        IoHandle {
            // relaxed-ok: shard-id allocator — a monotone counter that
            // publishes no payload; uniqueness is all that matters.
            shard: self.next_shard.fetch_add(1, Ordering::Relaxed),
            next_id: 0,
            pending: Vec::new(),
        }
    }
}

/// A per-shard submission queue plus completion buffer.
///
/// All methods take `&mut self`; a handle must not be shared between
/// threads (it is `Send`, so it can *move* to a worker thread).
#[derive(Debug)]
pub struct IoHandle<E> {
    shard: u64,
    next_id: u64,
    pending: Vec<Result<Completion, (u64, E)>>,
}

impl<E> IoHandle<E> {
    /// The shard id the pool stamped on this handle.
    pub fn shard(&self) -> u64 {
        self.shard
    }

    /// Submits an operation at sim time `now` and returns its submission
    /// id. The device closure runs eagerly (device state mutates now), but
    /// the returned completion timestamp is buffered rather than imposed
    /// on the caller's clock — the caller's `now` stays where it was, so
    /// the next submission goes out at the same instant.
    pub fn submit(
        &mut self,
        now: Nanos,
        op: impl FnOnce(Nanos) -> Result<Nanos, E>,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(match op(now) {
            Ok(done) => Ok(Completion { id, done }),
            Err(e) => Err((id, e)),
        });
        id
    }

    /// Number of submissions not yet reaped.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Reaps the completion with the earliest timestamp, or `None` when
    /// nothing is in flight. Errors are reaped before successes so a
    /// failure surfaces on the first poll after it happened.
    pub fn try_complete(&mut self) -> Option<Result<Completion, (u64, E)>> {
        if self.pending.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, p) in self.pending.iter().enumerate() {
            match (p, &self.pending[best]) {
                (Err(_), Ok(_)) => best = i,
                (Ok(a), Ok(b)) if a.done < b.done => best = i,
                _ => {}
            }
        }
        Some(self.pending.swap_remove(best))
    }

    /// Drains every in-flight submission: returns the latest completion
    /// time (or `now` if nothing was in flight), or the first buffered
    /// error. On error the remaining completions are discarded — device
    /// state already mutated at submit, so there is nothing to roll back;
    /// the caller decides how to recover.
    pub fn complete_all(&mut self, now: Nanos) -> Result<Nanos, E> {
        let mut done = now;
        let mut first_err = None;
        for p in self.pending.drain(..) {
            match p {
                Ok(c) => done = done.max(c.done),
                Err((_, e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(done),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submissions_share_one_issue_instant() {
        let pool: IoPool<()> = IoPool::new();
        let mut h = pool.handle();
        let mut issue_times = Vec::new();
        for i in 0..3u64 {
            h.submit(Nanos(1000), |now| {
                issue_times.push(now);
                Ok(now + Nanos(10 * (i + 1)))
            });
        }
        // The whole point: every op was issued at the caller's clock, not
        // chained after its predecessor's completion.
        assert_eq!(issue_times, vec![Nanos(1000); 3]);
        assert_eq!(h.complete_all(Nanos(1000)).unwrap(), Nanos(1030));
    }

    #[test]
    fn try_complete_reaps_in_timestamp_order() {
        let pool: IoPool<()> = IoPool::new();
        let mut h = pool.handle();
        let a = h.submit(Nanos(0), |_| Ok(Nanos(300)));
        let b = h.submit(Nanos(0), |_| Ok(Nanos(100)));
        let c = h.submit(Nanos(0), |_| Ok(Nanos(200)));
        let order: Vec<u64> = std::iter::from_fn(|| h.try_complete())
            .map(|r| r.unwrap().id)
            .collect();
        assert_eq!(order, vec![b, c, a]);
        assert_eq!(h.in_flight(), 0);
        assert!(h.try_complete().is_none());
    }

    #[test]
    fn first_error_wins_and_queue_drains() {
        let pool: IoPool<&'static str> = IoPool::new();
        let mut h = pool.handle();
        h.submit(Nanos(0), |_| Ok(Nanos(50)));
        h.submit(Nanos(0), |_| Err("boom"));
        h.submit(Nanos(0), |_| Ok(Nanos(10)));
        assert_eq!(h.complete_all(Nanos(0)), Err("boom"));
        assert_eq!(h.in_flight(), 0);
        // The handle is reusable after an error.
        h.submit(Nanos(0), |_| Ok(Nanos(5)));
        assert_eq!(h.complete_all(Nanos(0)), Ok(Nanos(5)));
    }

    #[test]
    fn errors_reap_before_successes() {
        let pool: IoPool<&'static str> = IoPool::new();
        let mut h = pool.handle();
        h.submit(Nanos(0), |_| Ok(Nanos(1)));
        let bad = h.submit(Nanos(0), |_| Err("late"));
        match h.try_complete() {
            Some(Err((id, e))) => {
                assert_eq!(id, bad);
                assert_eq!(e, "late");
            }
            other => panic!("expected the error first, got {other:?}"),
        }
    }

    #[test]
    fn pool_stamps_distinct_shards() {
        let pool: IoPool<()> = IoPool::new();
        assert_eq!(pool.handle().shard(), 0);
        assert_eq!(pool.handle().shard(), 1);
    }
}
