//! CRC32 (IEEE 802.3, reflected 0xEDB88320) checksums.
//!
//! Used end-to-end by the cache layers: every on-flash object carries a
//! CRC over its key + value, and the recovery snapshot carries one over its
//! whole blob. Hand-rolled (table-driven, compile-time table) because the
//! offline build cannot fetch a crc crate; the algorithm matches zlib's
//! `crc32()` so golden values can be checked against any standard tool.

/// One-shot CRC32 of `data`.
///
/// # Example
///
/// ```
/// use sim::checksum::crc32;
///
/// // Golden value from zlib / Python's binascii.crc32.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// assert_eq!(crc32(b""), 0);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32, for checksumming data assembled in pieces (e.g. an
/// object header's key and value without concatenating them).
///
/// # Example
///
/// ```
/// use sim::checksum::{crc32, Crc32};
///
/// let mut c = Crc32::new();
/// c.update(b"1234");
/// c.update(b"56789");
/// assert_eq!(c.finalize(), crc32(b"123456789"));
/// ```
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the finished checksum (the accumulator stays reusable).
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_values() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0x5au8; 4096];
        let clean = crc32(&data);
        for bit in [0usize, 1, 8, 4095 * 8 + 7, 2048 * 8 + 3] {
            let mut corrupted = data.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupted), clean, "bit {bit} undetected");
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut inc = Crc32::new();
        for chunk in data.chunks(17) {
            inc.update(chunk);
        }
        assert_eq!(inc.finalize(), crc32(&data));
    }
}
