//! Closed-loop workload driver.
//!
//! The paper's CacheBench and db_bench runs are closed loops: a fixed number
//! of client threads each issue the next operation as soon as the previous
//! one completes. [`ClosedLoop`] reproduces that under simulated time: it
//! tracks one timeline per worker, always advances the worker whose clock is
//! furthest behind, and asks the caller to execute one operation at that
//! worker's current time.
//!
//! Device models serialize conflicting hardware (dies, channels, heads)
//! internally, so concurrency effects — e.g. foreground reads stalling
//! behind GC migrations — emerge naturally from the interleaving.

use crate::histogram::LatencyHistogram;
use crate::time::Nanos;

/// Outcome of a finished closed-loop run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Operations completed across all workers.
    pub ops: u64,
    /// Simulated makespan: the latest completion time over all workers.
    pub makespan: Nanos,
    /// Overall latency distribution.
    pub latency: LatencyHistogram,
}

impl DriverReport {
    /// Throughput in operations per simulated second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Throughput in operations per simulated minute, the unit of the
    /// paper's Fig. 2/Fig. 4 ("Operations per Minute (M)").
    pub fn ops_per_min(&self) -> f64 {
        self.ops_per_sec() * 60.0
    }
}

/// A closed-loop executor over `workers` simulated client threads.
///
/// # Example
///
/// ```
/// use sim::{ClosedLoop, Nanos};
///
/// // Two workers, each op takes 1ms of simulated device time.
/// let mut remaining = 10u32;
/// let report = ClosedLoop::new(2).run(|_worker, now| {
///     if remaining == 0 {
///         return None;
///     }
///     remaining -= 1;
///     Some(now + Nanos::from_millis(1))
/// });
/// assert_eq!(report.ops, 10);
/// // 10 ops over 2 workers at 1ms each => 5ms makespan.
/// assert_eq!(report.makespan, Nanos::from_millis(5));
/// ```
#[derive(Debug)]
pub struct ClosedLoop {
    workers: usize,
}

impl ClosedLoop {
    /// Creates a driver with `workers` concurrent simulated clients.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "closed loop needs at least one worker");
        ClosedLoop { workers }
    }

    /// Runs `op` until it returns `None` for every worker.
    ///
    /// `op(worker, now)` must execute one operation that *starts* at `now`
    /// and return its completion time (which must be `>= now`), or `None`
    /// when the workload is exhausted. A worker that receives `None` is
    /// retired; the run ends when all workers are retired.
    pub fn run<F>(&self, mut op: F) -> DriverReport
    where
        F: FnMut(usize, Nanos) -> Option<Nanos>,
    {
        let mut clocks = vec![Nanos::ZERO; self.workers];
        let mut alive = vec![true; self.workers];
        let mut live = self.workers;
        let latency = LatencyHistogram::new();
        let mut ops = 0u64;
        let mut makespan = Nanos::ZERO;

        while live > 0 {
            // Pick the laggard worker: the live worker with the earliest clock.
            let mut w = usize::MAX;
            let mut best = Nanos::MAX;
            for (i, &t) in clocks.iter().enumerate() {
                if alive[i] && t < best {
                    best = t;
                    w = i;
                }
            }
            let now = clocks[w];
            match op(w, now) {
                Some(done) => {
                    debug_assert!(done >= now, "completion precedes submission");
                    latency.record(done - now);
                    clocks[w] = done;
                    makespan = makespan.max(done);
                    ops += 1;
                }
                None => {
                    alive[w] = false;
                    live -= 1;
                }
            }
        }

        DriverReport {
            ops,
            makespan,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_serializes() {
        let mut n = 3;
        let r = ClosedLoop::new(1).run(|w, now| {
            assert_eq!(w, 0);
            if n == 0 {
                return None;
            }
            n -= 1;
            Some(now + Nanos(10))
        });
        assert_eq!(r.ops, 3);
        assert_eq!(r.makespan, Nanos(30));
        assert!((r.ops_per_sec() - 3.0 / 30e-9).abs() / (3.0 / 30e-9) < 1e-9);
    }

    #[test]
    fn workers_advance_in_time_order() {
        // Worker 0 is slow; worker 1 should get many more ops.
        let mut per_worker = [0u32; 2];
        let mut total = 100;
        let r = ClosedLoop::new(2).run(|w, now| {
            if total == 0 {
                return None;
            }
            total -= 1;
            per_worker[w] += 1;
            let cost = if w == 0 { Nanos(100) } else { Nanos(10) };
            Some(now + cost)
        });
        assert_eq!(r.ops, 100);
        assert!(per_worker[1] > per_worker[0] * 5);
    }

    #[test]
    fn empty_workload_reports_zero() {
        let r = ClosedLoop::new(4).run(|_, _| None);
        assert_eq!(r.ops, 0);
        assert_eq!(r.makespan, Nanos::ZERO);
        assert_eq!(r.ops_per_sec(), 0.0);
    }

    #[test]
    fn ops_per_min_scales() {
        let mut n = 1;
        let r = ClosedLoop::new(1).run(|_, now| {
            if n == 0 {
                return None;
            }
            n -= 1;
            Some(now + Nanos::from_secs(1))
        });
        assert!((r.ops_per_min() - 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ClosedLoop::new(0);
    }
}
