//! Fault injection for block and zoned devices.
//!
//! The heart of the module is [`FaultInjector`]: a device-independent fault
//! plan that decides, per operation, whether to inject a failure and of what
//! shape. [`FaultyDevice`] wraps any [`BlockDevice`] and consults an
//! injector on every read, write, **and trim**; the `zns` crate's
//! `ZnsDevice` accepts the same injector for zone writes, appends, resets
//! and finishes, so every scheme backend (Block/File/Zone/Region) can be
//! driven through identical failure scenarios.
//!
//! Fault plans are composable: each [`FaultSpec`] names the operations it
//! matches, the failure [`FaultMode`] (clean error, torn write, silent
//! bit-flip, zone degradation), a probability drawn from a seeded RNG, a
//! skip budget (matching operations that pass before the rule arms — how
//! wear-out "after N resets" is expressed), and a credit budget
//! distinguishing *transient* faults (small budget, recovery possible) from
//! *permanent* ones ([`FaultSpec::PERMANENT`]).
//!
//! Injected faults are observable in the event trace: devices consult the
//! injector through [`FaultInjector::decide_at`], which emits a
//! `FaultInjected` trace event for every non-`None` verdict, so a JSONL
//! trace distinguishes self-inflicted failures from organic ones.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::io::{BlockDevice, IoError, IoResult, Lba, BLOCK_SIZE};
use crate::time::Nanos;
use crate::trace::{self, EventKind};

/// Which operations a (legacy, kind-based) fault plan affects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail reads only.
    Reads,
    /// Fail writes and trims/resets (destructive ops share the write path).
    Writes,
    /// Fail everything.
    All,
}

/// The operation class an injector is consulted for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Data reads.
    Read,
    /// Data writes and zone appends.
    Write,
    /// Trims, zone resets, and zone finishes.
    Trim,
}

/// The shape of an injected failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultMode {
    /// The operation fails cleanly with a device error; no state changes.
    Fail,
    /// A write persists roughly `fraction` of its payload (rounded down to
    /// whole blocks, always strictly less than the full payload), then
    /// fails. Models a power loss or firmware crash mid-program. On
    /// non-write operations this degrades to [`FaultMode::Fail`].
    Torn {
        /// Fraction of the payload persisted before the failure, in `0..=1`.
        fraction: f64,
    },
    /// The operation *succeeds* but one bit of the payload is silently
    /// flipped: on writes the corrupted data is persisted, on reads the
    /// returned buffer is corrupted. Models media or bus corruption that
    /// only end-to-end checksums can catch. Trims degrade to `Fail`.
    BitFlip,
    /// The zone the operation targets degrades to the ZNS Read-Only
    /// state: persisted data stays readable but the zone accepts no
    /// further writes or resets. Models wear-out / failed erase. On
    /// plain block devices (no zone concept) this degrades to
    /// [`FaultMode::Fail`].
    DegradeReadOnly,
    /// The zone the operation targets goes Offline: it serves nothing.
    /// Models a dead die. Degrades to [`FaultMode::Fail`] on block
    /// devices.
    DegradeOffline,
}

/// One composable fault rule: which ops, what shape, how likely, how often.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Match data reads.
    pub reads: bool,
    /// Match data writes / zone appends.
    pub writes: bool,
    /// Match trims / zone resets / zone finishes.
    pub trims: bool,
    /// Failure shape.
    pub mode: FaultMode,
    /// Probability that a matching operation triggers the fault.
    pub probability: f64,
    /// Matching operations that pass untouched before the rule arms.
    /// A wear-out plan is `skip: N` over trims: the first N resets
    /// succeed, then degradation fires.
    pub skip: u64,
    /// Remaining injections; [`FaultSpec::PERMANENT`] never decrements, so
    /// the fault persists for the life of the plan (a dead die, not a
    /// transient glitch).
    pub count: u64,
}

impl FaultSpec {
    /// Credit value meaning "never exhausts".
    pub const PERMANENT: u64 = u64::MAX;

    fn base(mode: FaultMode) -> Self {
        FaultSpec {
            reads: false,
            writes: false,
            trims: false,
            mode,
            probability: 1.0,
            skip: 0,
            count: 1,
        }
    }

    /// The next `count` reads fail cleanly.
    pub fn fail_reads(count: u64) -> Self {
        FaultSpec {
            reads: true,
            count,
            ..Self::base(FaultMode::Fail)
        }
    }

    /// The next `count` writes fail cleanly.
    pub fn fail_writes(count: u64) -> Self {
        FaultSpec {
            writes: true,
            count,
            ..Self::base(FaultMode::Fail)
        }
    }

    /// The next `count` trims/resets fail cleanly.
    pub fn fail_trims(count: u64) -> Self {
        FaultSpec {
            trims: true,
            count,
            ..Self::base(FaultMode::Fail)
        }
    }

    /// The next `count` writes tear: a prefix persists, then the op fails.
    pub fn torn_writes(count: u64, fraction: f64) -> Self {
        FaultSpec {
            writes: true,
            count,
            ..Self::base(FaultMode::Torn { fraction })
        }
    }

    /// The next `count` writes silently flip one persisted bit.
    pub fn corrupt_writes(count: u64) -> Self {
        FaultSpec {
            writes: true,
            count,
            ..Self::base(FaultMode::BitFlip)
        }
    }

    /// The next `count` reads silently flip one returned bit.
    pub fn corrupt_reads(count: u64) -> Self {
        FaultSpec {
            reads: true,
            count,
            ..Self::base(FaultMode::BitFlip)
        }
    }

    /// Latent corruption: `count` writes persist with one silently
    /// flipped bit. Nothing fails at write time — the damage surfaces
    /// only when the object is read back (or a scrubber CRC-checks it).
    pub fn latent_corruption(count: u64) -> Self {
        Self::corrupt_writes(count)
    }

    /// Wear-out plan: the first `resets` zone resets succeed, then every
    /// later reset degrades its target zone to Read-Only. Models an
    /// erase-cycle budget running out across the device.
    pub fn wear_out_after(resets: u64) -> Self {
        FaultSpec {
            trims: true,
            skip: resets,
            count: Self::PERMANENT,
            ..Self::base(FaultMode::DegradeReadOnly)
        }
    }

    /// The next `count` matching writes degrade their zone to Read-Only
    /// (spontaneous media failure under program load).
    pub fn degrade_read_only_writes(count: u64) -> Self {
        FaultSpec {
            writes: true,
            count,
            ..Self::base(FaultMode::DegradeReadOnly)
        }
    }

    /// The next `count` matching writes take their zone Offline.
    pub fn degrade_offline_writes(count: u64) -> Self {
        FaultSpec {
            writes: true,
            count,
            ..Self::base(FaultMode::DegradeOffline)
        }
    }

    /// Makes the fault fire on each matching op only with probability `p`.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Lets the first `n` matching operations pass before the rule arms.
    pub fn with_skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Makes the fault permanent (credits never exhaust).
    pub fn permanent(mut self) -> Self {
        self.count = Self::PERMANENT;
        self
    }

    fn matches(&self, op: FaultOp) -> bool {
        match op {
            FaultOp::Read => self.reads,
            FaultOp::Write => self.writes,
            FaultOp::Trim => self.trims,
        }
    }
}

/// The injector's verdict for one operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Injection {
    /// Proceed normally.
    None,
    /// Fail cleanly without touching state.
    Fail,
    /// Persist `keep_blocks` blocks of the payload, then fail.
    Torn {
        /// Whole blocks of the payload to persist before failing.
        keep_blocks: u64,
    },
    /// Proceed, but flip bit `bit` (an offset into the payload bit-space).
    BitFlip {
        /// Absolute bit index within the payload to invert.
        bit: u64,
    },
    /// The target zone degrades to Read-Only: the op fails and the zone
    /// keeps serving reads only. Block devices treat this as a clean
    /// failure.
    DegradeReadOnly,
    /// The target zone goes Offline: the op fails and the zone serves
    /// nothing. Block devices treat this as a clean failure.
    DegradeOffline,
}

impl Injection {
    /// Dense code for the `FaultInjected` trace event's `b` payload.
    fn trace_code(self) -> u64 {
        match self {
            Injection::None => 0,
            Injection::Fail => 1,
            Injection::Torn { .. } => 2,
            Injection::BitFlip { .. } => 3,
            Injection::DegradeReadOnly => 4,
            Injection::DegradeOffline => 5,
        }
    }
}

/// xorshift64* — tiny seeded RNG for probabilistic injection and bit
/// selection; deliberately independent of the `rand` facade so `sim` stays
/// dependency-free at its root.
#[derive(Debug)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A shared, composable fault plan.
///
/// Push any number of [`FaultSpec`]s; each operation consults them in
/// insertion order and the first matching spec with remaining credits (and a
/// successful probability roll) fires. Exhausted specs are pruned.
///
/// # Example
///
/// ```
/// use sim::fault::{FaultInjector, FaultOp, FaultSpec, Injection};
///
/// let inj = FaultInjector::with_seed(7);
/// inj.push(FaultSpec::fail_writes(1));
/// assert_eq!(inj.decide(FaultOp::Read, 4096), Injection::None);
/// assert_eq!(inj.decide(FaultOp::Write, 4096), Injection::Fail);
/// // Credit consumed: next write passes.
/// assert_eq!(inj.decide(FaultOp::Write, 4096), Injection::None);
/// assert_eq!(inj.injected(), 1);
/// ```
pub struct FaultInjector {
    state: parking_lot::Mutex<InjectorState>,
    injected: AtomicU64,
}

#[derive(Debug)]
struct InjectorState {
    specs: Vec<FaultSpec>,
    rng: XorShift64,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::with_seed(0xFA_017)
    }
}

impl FaultInjector {
    /// Creates an injector whose probabilistic decisions derive from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        FaultInjector {
            state: parking_lot::Mutex::new(InjectorState {
                specs: Vec::new(),
                rng: XorShift64::new(seed),
            }),
            injected: AtomicU64::new(0),
        }
    }

    /// Appends a fault rule to the plan.
    pub fn push(&self, spec: FaultSpec) {
        self.state.lock().specs.push(spec);
    }

    /// Legacy credit-based arming: replaces the plan with a single clean
    /// failure rule. `Writes` (and `All`) cover trims/resets too, so
    /// destructive zone ops are no longer exempt from injection.
    pub fn arm(&self, kind: FaultKind, count: u64) {
        let spec = FaultSpec {
            reads: matches!(kind, FaultKind::Reads | FaultKind::All),
            writes: matches!(kind, FaultKind::Writes | FaultKind::All),
            trims: matches!(kind, FaultKind::Writes | FaultKind::All),
            mode: FaultMode::Fail,
            probability: 1.0,
            skip: 0,
            count,
        };
        let mut s = self.state.lock();
        s.specs.clear();
        s.specs.push(spec);
    }

    /// Clears the whole plan.
    pub fn clear(&self) {
        self.state.lock().specs.clear();
    }

    /// Total faults injected (all modes).
    pub fn injected(&self) -> u64 {
        // relaxed-ok: monotonic stats counter; readers only need a
        // value at least as fresh as their own synchronization.
        self.injected.load(Ordering::Relaxed)
    }

    /// Decides the fate of one operation carrying `payload_len` bytes.
    pub fn decide(&self, op: FaultOp, payload_len: usize) -> Injection {
        let mut s = self.state.lock();
        let mut verdict = Injection::None;
        if let Some(i) = s
            .specs
            .iter()
            .position(|spec| spec.matches(op) && spec.count > 0)
        {
            if s.specs[i].skip > 0 {
                // Grace period: the op passes, the rule edges closer to
                // arming (this is how "wear-out after N resets" counts).
                s.specs[i].skip -= 1;
            } else {
                let probability = s.specs[i].probability;
                if probability >= 1.0 || s.rng.next_f64() < probability {
                    let mode = s.specs[i].mode;
                    if s.specs[i].count != FaultSpec::PERMANENT {
                        s.specs[i].count -= 1;
                    }
                    verdict = materialize(op, mode, payload_len, &mut s.rng);
                    // relaxed-ok: stats counter increment under the
                    // plan lock; the lock orders it for observers.
                    self.injected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        s.specs.retain(|spec| spec.count > 0);
        verdict
    }

    /// As [`FaultInjector::decide`], but stamps every non-`None` verdict
    /// into the event trace as a `FaultInjected` event (`a` = op: 1 read,
    /// 2 write, 3 trim; `b` = shape code: 1 fail, 2 torn, 3 bit-flip,
    /// 4 degrade-read-only, 5 degrade-offline). Devices should prefer
    /// this entry point so traces can tell self-inflicted failures from
    /// organic ones.
    pub fn decide_at(&self, op: FaultOp, payload_len: usize, now: Nanos) -> Injection {
        let verdict = self.decide(op, payload_len);
        if verdict != Injection::None {
            let op_code = match op {
                FaultOp::Read => 1,
                FaultOp::Write => 2,
                FaultOp::Trim => 3,
            };
            trace::emit(EventKind::FaultInjected, now, op_code, verdict.trace_code());
        }
        verdict
    }
}

fn materialize(op: FaultOp, mode: FaultMode, payload_len: usize, rng: &mut XorShift64) -> Injection {
    match mode {
        FaultMode::Fail => Injection::Fail,
        FaultMode::Torn { fraction } => {
            if op != FaultOp::Write || payload_len < BLOCK_SIZE {
                return Injection::Fail;
            }
            let blocks = (payload_len / BLOCK_SIZE) as u64;
            let keep = ((blocks as f64 * fraction.clamp(0.0, 1.0)) as u64).min(blocks - 1);
            Injection::Torn { keep_blocks: keep }
        }
        FaultMode::BitFlip => {
            if op == FaultOp::Trim || payload_len == 0 {
                return Injection::Fail;
            }
            let bit = rng.next_u64() % (payload_len as u64 * 8);
            Injection::BitFlip { bit }
        }
        FaultMode::DegradeReadOnly => Injection::DegradeReadOnly,
        FaultMode::DegradeOffline => Injection::DegradeOffline,
    }
}

impl core::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("injected", &self.injected())
            .field("specs", &self.state.lock().specs.len())
            .finish()
    }
}

/// Flips bit `bit` (absolute payload bit index) in `buf`.
pub fn flip_bit(buf: &mut [u8], bit: u64) {
    let byte = (bit / 8) as usize % buf.len().max(1);
    buf[byte] ^= 1 << (bit % 8);
}

/// A wrapper that injects faults into every operation of a [`BlockDevice`],
/// including trims.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use sim::{BlockDevice, Lba, Nanos, RamDisk, BLOCK_SIZE};
/// use sim::fault::{FaultKind, FaultyDevice};
///
/// let dev = FaultyDevice::new(Arc::new(RamDisk::new(8)));
/// let data = vec![1u8; BLOCK_SIZE];
/// dev.write(Lba(0), &data, Nanos::ZERO).unwrap();
///
/// dev.arm(FaultKind::Writes, 1); // next write fails
/// assert!(dev.write(Lba(1), &data, Nanos::ZERO).is_err());
/// // Budget exhausted: the one after succeeds.
/// assert!(dev.write(Lba(1), &data, Nanos::ZERO).is_ok());
/// ```
pub struct FaultyDevice {
    inner: Arc<dyn BlockDevice>,
    injector: Arc<FaultInjector>,
}

impl FaultyDevice {
    /// Wraps a device with a fresh, disarmed injector.
    pub fn new(inner: Arc<dyn BlockDevice>) -> Self {
        Self::with_injector(inner, Arc::new(FaultInjector::default()))
    }

    /// Wraps a device sharing an existing fault plan (so one plan can drive
    /// several devices — e.g. a data disk and a metadata disk).
    pub fn with_injector(inner: Arc<dyn BlockDevice>, injector: Arc<FaultInjector>) -> Self {
        FaultyDevice { inner, injector }
    }

    /// The shared fault plan, for composing richer scenarios than
    /// [`FaultyDevice::arm`] expresses.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Arms the injector: the next `count` matching operations fail.
    pub fn arm(&self, kind: FaultKind, count: u64) {
        self.injector.arm(kind, count);
    }

    /// Disarms the injector.
    pub fn disarm(&self) {
        self.injector.clear();
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injector.injected()
    }
}

impl core::fmt::Debug for FaultyDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FaultyDevice")
            .field("injected", &self.injected())
            .finish()
    }
}

impl BlockDevice for FaultyDevice {
    fn block_count(&self) -> u64 {
        self.inner.block_count()
    }

    fn read(&self, lba: Lba, buf: &mut [u8], now: Nanos) -> IoResult<Nanos> {
        match self.injector.decide_at(FaultOp::Read, buf.len(), now) {
            Injection::None => self.inner.read(lba, buf, now),
            // Block devices have no zones: degradation is a clean failure.
            Injection::Fail
            | Injection::Torn { .. }
            | Injection::DegradeReadOnly
            | Injection::DegradeOffline => Err(IoError::Device("injected read fault".into())),
            Injection::BitFlip { bit } => {
                let done = self.inner.read(lba, buf, now)?;
                flip_bit(buf, bit);
                Ok(done)
            }
        }
    }

    fn write(&self, lba: Lba, data: &[u8], now: Nanos) -> IoResult<Nanos> {
        match self.injector.decide_at(FaultOp::Write, data.len(), now) {
            Injection::None => self.inner.write(lba, data, now),
            Injection::Fail | Injection::DegradeReadOnly | Injection::DegradeOffline => {
                Err(IoError::Device("injected write fault".into()))
            }
            Injection::Torn { keep_blocks } => {
                let keep_bytes = (keep_blocks as usize) * BLOCK_SIZE;
                if keep_bytes > 0 {
                    self.inner.write(lba, &data[..keep_bytes], now)?;
                }
                Err(IoError::Device(format!(
                    "injected torn write: {keep_blocks} of {} blocks persisted",
                    data.len() / BLOCK_SIZE
                )))
            }
            Injection::BitFlip { bit } => {
                let mut corrupted = data.to_vec();
                flip_bit(&mut corrupted, bit);
                self.inner.write(lba, &corrupted, now)
            }
        }
    }

    fn trim(&self, lba: Lba, blocks: u64, now: Nanos) -> IoResult<Nanos> {
        match self.injector.decide_at(FaultOp::Trim, 0, now) {
            Injection::None => self.inner.trim(lba, blocks, now),
            _ => Err(IoError::Device("injected trim fault".into())),
        }
    }

    fn sync(&self, now: Nanos) -> IoResult<Nanos> {
        self.inner.sync(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RamDisk;
    use crate::BLOCK_SIZE;

    fn dev() -> FaultyDevice {
        FaultyDevice::new(Arc::new(RamDisk::new(8)))
    }

    #[test]
    fn passes_through_when_disarmed() {
        let d = dev();
        let data = vec![5u8; BLOCK_SIZE];
        let t = d.write(Lba(0), &data, Nanos::ZERO).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read(Lba(0), &mut out, t).unwrap();
        assert_eq!(out, data);
        assert_eq!(d.injected(), 0);
    }

    #[test]
    fn fails_exactly_count_matching_ops() {
        let d = dev();
        let data = vec![5u8; BLOCK_SIZE];
        d.arm(FaultKind::Writes, 2);
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_err());
        // Reads pass through under a Writes plan.
        let mut out = vec![0u8; BLOCK_SIZE];
        assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_ok());
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_err());
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_ok());
        assert_eq!(d.injected(), 2);
    }

    #[test]
    fn read_faults_and_disarm() {
        let d = dev();
        d.arm(FaultKind::Reads, 10);
        let mut out = vec![0u8; BLOCK_SIZE];
        assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_err());
        d.disarm();
        assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_ok());
    }

    #[test]
    fn trim_consumes_write_credits() {
        let d = dev();
        d.arm(FaultKind::Writes, 1);
        assert!(d.trim(Lba(0), 1, Nanos::ZERO).is_err());
        // Credit consumed by the trim: the next write passes.
        let data = vec![5u8; BLOCK_SIZE];
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_ok());
        assert_eq!(d.injected(), 1);
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let d = dev();
        let data: Vec<u8> = (0..4 * BLOCK_SIZE).map(|i| (i / BLOCK_SIZE) as u8 + 1).collect();
        d.injector().push(FaultSpec::torn_writes(1, 0.5));
        let err = d.write(Lba(0), &data, Nanos::ZERO).unwrap_err();
        assert!(err.to_string().contains("torn"), "got: {err}");
        // First two blocks persisted, last two untouched (still zero).
        let mut out = vec![0u8; 4 * BLOCK_SIZE];
        d.read(Lba(0), &mut out, Nanos::ZERO).unwrap();
        assert_eq!(&out[..2 * BLOCK_SIZE], &data[..2 * BLOCK_SIZE]);
        assert!(out[2 * BLOCK_SIZE..].iter().all(|&b| b == 0));
    }

    #[test]
    fn torn_write_never_persists_everything() {
        let d = dev();
        let data = vec![9u8; BLOCK_SIZE];
        d.injector().push(FaultSpec::torn_writes(1, 1.0));
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_err());
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read(Lba(0), &mut out, Nanos::ZERO).unwrap();
        assert!(out.iter().all(|&b| b == 0), "single-block torn write must persist nothing");
    }

    #[test]
    fn bit_flip_write_corrupts_exactly_one_bit() {
        let d = dev();
        let data = vec![0u8; BLOCK_SIZE];
        d.injector().push(FaultSpec::corrupt_writes(1));
        d.write(Lba(0), &data, Nanos::ZERO).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read(Lba(0), &mut out, Nanos::ZERO).unwrap();
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
        assert_eq!(d.injected(), 1);
    }

    #[test]
    fn bit_flip_read_leaves_media_intact() {
        let d = dev();
        let data = vec![0xffu8; BLOCK_SIZE];
        d.write(Lba(0), &data, Nanos::ZERO).unwrap();
        d.injector().push(FaultSpec::corrupt_reads(1));
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read(Lba(0), &mut out, Nanos::ZERO).unwrap();
        assert_ne!(out, data, "read must return corrupted data");
        // Media was never touched: a second read is clean.
        let mut again = vec![0u8; BLOCK_SIZE];
        d.read(Lba(0), &mut again, Nanos::ZERO).unwrap();
        assert_eq!(again, data);
    }

    #[test]
    fn probabilistic_faults_fire_sometimes() {
        let d = dev();
        d.injector()
            .push(FaultSpec::fail_writes(FaultSpec::PERMANENT).with_probability(0.5));
        let data = vec![1u8; BLOCK_SIZE];
        let mut failures = 0;
        for _ in 0..200 {
            if d.write(Lba(0), &data, Nanos::ZERO).is_err() {
                failures += 1;
            }
        }
        assert!((60..140).contains(&failures), "failures = {failures}");
    }

    #[test]
    fn permanent_fault_never_exhausts() {
        let d = dev();
        d.injector().push(FaultSpec::fail_reads(FaultSpec::PERMANENT));
        let mut out = vec![0u8; BLOCK_SIZE];
        for _ in 0..50 {
            assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_err());
        }
        d.disarm();
        assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_ok());
    }

    #[test]
    fn wear_out_skip_lets_early_resets_pass_then_degrades_forever() {
        let inj = FaultInjector::with_seed(3);
        inj.push(FaultSpec::wear_out_after(2));
        assert_eq!(inj.decide(FaultOp::Trim, 0), Injection::None);
        // Non-matching ops never consume the grace budget.
        assert_eq!(inj.decide(FaultOp::Read, 4096), Injection::None);
        assert_eq!(inj.decide(FaultOp::Trim, 0), Injection::None);
        assert_eq!(inj.decide(FaultOp::Trim, 0), Injection::DegradeReadOnly);
        // Permanent: the device only gets worse.
        assert_eq!(inj.decide(FaultOp::Trim, 0), Injection::DegradeReadOnly);
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn degrade_modes_materialize_unchanged() {
        let inj = FaultInjector::default();
        inj.push(FaultSpec::degrade_offline_writes(1));
        assert_eq!(inj.decide(FaultOp::Write, 4096), Injection::DegradeOffline);
        inj.push(FaultSpec::degrade_read_only_writes(1));
        assert_eq!(inj.decide(FaultOp::Write, 4096), Injection::DegradeReadOnly);
    }

    #[test]
    fn degrade_on_block_device_is_a_clean_failure() {
        let d = dev();
        let data = vec![1u8; BLOCK_SIZE];
        d.injector().push(FaultSpec::degrade_read_only_writes(1));
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_err());
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_ok());
    }

    #[test]
    fn latent_corruption_is_silent_at_write_time() {
        let d = dev();
        let data = vec![0u8; BLOCK_SIZE];
        d.injector().push(FaultSpec::latent_corruption(1));
        d.write(Lba(0), &data, Nanos::ZERO).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read(Lba(0), &mut out, Nanos::ZERO).unwrap();
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "one persisted bit must differ");
    }

    #[test]
    fn specs_compose_in_order() {
        let d = dev();
        d.injector().push(FaultSpec::fail_reads(1));
        d.injector().push(FaultSpec::fail_writes(1));
        let data = vec![1u8; BLOCK_SIZE];
        let mut out = vec![0u8; BLOCK_SIZE];
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_err());
        assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_err());
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_ok());
        assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_ok());
    }
}
