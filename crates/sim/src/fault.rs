//! Fault injection for block devices.
//!
//! [`FaultyDevice`] wraps any [`BlockDevice`] and fails selected
//! operations, letting tests drive the error paths of every layer above
//! (filesystem cleaning mid-failure, cache flush failures, LSM storage
//! errors) without bespoke mocks.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::io::{BlockDevice, IoError, IoResult, Lba};
use crate::time::Nanos;

/// Which operations a fault plan affects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail reads only.
    Reads,
    /// Fail writes only.
    Writes,
    /// Fail both.
    All,
}

/// A wrapper that fails every matching operation once armed.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use sim::{BlockDevice, Lba, Nanos, RamDisk, BLOCK_SIZE};
/// use sim::fault::{FaultKind, FaultyDevice};
///
/// let dev = FaultyDevice::new(Arc::new(RamDisk::new(8)));
/// let data = vec![1u8; BLOCK_SIZE];
/// dev.write(Lba(0), &data, Nanos::ZERO).unwrap();
///
/// dev.arm(FaultKind::Writes, 1); // next write fails
/// assert!(dev.write(Lba(1), &data, Nanos::ZERO).is_err());
/// // Budget exhausted: the one after succeeds.
/// assert!(dev.write(Lba(1), &data, Nanos::ZERO).is_ok());
/// ```
pub struct FaultyDevice {
    inner: Arc<dyn BlockDevice>,
    kind: parking_lot::Mutex<FaultKind>,
    remaining: AtomicU64,
    injected: AtomicU64,
}

impl FaultyDevice {
    /// Wraps a device with no faults armed.
    pub fn new(inner: Arc<dyn BlockDevice>) -> Self {
        FaultyDevice {
            inner,
            kind: parking_lot::Mutex::new(FaultKind::All),
            remaining: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Arms the injector: the next `count` matching operations fail.
    pub fn arm(&self, kind: FaultKind, count: u64) {
        *self.kind.lock() = kind;
        self.remaining.store(count, Ordering::SeqCst);
    }

    /// Disarms the injector.
    pub fn disarm(&self) {
        self.remaining.store(0, Ordering::SeqCst);
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    fn should_fail(&self, is_write: bool) -> bool {
        let kind = *self.kind.lock();
        let matches = match kind {
            FaultKind::Reads => !is_write,
            FaultKind::Writes => is_write,
            FaultKind::All => true,
        };
        if !matches {
            return false;
        }
        // Consume one fault credit if any remain.
        let mut current = self.remaining.load(Ordering::SeqCst);
        while current > 0 {
            match self.remaining.compare_exchange(
                current,
                current - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.injected.fetch_add(1, Ordering::SeqCst);
                    return true;
                }
                Err(next) => current = next,
            }
        }
        false
    }
}

impl core::fmt::Debug for FaultyDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FaultyDevice")
            .field("injected", &self.injected())
            .finish()
    }
}

impl BlockDevice for FaultyDevice {
    fn block_count(&self) -> u64 {
        self.inner.block_count()
    }

    fn read(&self, lba: Lba, buf: &mut [u8], now: Nanos) -> IoResult<Nanos> {
        if self.should_fail(false) {
            return Err(IoError::Device("injected read fault".into()));
        }
        self.inner.read(lba, buf, now)
    }

    fn write(&self, lba: Lba, data: &[u8], now: Nanos) -> IoResult<Nanos> {
        if self.should_fail(true) {
            return Err(IoError::Device("injected write fault".into()));
        }
        self.inner.write(lba, data, now)
    }

    fn trim(&self, lba: Lba, blocks: u64, now: Nanos) -> IoResult<Nanos> {
        self.inner.trim(lba, blocks, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RamDisk;
    use crate::BLOCK_SIZE;

    fn dev() -> FaultyDevice {
        FaultyDevice::new(Arc::new(RamDisk::new(8)))
    }

    #[test]
    fn passes_through_when_disarmed() {
        let d = dev();
        let data = vec![5u8; BLOCK_SIZE];
        let t = d.write(Lba(0), &data, Nanos::ZERO).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE];
        d.read(Lba(0), &mut out, t).unwrap();
        assert_eq!(out, data);
        assert_eq!(d.injected(), 0);
    }

    #[test]
    fn fails_exactly_count_matching_ops() {
        let d = dev();
        let data = vec![5u8; BLOCK_SIZE];
        d.arm(FaultKind::Writes, 2);
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_err());
        // Reads pass through under a Writes plan.
        let mut out = vec![0u8; BLOCK_SIZE];
        assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_ok());
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_err());
        assert!(d.write(Lba(0), &data, Nanos::ZERO).is_ok());
        assert_eq!(d.injected(), 2);
    }

    #[test]
    fn read_faults_and_disarm() {
        let d = dev();
        d.arm(FaultKind::Reads, 10);
        let mut out = vec![0u8; BLOCK_SIZE];
        assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_err());
        d.disarm();
        assert!(d.read(Lba(0), &mut out, Nanos::ZERO).is_ok());
    }
}
