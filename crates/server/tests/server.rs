//! End-to-end tests over a live loopback server: correct request
//! service, pipelining, protocol abuse (malformed frames, truncated
//! reads, oversized values, mid-request disconnects), and overload
//! shedding (typed BUSY off a bounded queue).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use zns::{ZnsConfig, ZnsDevice};
use zns_cache::backend::ZoneBackend;
use zns_cache::{Admission, CacheConfig, LogCache};
use zns_cache_server::wire::{
    encode_request, write_frame, Reply, Request, MAX_FRAME_LEN, MAX_VALUE_LEN,
};
use zns_cache_server::{BindAddr, CacheServer, Client, ServerConfig};

fn test_cache() -> Arc<LogCache> {
    let backend = ZoneBackend::new(Arc::new(ZnsDevice::new(ZnsConfig::small_test())));
    Arc::new(LogCache::new(Arc::new(backend), CacheConfig::small_test()).unwrap())
}

fn start_tcp(cfg: ServerConfig) -> CacheServer {
    CacheServer::start(test_cache(), cfg, BindAddr::Tcp("127.0.0.1:0".into()))
        .expect("bind loopback")
}

fn tcp_client(server: &CacheServer) -> Client {
    Client::connect_tcp(server.tcp_addr().expect("tcp bound")).expect("connect")
}

/// Raw socket to the server, for speaking broken protocol on purpose.
fn raw_socket(server: &CacheServer) -> TcpStream {
    TcpStream::connect(server.tcp_addr().expect("tcp bound")).expect("connect")
}

/// Polls the server's counters until `done` holds (or ~1s passes);
/// returns the last snapshot. Counter bumps trail the replies that
/// triggered them by a few instructions, so exact-count assertions must
/// wait the race out.
fn wait_for(
    server: &CacheServer,
    done: impl Fn(&zns_cache_server::ServerStatsSnapshot) -> bool,
) -> zns_cache_server::ServerStatsSnapshot {
    for _ in 0..200 {
        let s = server.stats();
        if done(&s) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    server.stats()
}

fn read_reply_frame(sock: &mut TcpStream) -> Option<Vec<u8>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match sock.read(&mut len[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(_) => return None,
        }
    }
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    sock.read_exact(&mut payload).ok()?;
    Some(payload)
}

#[test]
fn get_set_del_over_tcp() {
    let server = start_tcp(ServerConfig::default());
    let mut client = tcp_client(&server);

    assert_eq!(client.get(b"missing").unwrap(), None);
    client.set(b"obj-1", &[0xAB; 4096]).unwrap();
    assert_eq!(client.get(b"obj-1").unwrap().as_deref(), Some(&[0xAB; 4096][..]));
    assert!(client.del(b"obj-1").unwrap(), "existed");
    assert!(!client.del(b"obj-1").unwrap(), "already gone");
    assert_eq!(client.get(b"obj-1").unwrap(), None);

    // The reply-counter bump happens after the frame is written, so the
    // client can observe the reply a moment before the counter; poll.
    let stats = wait_for(&server, |s| s.replies == 6);
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.replies, 6);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.engine_errors, 0);
}

#[test]
fn get_set_over_unix_socket() {
    let path = std::env::temp_dir().join(format!("zns-cache-test-{}.sock", std::process::id()));
    let mut server = CacheServer::start(
        test_cache(),
        ServerConfig::default(),
        BindAddr::Unix(path.clone()),
    )
    .expect("bind unix socket");
    let mut client = Client::connect_unix(server.unix_path().unwrap()).expect("connect");
    client.set(b"k", b"v").unwrap();
    assert_eq!(client.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
    server.shutdown();
    assert!(!path.exists(), "socket file must be removed on shutdown");
}

#[test]
fn pipelined_requests_all_answered_and_correlated() {
    let server = start_tcp(ServerConfig::default());
    let mut client = tcp_client(&server);
    const N: u64 = 64;
    // Fire N sets without reading a single reply, then N gets.
    for i in 0..N {
        let key = format!("pipe-{i}").into_bytes();
        client.send(&Request::Set { id: i, key, value: vec![i as u8; 128] }).unwrap();
    }
    for i in 0..N {
        let key = format!("pipe-{i}").into_bytes();
        client.send(&Request::Get { id: N + i, key }).unwrap();
    }
    // Collect all 2N replies, in whatever order shards finished.
    let mut stored = 0u64;
    let mut values = std::collections::HashMap::new();
    for _ in 0..2 * N {
        match client.recv().unwrap() {
            Reply::Stored { id } => {
                assert!(id < N);
                stored += 1;
            }
            Reply::Value { id, value } => {
                assert!((N..2 * N).contains(&id));
                values.insert(id - N, value);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(stored, N);
    assert_eq!(values.len() as u64, N, "every pipelined GET must hit");
    for (i, v) in values {
        assert_eq!(v, vec![i as u8; 128], "id {i} got the wrong object");
    }
}

#[test]
fn malformed_frame_gets_protocol_error_then_close() {
    let server = start_tcp(ServerConfig::default());
    let mut sock = raw_socket(&server);
    // A framed payload that decodes to garbage (bad opcode).
    write_frame(&mut sock, &[99u8; 16]).unwrap();
    sock.flush().unwrap();
    let payload = read_reply_frame(&mut sock).expect("typed error before close");
    // status 6 = Error, id 0 (unrecoverable), body [1] = protocol.
    assert_eq!(payload[0], 6);
    assert_eq!(payload[13], 1);
    assert!(read_reply_frame(&mut sock).is_none(), "connection must close");
    assert_eq!(server.stats().protocol_errors, 1);
}

#[test]
fn truncated_payload_is_a_protocol_error() {
    let server = start_tcp(ServerConfig::default());
    let mut sock = raw_socket(&server);
    // A well-formed SET, then chop the payload but keep the frame length
    // honest about the chop — the *payload* lies about its field lengths.
    let mut payload = Vec::new();
    encode_request(
        &Request::Set { id: 1, key: b"key".to_vec(), value: vec![7; 64] },
        &mut payload,
    );
    payload.truncate(payload.len() - 10);
    write_frame(&mut sock, &payload).unwrap();
    sock.flush().unwrap();
    let reply = read_reply_frame(&mut sock).expect("typed error before close");
    assert_eq!(reply[0], 6, "truncated payload must earn an Error reply");
    assert!(read_reply_frame(&mut sock).is_none());
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let server = start_tcp(ServerConfig::default());
    let mut sock = raw_socket(&server);
    // Advertise a frame bigger than the protocol ceiling; send nothing
    // else. The server must reject on the header alone.
    sock.write_all(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes()).unwrap();
    sock.flush().unwrap();
    let reply = read_reply_frame(&mut sock).expect("typed error before close");
    assert_eq!(reply[0], 6);
    assert!(read_reply_frame(&mut sock).is_none());
    assert_eq!(server.stats().protocol_errors, 1);
}

#[test]
fn oversized_value_in_a_legal_frame_is_rejected() {
    let server = start_tcp(ServerConfig::default());
    let mut sock = raw_socket(&server);
    // Frame length is under the ceiling, but the value_len field inside
    // claims more than MAX_VALUE_LEN.
    let mut payload = Vec::new();
    payload.push(2u8); // SET
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&1u16.to_le_bytes());
    payload.push(b'k');
    payload.extend_from_slice(&((MAX_VALUE_LEN + 1) as u32).to_le_bytes());
    write_frame(&mut sock, &payload).unwrap();
    sock.flush().unwrap();
    let reply = read_reply_frame(&mut sock).expect("typed error before close");
    assert_eq!(reply[0], 6);
}

#[test]
fn mid_request_disconnect_leaves_server_healthy() {
    let server = start_tcp(ServerConfig::default());
    {
        let mut sock = raw_socket(&server);
        // Send half a frame (length promises 32 bytes, deliver 5), then
        // vanish.
        sock.write_all(&32u32.to_le_bytes()).unwrap();
        sock.write_all(b"abcde").unwrap();
        sock.flush().unwrap();
    } // drop closes the socket mid-frame
    // The server must survive and keep serving new connections.
    let mut client = tcp_client(&server);
    client.set(b"after", b"disconnect").unwrap();
    assert_eq!(client.get(b"after").unwrap().as_deref(), Some(&b"disconnect"[..]));
    let stats = server.stats();
    assert_eq!(stats.connections, 2);
    // A mid-frame disconnect is not a protocol error — nothing decoded.
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn overload_sheds_with_typed_busy_and_bounded_queue() {
    // One slow shard (5ms per op), tiny queue: pipelining far more
    // requests than queue+in-flight can hold MUST produce BUSY replies,
    // and every request must still be answered.
    let cfg = ServerConfig {
        shards: 1,
        queue_capacity: 4,
        soft_overload: 1.0, // disable set-gate shedding; test the hard bound
        set_admission_under_pressure: Admission::Always,
        op_wall_delay: Duration::from_millis(5),
        maintainer: false,
    };
    let server = start_tcp(cfg);
    let mut client = tcp_client(&server);
    const N: u64 = 64;
    for i in 0..N {
        client.send(&Request::Set { id: i, key: format!("k{i}").into_bytes(), value: vec![1; 64] }).unwrap();
    }
    let mut busy = 0u64;
    let mut stored = 0u64;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..N {
        match client.recv().unwrap() {
            Reply::Busy { id } => {
                busy += 1;
                assert!(seen.insert(id));
            }
            Reply::Stored { id } => {
                stored += 1;
                assert!(seen.insert(id));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(busy + stored, N, "every request must get exactly one reply");
    assert!(busy > 0, "a 4-deep queue fed 64 pipelined 5ms ops must shed");
    assert!(stored > 0, "shedding must not starve service entirely");
    let stats = server.stats();
    assert_eq!(stats.busy_replies, busy);
    assert!(
        stats.max_queue_depth <= server.queue_capacity() as u64,
        "queue depth {} exceeded the bound {}",
        stats.max_queue_depth,
        server.queue_capacity()
    );
}

#[test]
fn soft_overload_sheds_sets_before_queue_is_full() {
    // Watermark at depth 1 of 64 with Random{0.0} admission: once one
    // request is queued, every further SET is shed, while GETs still go
    // through. The never-admit policy makes the set-shedding path
    // deterministic.
    let cfg = ServerConfig {
        shards: 1,
        queue_capacity: 64,
        soft_overload: 0.01, // ceil(64 * 0.01) = 1
        set_admission_under_pressure: Admission::Random { probability: 0.0 },
        op_wall_delay: Duration::from_millis(10),
        maintainer: false,
    };
    let server = start_tcp(cfg);
    let mut client = tcp_client(&server);
    const N: u64 = 16;
    for i in 0..N {
        client.send(&Request::Set { id: i, key: format!("k{i}").into_bytes(), value: vec![1; 64] }).unwrap();
    }
    let mut busy = 0u64;
    for _ in 0..N {
        if matches!(client.recv().unwrap(), Reply::Busy { .. }) {
            busy += 1;
        }
    }
    assert!(busy > 0, "the soft watermark must shed some pipelined SETs");
    let stats = server.stats();
    assert_eq!(stats.shed_sets, busy, "all BUSYs here must come from the set gate");
    assert!(
        stats.max_queue_depth < server.queue_capacity() as u64,
        "soft shedding must engage before the hard bound"
    );
}

/// Per-connection, per-request value pattern: distinct lengths and fill
/// bytes, so a reply assembled from the wrong request's bytes — or a
/// frame corrupted by two shards interleaving mid-frame — cannot pass.
fn patterned_value(tag: u8, i: u64) -> Vec<u8> {
    vec![tag ^ (i as u8); 32 + ((i as usize) * 37) % 200]
}

#[test]
fn pipelined_connections_answer_every_id_once_without_interleaving() {
    // Three connections, each pipelining batches that fan out over all
    // four shards, so every connection's socket is written by several
    // shard threads concurrently. The invariants under test: (a) every
    // correlation id is answered exactly once, (b) reply frames from
    // different shards never interleave mid-frame (a torn frame would
    // fail to decode or carry a corrupt pattern).
    let cfg = ServerConfig {
        queue_capacity: 1024, // no shedding: every id must round-trip
        maintainer: false,
        ..ServerConfig::default()
    };
    let server = start_tcp(cfg);
    let addr = server.tcp_addr().expect("tcp bound");
    const N: u64 = 32;
    const CONNS: u64 = 3;
    let mut workers = Vec::new();
    for c in 0..CONNS {
        workers.push(std::thread::spawn(move || {
            let tag = 0x40 + c as u8;
            let mut client = Client::connect_tcp(addr).expect("connect");
            // One write syscall for all N SETs, another for all N GETs
            // (the GETs only go on the wire after every SET was stored).
            for i in 0..N {
                let key = format!("c{c}-k{i}").into_bytes();
                client.send_buffered(&Request::Set { id: i, key, value: patterned_value(tag, i) });
            }
            client.flush().unwrap();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..N {
                match client.recv().unwrap() {
                    Reply::Stored { id } => assert!(seen.insert(id), "id {id} answered twice"),
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            for i in 0..N {
                let key = format!("c{c}-k{i}").into_bytes();
                client.send_buffered(&Request::Get { id: N + i, key });
            }
            client.flush().unwrap();
            for _ in 0..N {
                match client.recv().unwrap() {
                    Reply::Value { id, value } => {
                        assert!(seen.insert(id), "id {id} answered twice");
                        let i = id - N;
                        assert_eq!(
                            value,
                            patterned_value(tag, i),
                            "conn {c} id {id}: torn or misrouted reply"
                        );
                    }
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            assert_eq!(seen.len() as u64, 2 * N);
        }));
    }
    for w in workers {
        w.join().expect("worker panicked");
    }
    let stats = wait_for(&server, |s| s.replies == CONNS * 2 * N);
    assert_eq!(stats.requests, CONNS * 2 * N);
    assert_eq!(stats.replies, CONNS * 2 * N);
    assert_eq!(stats.busy_replies, 0);
    assert_eq!(stats.dead_replies, 0);
    // The batch accounting must close: every decoded frame was observed
    // by the read histogram, every admitted job by the dispatch
    // histogram, every reply by the flush histogram.
    assert_eq!(stats.frames_per_read.items, stats.requests);
    assert_eq!(stats.jobs_per_dispatch.items, stats.requests);
    assert_eq!(stats.replies_per_flush.items, stats.replies);
    assert!(stats.frames_per_read.mean() >= 1.0);
}

#[test]
fn mid_batch_disconnect_drops_only_that_connections_replies() {
    // Connection A pipelines a batch into a slow shard and vanishes
    // before any reply is ready. Its replies must die cleanly — counted
    // in `dead_replies`, never retried — and the shard must keep
    // serving connection B behind it.
    let cfg = ServerConfig {
        shards: 1,
        queue_capacity: 32,
        soft_overload: 1.0,
        set_admission_under_pressure: Admission::Always,
        op_wall_delay: Duration::from_millis(5),
        maintainer: false,
    };
    let server = start_tcp(cfg);
    let addr = server.tcp_addr().expect("tcp bound");
    const N: u64 = 16;
    {
        let mut a = Client::connect_tcp(addr).expect("connect");
        for i in 0..N {
            a.send_buffered(&Request::Set {
                id: i,
                key: format!("dead-{i}").into_bytes(),
                value: vec![3; 64],
            });
        }
        a.flush().unwrap();
    } // drop: A disconnects with all N replies still owed
    // B queues behind A's in-flight batch and must still be served.
    let mut b = Client::connect_tcp(addr).expect("connect");
    b.set(b"alive", b"yes").unwrap();
    assert_eq!(b.get(b"alive").unwrap().as_deref(), Some(&b"yes"[..]));
    let stats = wait_for(&server, |s| s.dead_replies == N && s.replies == 2);
    assert_eq!(stats.dead_replies, N, "A's replies must be accounted dead");
    assert_eq!(stats.requests, N + 2);
    assert_eq!(stats.replies, 2, "only B's replies reached a live peer");
    assert_eq!(stats.busy_replies, 0);
    assert_eq!(stats.protocol_errors, 0, "a clean disconnect is not protocol abuse");
}

#[test]
fn steady_state_reply_path_allocates_nothing_per_request() {
    // `reply_allocs` counts reply-buffer growth. After a warmup that
    // sizes every reusable buffer, a long window of further traffic must
    // not grow anything: zero per-request allocations on the reply path.
    let cfg = ServerConfig { shards: 1, maintainer: false, ..ServerConfig::default() };
    let server = start_tcp(cfg);
    let mut client = tcp_client(&server);
    client.set(b"hot", &[0x5A; 1024]).unwrap();
    assert!(client.get(b"hot").unwrap().is_some());
    let warm = wait_for(&server, |s| s.replies == 2);
    const WINDOW: u64 = 256;
    for _ in 0..WINDOW {
        assert_eq!(client.get(b"hot").unwrap().as_deref(), Some(&[0x5A; 1024][..]));
    }
    let stats = wait_for(&server, |s| s.replies == 2 + WINDOW);
    assert_eq!(stats.replies, 2 + WINDOW, "the window must actually run");
    assert_eq!(
        stats.reply_allocs, warm.reply_allocs,
        "steady-state replies must reuse warm buffers, not allocate"
    );
}

#[test]
fn soft_watermark_counts_jobs_binned_in_the_same_read_batch() {
    // The depth-gauge satellite's end-to-end guard: with a watermark of
    // one queued job and a never-admit gate, a read cycle that decodes
    // many SETs may admit at most ONE of them — the watermark must see
    // the job binned earlier in the same cycle, not just the (still
    // empty) shard queue. A regression that consults only the dispatch
    // gauge admits the whole batch.
    let cfg = ServerConfig {
        shards: 1,
        queue_capacity: 64,
        soft_overload: 0.01, // ceil(64 * 0.01) = 1
        set_admission_under_pressure: Admission::Random { probability: 0.0 },
        op_wall_delay: Duration::from_millis(10),
        maintainer: false,
    };
    let server = start_tcp(cfg);
    let mut client = tcp_client(&server);
    const N: u64 = 16;
    for i in 0..N {
        client.send_buffered(&Request::Set {
            id: i,
            key: format!("w{i}").into_bytes(),
            value: vec![1; 64],
        });
    }
    client.flush().unwrap(); // one write syscall carries all N frames
    let mut stored = 0u64;
    let mut busy = 0u64;
    for _ in 0..N {
        match client.recv().unwrap() {
            Reply::Stored { .. } => stored += 1,
            Reply::Busy { .. } => busy += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(stored + busy, N);
    assert!(busy > 0, "the watermark must shed most of a same-batch burst");
    let stats = server.stats();
    assert_eq!(stats.shed_sets, busy, "every BUSY here must come from the set gate");
    assert!(
        stored <= stats.frames_per_read.events,
        "{stored} SETs admitted over {} read cycles: the watermark ignored same-cycle bins",
        stats.frames_per_read.events
    );
}

#[test]
fn shutdown_drains_queued_requests() {
    let cfg = ServerConfig {
        shards: 2,
        queue_capacity: 32,
        op_wall_delay: Duration::from_millis(1),
        maintainer: false,
        ..ServerConfig::default()
    };
    let mut server = start_tcp(cfg);
    let mut client = tcp_client(&server);
    for i in 0..16u64 {
        client.send(&Request::Set { id: i, key: format!("k{i}").into_bytes(), value: vec![2; 32] }).unwrap();
    }
    // Give the reader thread a moment to move frames into shard queues,
    // then shut down underneath the in-flight pipeline.
    std::thread::sleep(Duration::from_millis(20));
    server.shutdown();
    // No hang, no crash — and the server object is reusable as a husk.
    assert!(server.tcp_addr().is_some());
}
