//! Connection transport: one abstraction over TCP and Unix-socket
//! streams, plus the shared reply writer each connection hands to the
//! shards.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::stats::ServerStats;
use crate::wire::{encode_reply, Reply};

/// A connected byte stream over either transport.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Half-closes both directions; readers blocked in `read` wake with
    /// EOF. Errors are ignored — the peer may already be gone.
    pub(crate) fn force_shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// The write half of one connection, shared by every shard that owes it
/// a reply. Replies from different shards interleave at frame
/// granularity — the mutex serializes whole frames, and the correlation
/// id tells the client which request each frame answers.
pub(crate) struct ConnWriter {
    /// Dense connection id (trace payload `b` of `RequestArrive`).
    pub(crate) id: u64,
    writer: Mutex<Stream>,
    stats: Arc<ServerStats>,
}

impl ConnWriter {
    pub(crate) fn new(id: u64, writer: Stream, stats: Arc<ServerStats>) -> ConnWriter {
        ConnWriter { id, writer: Mutex::new(writer), stats }
    }

    /// Encodes and sends one reply frame. A write failure means the peer
    /// disconnected with requests still in flight; the reply is dropped
    /// and counted, never retried (the request id is meaningless to a
    /// future connection).
    pub(crate) fn send(&self, reply: &Reply) {
        let mut payload = Vec::new();
        encode_reply(reply, &mut payload);
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        // One write_all per frame: no interleaving with other shards'
        // replies, one syscall per reply.
        let mut w = self.writer.lock();
        if w.write_all(&frame).and_then(|()| w.flush()).is_err() {
            ServerStats::bump(&self.stats.dead_replies);
        } else {
            ServerStats::bump(&self.stats.replies);
        }
    }
}
