//! Connection transport: one abstraction over TCP and Unix-socket
//! streams, plus the shared reply writer each connection hands to the
//! shards.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

use parking_lot::Mutex;
use zns_cache::trace::{emit, EventKind};

use crate::stats::ServerStats;
use crate::wire::{append_reply_frame, Reply};

/// A connected byte stream over either transport.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Half-closes both directions; readers blocked in `read` wake with
    /// EOF. Errors are ignored — the peer may already be gone.
    pub(crate) fn force_shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// The write half of one connection, shared by every shard that owes it
/// a reply. Replies from different shards interleave at *flush*
/// granularity — the mutex serializes whole pre-encoded frame runs, and
/// the correlation id tells the client which request each frame answers.
pub(crate) struct ConnWriter {
    /// Dense connection id (trace payload `b` of `RequestArrive`).
    pub(crate) id: u64,
    writer: Mutex<Stream>,
    stats: Arc<ServerStats>,
}

impl ConnWriter {
    pub(crate) fn new(id: u64, writer: Stream, stats: Arc<ServerStats>) -> ConnWriter {
        ConnWriter { id, writer: Mutex::new(writer), stats }
    }

    /// Writes `frames` — `n` pre-encoded, length-prefixed reply frames —
    /// with **one** locked write syscall. This is the whole data path's
    /// reply-side amortization point: callers encode a batch's worth of
    /// replies into a reusable buffer first, so the per-reply cost of
    /// PR 9's `send` (two fresh Vecs + a mutex round trip + a syscall
    /// *each*) collapses to one lock and one `write_all` per batch.
    ///
    /// A write failure means the peer disconnected with requests still
    /// in flight; the replies are dropped and counted, never retried
    /// (the request ids are meaningless to a future connection).
    pub(crate) fn write_frames(&self, frames: &[u8], n: u64, now: sim::Nanos) {
        if n == 0 {
            return;
        }
        let ok = {
            let mut w = self.writer.lock();
            w.write_all(frames).and_then(|()| w.flush()).is_ok()
        };
        if ok {
            ServerStats::add(&self.stats.replies, n);
        } else {
            ServerStats::add(&self.stats.dead_replies, n);
        }
        self.stats.replies_per_flush.observe(n);
        ServerStats::add(&self.stats.reply_bytes, frames.len() as u64);
        emit(EventKind::ReplyBatchFlush, now, n, self.id);
    }
}

/// A reusable reply-encoding buffer: frames are appended in place (length
/// prefix reserved up front, patched after) and flushed through
/// [`ConnWriter::write_frames`] in one syscall. Growth is tracked in the
/// `reply_allocs` stat — once warm, appending and flushing allocate
/// nothing per request.
pub(crate) struct ReplyBuf {
    buf: Vec<u8>,
    n: u64,
}

impl ReplyBuf {
    pub(crate) fn new() -> ReplyBuf {
        ReplyBuf { buf: Vec::new(), n: 0 }
    }

    pub(crate) fn push(&mut self, reply: &Reply) {
        append_reply_frame(reply, &mut self.buf);
        self.n += 1;
    }

    /// Flushes everything buffered to `conn` in one locked write and
    /// resets for reuse, keeping the allocation. Capacity growth since
    /// the last flush is charged to `reply_allocs`.
    pub(crate) fn flush(&mut self, conn: &ConnWriter, now: sim::Nanos) {
        if self.n == 0 {
            return;
        }
        conn.write_frames(&self.buf, self.n, now);
        self.buf.clear();
        self.n = 0;
    }

    /// Capacity marker taken before a batch of pushes; pair with
    /// [`ReplyBuf::charge_growth`].
    pub(crate) fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Charges one `reply_allocs` event if capacity grew past `before` —
    /// the accounting that proves the steady-state reply path allocates
    /// nothing per request.
    pub(crate) fn charge_growth(&self, before: usize, stats: &ServerStats) {
        if self.buf.capacity() != before {
            ServerStats::bump(&stats.reply_allocs);
        }
    }
}
