//! Aggregate server counters.
//!
//! Wait-free (relaxed atomic) counters bumped from connection readers and
//! shard loops; a [`ServerStatsSnapshot`] is the coherent-enough view a
//! test or an operator reads after (or during) a run.

use std::sync::atomic::{AtomicU64, Ordering};

// relaxed-ok(file): monotone statistics counters; nothing is published
// through them and snapshots tolerate slight skew between fields.

/// Shared mutable counters. One instance per [`crate::CacheServer`].
#[derive(Debug, Default)]
pub struct ServerStats {
    pub(crate) connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) replies: AtomicU64,
    pub(crate) busy_replies: AtomicU64,
    pub(crate) shed_sets: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) engine_errors: AtomicU64,
    pub(crate) dead_replies: AtomicU64,
    pub(crate) max_queue_depth: AtomicU64,
}

impl ServerStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            busy_replies: self.busy_replies.load(Ordering::Relaxed),
            shed_sets: self.shed_sets.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            engine_errors: self.engine_errors.load(Ordering::Relaxed),
            dead_replies: self.dead_replies.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests decoded off connections (shed or served).
    pub requests: u64,
    /// Replies sent, of any status.
    pub replies: u64,
    /// Requests shed with a typed BUSY because a shard queue was full.
    pub busy_replies: u64,
    /// SETs shed by the soft-overload admission gate (subset of
    /// `busy_replies`).
    pub shed_sets: u64,
    /// Connections dropped after a malformed frame or payload.
    pub protocol_errors: u64,
    /// Requests that failed inside the engine (typed ERROR reply).
    pub engine_errors: u64,
    /// Replies that could not be written because the peer disconnected.
    pub dead_replies: u64,
    /// High-water mark of any shard's command-queue depth.
    pub max_queue_depth: u64,
}
