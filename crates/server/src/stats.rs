//! Aggregate server counters.
//!
//! Wait-free (relaxed atomic) counters bumped from connection readers and
//! shard loops; a [`ServerStatsSnapshot`] is the coherent-enough view a
//! test or an operator reads after (or during) a run.
//!
//! The batched data path adds three [`BatchStat`] histograms — one per
//! amortization point (frames per read syscall, jobs per channel
//! dispatch, replies per locked write) — plus copy/alloc gauges
//! (`bytes_copied`, `reply_bytes`, `reply_allocs`). Together they make
//! the batching *measurable*: a mean of 1.0 everywhere means the server
//! is paying full per-request overhead; means above 1 are the
//! amortization the knee curves depend on, and `reply_allocs` staying
//! flat under steady load is the no-per-request-allocation guarantee.

use std::sync::atomic::{AtomicU64, Ordering};

// relaxed-ok(file): monotone statistics counters; nothing is published
// through them and snapshots tolerate slight skew between fields.

/// Log₂ batch-size buckets: 1, 2, 4, … 64, ≥128.
pub const BATCH_BUCKETS: usize = 8;

/// A wait-free batch-size histogram: per-bucket counts (log₂ buckets)
/// plus the running event/item totals a mean is computed from.
#[derive(Debug, Default)]
pub struct BatchStat {
    events: AtomicU64,
    items: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BATCH_BUCKETS],
}

impl BatchStat {
    /// Records one batch of `n` items (`n == 0` is not an event).
    pub(crate) fn observe(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.events.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(n, Ordering::Relaxed);
        self.max.fetch_max(n, Ordering::Relaxed);
        let bucket = (63 - n.leading_zeros() as usize).min(BATCH_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> BatchStatSnapshot {
        let mut buckets = [0u64; BATCH_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        BatchStatSnapshot {
            events: self.events.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of one [`BatchStat`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStatSnapshot {
    /// Batches observed (reads, dispatches, or flushes).
    pub events: u64,
    /// Items across all batches (frames, jobs, or replies).
    pub items: u64,
    /// Largest single batch.
    pub max: u64,
    /// Log₂ batch-size buckets: index i counts batches of size
    /// [2^i, 2^(i+1)), with the last bucket open-ended.
    pub buckets: [u64; BATCH_BUCKETS],
}

impl BatchStatSnapshot {
    /// Mean items per batch — the amortization factor. 0.0 before any
    /// batch was observed.
    pub fn mean(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.items as f64 / self.events as f64
        }
    }
}

/// Shared mutable counters. One instance per [`crate::CacheServer`].
#[derive(Debug, Default)]
pub struct ServerStats {
    pub(crate) connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) replies: AtomicU64,
    pub(crate) busy_replies: AtomicU64,
    pub(crate) shed_sets: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) engine_errors: AtomicU64,
    pub(crate) dead_replies: AtomicU64,
    pub(crate) max_queue_depth: AtomicU64,
    pub(crate) frames_per_read: BatchStat,
    pub(crate) jobs_per_dispatch: BatchStat,
    pub(crate) replies_per_flush: BatchStat,
    pub(crate) bytes_copied: AtomicU64,
    pub(crate) reply_bytes: AtomicU64,
    pub(crate) reply_allocs: AtomicU64,
}

impl ServerStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn observe_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            busy_replies: self.busy_replies.load(Ordering::Relaxed),
            shed_sets: self.shed_sets.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            engine_errors: self.engine_errors.load(Ordering::Relaxed),
            dead_replies: self.dead_replies.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            frames_per_read: self.frames_per_read.snapshot(),
            jobs_per_dispatch: self.jobs_per_dispatch.snapshot(),
            replies_per_flush: self.replies_per_flush.snapshot(),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            reply_bytes: self.reply_bytes.load(Ordering::Relaxed),
            reply_allocs: self.reply_allocs.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests decoded off connections (shed or served).
    pub requests: u64,
    /// Replies sent, of any status.
    pub replies: u64,
    /// Requests shed with a typed BUSY because a shard queue was full.
    pub busy_replies: u64,
    /// SETs shed by the soft-overload admission gate (subset of
    /// `busy_replies`).
    pub shed_sets: u64,
    /// Connections dropped after a malformed frame or payload.
    pub protocol_errors: u64,
    /// Requests that failed inside the engine (typed ERROR reply).
    pub engine_errors: u64,
    /// Replies that could not be written because the peer disconnected.
    pub dead_replies: u64,
    /// High-water mark of any shard's command-queue depth (queued jobs,
    /// not channel operations).
    pub max_queue_depth: u64,
    /// Complete frames decoded per read syscall.
    pub frames_per_read: BatchStatSnapshot,
    /// Jobs admitted per shard-channel dispatch (one send, one
    /// depth-gauge update, one wake per batch).
    pub jobs_per_dispatch: BatchStatSnapshot,
    /// Reply frames coalesced per locked connection write.
    pub replies_per_flush: BatchStatSnapshot,
    /// Request key/value bytes copied out of read buffers into owned
    /// jobs (the single copy at the dispatch boundary; shed requests
    /// contribute nothing).
    pub bytes_copied: u64,
    /// Bytes written on the reply path (encoded frames, including
    /// prefixes).
    pub reply_bytes: u64,
    /// Reply-path buffer allocations or growths. Amortized: reusable
    /// per-connection/per-shard buffers grow until the workload's frame
    /// mix fits, after which steady-state batches allocate nothing —
    /// the gate test asserts this stays flat under sustained load.
    pub reply_allocs: u64,
}
