//! The network frontend: listeners, connection readers, routing,
//! overload shedding, shutdown.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use zns_cache::policy::AdmissionGate;
use zns_cache::trace::{emit, EventKind};
use zns_cache::{Admission, LogCache, Maintainer, MaintainerHandle};

use crate::conn::{ConnWriter, ReplyBuf, Stream};
use crate::shard::{Job, ShardPool};
use crate::stats::{ServerStats, ServerStatsSnapshot};
use crate::wire::{
    decode_request_ref, split_frame, ErrorCode, FrameSplit, Reply, RequestRef,
};

/// Frontend and executor tuning.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Shard command loops (executor threads into the engine).
    pub shards: usize,
    /// Bounded depth of each shard's command queue. A full queue sheds
    /// with a typed BUSY — the backpressure bound that keeps p99 finite
    /// past the knee.
    pub queue_capacity: usize,
    /// Fraction of `queue_capacity` above which SETs additionally pass
    /// `set_admission_under_pressure` before queueing (GETs keep full
    /// priority: under overload, serving hits is worth more than
    /// absorbing writes the cache may evict unread).
    pub soft_overload: f64,
    /// The engine-style admission policy applied to SETs while a shard
    /// queue sits above the soft-overload watermark. The default
    /// (`Random { probability: 0.5 }`) sheds half the write load before
    /// it costs a queue slot.
    pub set_admission_under_pressure: Admission,
    /// Artificial wall-clock delay per engine op in the shard loops.
    /// Zero in production; tests raise it to make overload deterministic.
    pub op_wall_delay: Duration,
    /// Run a background [`Maintainer`] over the engine so region
    /// eviction overlaps request service (on by default, as in the
    /// closed-loop benchmarks).
    pub maintainer: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            queue_capacity: 128,
            soft_overload: 0.75,
            set_admission_under_pressure: Admission::Random { probability: 0.5 },
            op_wall_delay: Duration::ZERO,
            maintainer: true,
        }
    }
}

/// Where the server listens. TCP binds `127.0.0.1:<port>` semantics via
/// the given address string; Unix binds (and on shutdown removes) a
/// socket path. `Both` serves the two transports simultaneously over one
/// shard pool.
#[derive(Clone, Debug)]
pub enum BindAddr {
    /// A TCP address, e.g. `"127.0.0.1:0"` (port 0 = ephemeral).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// Both transports at once.
    Both(String, PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
        })
    }
}

struct Shared {
    cache: Arc<LogCache>,
    pool: ShardPool,
    stats: Arc<ServerStats>,
    stopping: AtomicBool,
    next_conn_id: AtomicU64,
    /// Reader-side clones of every live connection (keyed by conn id),
    /// shut down to unblock their reader threads on server shutdown.
    /// Each reader removes its own entry on exit.
    conns: Mutex<std::collections::HashMap<u64, Stream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    soft_limit: usize,
    set_gate: Mutex<AdmissionGate>,
}

/// A running cache server. Dropping it (or calling
/// [`CacheServer::shutdown`]) stops accepting, closes connections,
/// drains the shard queues, and joins every thread.
pub struct CacheServer {
    shared: Option<Arc<Shared>>,
    accept_threads: Vec<JoinHandle<()>>,
    maintainer: Option<MaintainerHandle>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl CacheServer {
    /// Binds the listeners and starts the shard loops over `cache`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, stale socket path the
    /// process cannot replace, permission).
    pub fn start(cache: Arc<LogCache>, cfg: ServerConfig, bind: BindAddr) -> io::Result<CacheServer> {
        let stats = Arc::new(ServerStats::default());
        let pool = ShardPool::start(
            Arc::clone(&cache),
            cfg.shards,
            cfg.queue_capacity,
            cfg.op_wall_delay,
            Arc::clone(&stats),
        );
        let soft_limit = ((cfg.queue_capacity as f64 * cfg.soft_overload).ceil() as usize)
            .clamp(1, cfg.queue_capacity);
        let maintainer = if cfg.maintainer {
            Some(Maintainer::new(Arc::clone(&cache)).spawn(Duration::from_millis(1)))
        } else {
            None
        };
        let shared = Arc::new(Shared {
            cache,
            pool,
            stats,
            stopping: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(0),
            conns: Mutex::new(std::collections::HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            soft_limit,
            set_gate: Mutex::new(AdmissionGate::new(cfg.set_admission_under_pressure, 0x5EED)),
        });

        let mut listeners = Vec::new();
        let mut tcp_addr = None;
        let mut unix_path = None;
        let (tcp, unix) = match bind {
            BindAddr::Tcp(a) => (Some(a), None),
            BindAddr::Unix(p) => (None, Some(p)),
            BindAddr::Both(a, p) => (Some(a), Some(p)),
        };
        if let Some(addr) = tcp {
            let l = TcpListener::bind(&addr)?;
            tcp_addr = Some(l.local_addr()?);
            listeners.push(Listener::Tcp(l));
        }
        if let Some(path) = unix {
            // A stale socket from a previous run refuses rebinding;
            // removing a *fresh* foreign socket is the embedder's risk to
            // manage via path choice.
            let _ = std::fs::remove_file(&path);
            listeners.push(Listener::Unix(UnixListener::bind(&path)?));
            unix_path = Some(path);
        }

        let mut accept_threads = Vec::new();
        for listener in listeners {
            let shared = Arc::clone(&shared);
            accept_threads.push(std::thread::spawn(move || accept_loop(listener, shared)));
        }
        Ok(CacheServer {
            shared: Some(shared),
            accept_threads,
            maintainer,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address (when TCP was requested) — useful with
    /// port 0.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path (when Unix was requested).
    pub fn unix_path(&self) -> Option<&std::path::Path> {
        self.unix_path.as_deref()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        match &self.shared {
            Some(s) => s.stats.snapshot(),
            None => ServerStatsSnapshot::default(),
        }
    }

    /// The configured per-shard queue bound (tests assert against it).
    pub fn queue_capacity(&self) -> usize {
        self.shared.as_ref().map_or(0, |s| s.pool.queue_capacity())
    }

    /// Graceful shutdown: stop accepting, close live connections, drain
    /// queued requests (each still receives its reply), join every
    /// thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        let Some(shared) = self.shared.take() else {
            return;
        };
        // ordering-ok: shutdown latch; Release pairs with the Acquire
        // loads in the accept and reader loops.
        shared.stopping.store(true, Ordering::Release);
        // Wake blocked accept() calls by connecting to our own listeners.
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        // Unblock connection readers; their threads exit on EOF.
        for c in shared.conns.lock().values() {
            c.force_shutdown();
        }
        let threads: Vec<JoinHandle<()>> = std::mem::take(&mut *shared.conn_threads.lock());
        for t in threads {
            let _ = t.join();
        }
        self.maintainer = None; // stop + join the maintainer
        // Every sender clone lives in reader threads (now joined) or the
        // pool itself; dropping the pool closes the queues and the shard
        // loops drain what remains, reply, and exit.
        // If a racing thread still holds the Arc briefly, the shard
        // threads still exit once it drops — we just cannot join them.
        if let Ok(s) = Arc::try_unwrap(shared) {
            s.pool.shutdown();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                // ordering-ok: shutdown latch, pairs with the Release
                // store in `shutdown`.
                if shared.stopping.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        // ordering-ok: shutdown latch, pairs with the Release store in
        // `shutdown`. The wake-up connection from shutdown() lands here.
        if shared.stopping.load(Ordering::Acquire) {
            return;
        }
        ServerStats::bump(&shared.stats.connections);
        // relaxed-ok: dense id allocation; uniqueness is all that matters.
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let (reader_clone, writer_clone) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(r), Ok(w)) => (r, w),
            _ => continue, // peer already gone
        };
        shared.conns.lock().insert(conn_id, reader_clone);
        let writer = Arc::new(ConnWriter::new(conn_id, writer_clone, Arc::clone(&shared.stats)));
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || read_loop(stream, conn_id, writer, shared2));
        shared.conn_threads.lock().push(handle);
    }
}

/// Growable read buffer for the drain loop: one `read` syscall fills it,
/// then every complete frame it holds is decoded before the next
/// syscall. The unconsumed window is `buf[start..end]`; leftover partial
/// frames are compacted to the front before refilling, and the buffer
/// grows until the largest in-flight frame fits (bounded by the codec's
/// `MAX_FRAME_LEN` check inside [`split_frame`]).
struct ReadBuf {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

/// Spare room guaranteed before each read syscall — also the growth
/// step, so an over-`READ_CHUNK` frame becomes readable within a few
/// fills.
const READ_CHUNK: usize = 64 * 1024;

impl ReadBuf {
    fn new() -> ReadBuf {
        ReadBuf { buf: Vec::new(), start: 0, end: 0 }
    }

    /// One read syscall into the spare tail; returns the byte count (0 =
    /// EOF).
    fn fill(&mut self, r: &mut impl Read) -> io::Result<usize> {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        } else if self.start > 0 && self.buf.len() - self.end < READ_CHUNK {
            // Compact the leftover partial frame to the front.
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() - self.end < READ_CHUNK {
            self.buf.resize(self.end + READ_CHUNK, 0);
        }
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Consumes and returns the bounds of the next complete frame's
    /// payload, or `None` when only a partial frame remains.
    ///
    /// # Errors
    ///
    /// `InvalidData` from [`split_frame`] on an over-ceiling length.
    fn next_frame(&mut self) -> io::Result<Option<std::ops::Range<usize>>> {
        match split_frame(&self.buf[self.start..self.end])? {
            FrameSplit::Incomplete => Ok(None),
            FrameSplit::Frame { payload, advance } => {
                let at = self.start;
                self.start += advance;
                Ok(Some(at + payload.start..at + payload.end))
            }
        }
    }

    fn slice(&self, range: std::ops::Range<usize>) -> &[u8] {
        &self.buf[range]
    }
}

/// Reads and drains one connection until EOF, protocol violation, or
/// shutdown. Each cycle is one `read` syscall, then *every* complete
/// frame it delivered: decode borrowed ([`RequestRef`]), route, bin per
/// shard, and finally dispatch each bin as one batch per channel — one
/// depth-gauge update and one shard wake per bin instead of per
/// request. Shed and error replies coalesce into a reader-local
/// [`ReplyBuf`] flushed once per cycle. On exit, shuts the socket down
/// (so the peer sees FIN even while registry/writer clones linger) and
/// removes the connection from the live registry.
fn read_loop(mut stream: Stream, conn_id: u64, writer: Arc<ConnWriter>, shared: Arc<Shared>) {
    let mut rbuf = ReadBuf::new();
    let mut bins: Vec<Vec<Job>> = (0..shared.pool.shards()).map(|_| Vec::new()).collect();
    let mut shed = ReplyBuf::new();
    'conn: loop {
        // ordering-ok: shutdown latch, pairs with the Release store in
        // `shutdown`.
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let got = match rbuf.fill(&mut stream) {
            Ok(n) => n,
            Err(_) => break, // transport error: nothing to answer
        };
        let now = shared.cache.observed_clock();
        let mut frames = 0u64;
        let mut fatal = false;
        loop {
            match rbuf.next_frame() {
                Ok(Some(range)) => {
                    frames += 1;
                    match decode_request_ref(rbuf.slice(range)) {
                        Ok(req) => route_ref(req, &writer, &shared, &mut bins, &mut shed, now),
                        Err(_) => {
                            // The payload decoded far enough to be framed
                            // but is malformed; answer with a typed
                            // protocol error and close (the id is
                            // unrecoverable from garbage).
                            ServerStats::bump(&shared.stats.protocol_errors);
                            shed.push(&Reply::Error { id: 0, code: ErrorCode::Protocol });
                            fatal = true;
                            break;
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Frame length over the protocol ceiling.
                    ServerStats::bump(&shared.stats.protocol_errors);
                    shed.push(&Reply::Error { id: 0, code: ErrorCode::Protocol });
                    fatal = true;
                    break;
                }
            }
        }
        if frames > 0 {
            shared.stats.frames_per_read.observe(frames);
            emit(EventKind::ConnReadBatch, now, frames, conn_id);
        }
        // Dispatch every non-empty bin as one batch; the rejected tail
        // of a full queue sheds with BUSY.
        for (shard, bin) in bins.iter_mut().enumerate() {
            if bin.is_empty() {
                continue;
            }
            for job in shared
                .pool
                .try_dispatch_batch(shard, std::mem::take(bin), &shared.stats)
            {
                ServerStats::bump(&shared.stats.busy_replies);
                emit(EventKind::RequestShed, now, job.req.id(), shard as u64);
                shed.push(&Reply::Busy { id: job.req.id() });
            }
        }
        // One locked write for every shed/error reply this cycle.
        let cap_before = shed.capacity();
        shed.flush(&writer, now);
        shed.charge_growth(cap_before, &shared.stats);
        if fatal || got == 0 {
            break 'conn;
        }
    }
    // A socket shutdown is socket-level, not fd-level: it reaches the
    // peer even though the registry and ConnWriter still hold clones.
    stream.force_shutdown();
    shared.conns.lock().remove(&conn_id);
}

/// Routes one borrowed request: shed (zero-copy) or copy it into the
/// owning shard's bin. The soft-overload check reads the shard's queue
/// depth *plus* the jobs already binned for it this cycle, so the
/// watermark engages at the same queued-job count as the unbatched
/// path did.
fn route_ref(
    req: RequestRef<'_>,
    writer: &Arc<ConnWriter>,
    shared: &Shared,
    bins: &mut [Vec<Job>],
    shed: &mut ReplyBuf,
    now: sim::Nanos,
) {
    ServerStats::bump(&shared.stats.requests);
    let id = req.id();
    emit(EventKind::RequestArrive, now, id, writer.id);
    let shard = shared.pool.shard_of(req.key());
    // Soft overload: above the watermark, SETs pass the engine-style
    // admission gate before they may cost a queue slot; GETs always get
    // the chance to queue.
    if matches!(req, RequestRef::Set { .. })
        && shared.pool.depth(shard) + bins[shard].len() >= shared.soft_limit
        && !shared.set_gate.lock().admit()
    {
        ServerStats::bump(&shared.stats.shed_sets);
        ServerStats::bump(&shared.stats.busy_replies);
        emit(EventKind::RequestShed, now, id, shard as u64);
        shed.push(&Reply::Busy { id });
        return;
    }
    // The dispatch boundary: the one copy out of the read buffer.
    ServerStats::add(&shared.stats.bytes_copied, req.owned_len() as u64);
    emit(EventKind::RequestShardEnqueue, now, id, shard as u64);
    bins[shard].push(Job { req: req.to_owned(), conn: Arc::clone(writer) });
}
