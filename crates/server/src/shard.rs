//! Per-shard command loops.
//!
//! The engine ([`LogCache`]) is already safe for concurrent callers —
//! the lock-striped index and unlocked read I/O are what PR 2 built —
//! so shards here are **not** data partitions. They are *executors*: N
//! threads, each draining its own bounded command queue, giving the
//! frontend (a) a fixed concurrency level into the engine regardless of
//! connection count, and (b) a natural backpressure point — when a
//! shard's queue is full the frontend sheds with a typed BUSY instead
//! of queueing without bound (the open-loop latency bench is exactly
//! the workload that punishes unbounded queues with unbounded p99).
//!
//! Requests are routed to shards by key hash, so one hot key's requests
//! serialize on one queue instead of racing each other through the
//! engine, and a slow request (zone collision, GC stall) delays only
//! its own shard's queue.
//!
//! **Batched end to end.** The channel carries `Vec<Job>` batches, not
//! single jobs: one reservation against the job-count bound, one
//! `try_send`, one consumer wake per *batch* of decoded frames. The
//! bound itself stays a bound on **queued jobs** — a CAS loop reserves
//! up to `queue_capacity - depth` slots and the frontend sheds the
//! remainder — so the soft-overload watermark and the hard BUSY bound
//! engage at exactly the same queued-job counts as the unbatched path.
//! On the way out, each loop drains every batch its channel holds,
//! executes the jobs, and coalesces all replies owed to the same
//! connection into one reusable buffer flushed with a single locked
//! write syscall ([`ConnWriter::write_frames`]).
//!
//! Each shard carries its own simulated clock, seeded from the engine's
//! observed clock and re-synchronized against it per request (the same
//! loose coupling the closed-loop MT driver uses), so the trace spans a
//! shard emits interleave correctly with the zone/GC events the engine
//! emits underneath it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use zns_cache::trace::{emit, EventKind};
use zns_cache::LogCache;

use crate::conn::{ConnWriter, ReplyBuf};
use crate::stats::ServerStats;
use crate::wire::{ErrorCode, Reply, Request};

/// One queued command: the decoded request plus the connection that owes
/// the client a reply.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) conn: Arc<ConnWriter>,
}

/// The executor pool: senders into each shard's bounded queue plus the
/// shard threads themselves.
pub(crate) struct ShardPool {
    senders: Vec<SyncSender<Vec<Job>>>,
    depths: Vec<Arc<AtomicUsize>>,
    queue_capacity: usize,
    handles: Vec<JoinHandle<()>>,
}

/// FNV-1a over the key: stable shard routing with no dependency.
fn shard_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reserves up to `want` job slots against `depth`'s bound of `cap`
/// queued jobs, returning how many were granted (possibly zero). One
/// atomic update per *batch* — this is the satellite fix for the old
/// per-job `fetch_add(1)`: the gauge moves by whole batches but still
/// counts jobs, so the soft-shed watermark reads queued work, not
/// channel operations.
fn reserve_jobs(depth: &AtomicUsize, cap: usize, want: usize) -> usize {
    // relaxed-ok: the depth gauge orders nothing; the channel's own
    // synchronization publishes the jobs. The CAS only keeps the gauge's
    // arithmetic exact so the bound cannot be overshot.
    let mut cur = depth.load(Ordering::Relaxed);
    loop {
        let take = want.min(cap.saturating_sub(cur));
        if take == 0 {
            return 0;
        }
        // relaxed-ok: same gauge as above; only the count must be exact.
        match depth.compare_exchange_weak(cur, cur + take, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return take,
            Err(now) => cur = now,
        }
    }
}

impl ShardPool {
    /// Spawns `shards` command loops over `cache`, each with a bounded
    /// queue of `queue_capacity` *jobs*. `op_wall_delay` inserts an
    /// artificial wall-clock delay per engine op — zero in production;
    /// tests use it to make overload deterministic.
    pub(crate) fn start(
        cache: Arc<LogCache>,
        shards: usize,
        queue_capacity: usize,
        op_wall_delay: Duration,
        stats: Arc<ServerStats>,
    ) -> ShardPool {
        let shards = shards.max(1);
        let queue_capacity = queue_capacity.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut depths = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _shard in 0..shards {
            // Channel slots are *batches*; every batch holds >= 1 job and
            // job reservations are capped at `queue_capacity`, so at most
            // `queue_capacity` batches can be outstanding — the channel
            // can never refuse a reserved batch.
            let (tx, rx) = sync_channel::<Vec<Job>>(queue_capacity);
            let depth = Arc::new(AtomicUsize::new(0));
            senders.push(tx);
            depths.push(Arc::clone(&depth));
            let cache = Arc::clone(&cache);
            let stats = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                run_shard(cache, rx, depth, queue_capacity, op_wall_delay, stats)
            }));
        }
        ShardPool { senders, depths, queue_capacity, handles }
    }

    /// How many shard loops are running (the frontend sizes its dispatch
    /// bins off this).
    pub(crate) fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Which shard serves `key`.
    pub(crate) fn shard_of(&self, key: &[u8]) -> usize {
        (shard_hash(key) % self.senders.len() as u64) as usize
    }

    /// Current queue depth of `shard` in *jobs* (approximate; used for
    /// the soft-overload watermark).
    pub(crate) fn depth(&self, shard: usize) -> usize {
        // relaxed-ok: advisory load for the shedding watermark; an
        // off-by-a-few read only shifts when shedding engages.
        self.depths[shard].load(Ordering::Relaxed)
    }

    /// The job-count bound every shard queue enforces.
    pub(crate) fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Enqueues as much of `batch` as the bounded queue has room for —
    /// one depth-gauge update, one channel send, one consumer wake for
    /// the whole batch — and returns the rejected tail (empty when
    /// everything was admitted; the caller sheds the rest with BUSY).
    pub(crate) fn try_dispatch_batch(
        &self,
        shard: usize,
        mut batch: Vec<Job>,
        stats: &ServerStats,
    ) -> Vec<Job> {
        if batch.is_empty() {
            return batch;
        }
        let depth = &self.depths[shard];
        let take = reserve_jobs(depth, self.queue_capacity, batch.len());
        if take == 0 {
            return batch;
        }
        let rejected = batch.split_off(take);
        // relaxed-ok: advisory depth gauge, see `depth`.
        stats.observe_depth(depth.load(Ordering::Relaxed) as u64);
        stats.jobs_per_dispatch.observe(take as u64);
        match self.senders[shard].try_send(batch) {
            Ok(()) => rejected,
            Err(TrySendError::Full(mut batch)) | Err(TrySendError::Disconnected(mut batch)) => {
                // Full is impossible by construction (see `start`); this
                // arm is the shutdown race — undo the reservation and
                // hand everything back.
                // relaxed-ok: advisory depth gauge, see `depth`.
                depth.fetch_sub(take, Ordering::Relaxed);
                batch.extend(rejected);
                batch
            }
        }
    }

    /// Drops the queue senders and joins every shard thread. Queued jobs
    /// are drained (each still gets its reply) before a loop exits.
    pub(crate) fn shutdown(self) {
        drop(self.senders);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Reusable per-connection reply accumulators for one executed batch:
/// replies owed to the same connection coalesce into one buffer, flushed
/// with one locked write. Slots (and their buffers) persist across
/// batches, so the steady state allocates nothing.
struct ReplyGroups {
    groups: Vec<(Option<Arc<ConnWriter>>, ReplyBuf, usize)>,
}

impl ReplyGroups {
    fn new() -> ReplyGroups {
        ReplyGroups { groups: Vec::new() }
    }

    fn buf_for(&mut self, conn: &Arc<ConnWriter>) -> &mut ReplyBuf {
        // Linear scan: a batch rarely spans more than a handful of
        // connections, and slots are reused in place.
        let mut active = None;
        let mut free = None;
        for (i, (owner, _, _)) in self.groups.iter().enumerate() {
            match owner {
                Some(c) if Arc::ptr_eq(c, conn) => {
                    active = Some(i);
                    break;
                }
                None if free.is_none() => free = Some(i),
                _ => {}
            }
        }
        let i = match (active, free) {
            (Some(i), _) => return &mut self.groups[i].1,
            (None, Some(i)) => i,
            (None, None) => {
                self.groups.push((None, ReplyBuf::new(), 0));
                self.groups.len() - 1
            }
        };
        let (owner, buf, cap_before) = &mut self.groups[i];
        *owner = Some(Arc::clone(conn));
        *cap_before = buf.capacity();
        buf
    }

    /// Flushes every active group — one locked write syscall per
    /// connection — then releases the connections (keeping the buffers).
    fn flush_all(&mut self, stats: &ServerStats, now: sim::Nanos) {
        for (owner, buf, cap_before) in &mut self.groups {
            if let Some(conn) = owner.take() {
                buf.charge_growth(*cap_before, stats);
                buf.flush(&conn, now);
            }
        }
    }
}

fn run_shard(
    cache: Arc<LogCache>,
    rx: Receiver<Vec<Job>>,
    depth: Arc<AtomicUsize>,
    queue_capacity: usize,
    op_wall_delay: Duration,
    stats: Arc<ServerStats>,
) {
    // This shard's simulated timeline; re-synchronized to the engine's
    // observed clock per request so shard timelines stay loosely coupled
    // (a shard idle for a while does not replay the past).
    let mut clock = cache.observed_clock();
    let mut groups = ReplyGroups::new();
    while let Ok(mut batch) = rx.recv() {
        // relaxed-ok: advisory depth gauge for the shedding watermark.
        depth.fetch_sub(batch.len(), Ordering::Relaxed);
        // Drain everything else already queued (up to the job bound, so a
        // continuously-refilled queue cannot defer replies forever): the
        // deeper the backlog, the more replies one flush amortizes.
        while batch.len() < queue_capacity {
            match rx.try_recv() {
                Ok(more) => {
                    // relaxed-ok: advisory depth gauge, see above.
                    depth.fetch_sub(more.len(), Ordering::Relaxed);
                    batch.extend(more);
                }
                Err(_) => break,
            }
        }
        for job in batch.drain(..) {
            if !op_wall_delay.is_zero() {
                std::thread::sleep(op_wall_delay);
            }
            let Job { req, conn } = job;
            let id = req.id();
            let start = clock.max(cache.observed_clock());
            emit(EventKind::RequestEngineStart, start, id, req.opcode() as u64);
            let reply = match &req {
                Request::Get { key, .. } => match cache.get(key, start) {
                    Ok((Some(value), done)) => {
                        clock = done;
                        // The engine's refcounted buffer rides into the
                        // encoder as-is — no `to_vec` on the hit path.
                        Reply::Value { id, value }
                    }
                    Ok((None, done)) => {
                        clock = done;
                        Reply::NotFound { id }
                    }
                    Err(_) => {
                        ServerStats::bump(&stats.engine_errors);
                        Reply::Error { id, code: ErrorCode::Engine }
                    }
                },
                Request::Set { key, value, .. } => match cache.set(key, value, start) {
                    Ok(done) => {
                        clock = done;
                        Reply::Stored { id }
                    }
                    Err(_) => {
                        ServerStats::bump(&stats.engine_errors);
                        Reply::Error { id, code: ErrorCode::Engine }
                    }
                },
                Request::Del { key, .. } => match cache.delete(key, start) {
                    Ok((existed, done)) => {
                        clock = done;
                        Reply::Deleted { id, existed }
                    }
                    Err(_) => {
                        ServerStats::bump(&stats.engine_errors);
                        Reply::Error { id, code: ErrorCode::Engine }
                    }
                },
            };
            emit(EventKind::RequestDone, clock, id, (clock - start).as_nanos());
            groups.buf_for(&conn).push(&reply);
        }
        groups.flush_all(&stats, clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_is_stable_and_spread() {
        let h1 = shard_hash(b"obj-00000001");
        assert_eq!(h1, shard_hash(b"obj-00000001"), "routing must be deterministic");
        // 1000 distinct keys over 4 shards: no shard may be empty.
        let mut counts = [0u32; 4];
        for i in 0..1000u32 {
            let key = format!("obj-{i:08}");
            counts[(shard_hash(key.as_bytes()) % 4) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed routing: {counts:?}");
    }

    #[test]
    fn reserve_jobs_counts_jobs_not_batches() {
        // The regression the depth-gauge satellite guards: the bound is
        // queued *jobs*. Three batch reservations against a bound of 8
        // must grant 5, then 3, then 0 — the same cutoffs the old
        // per-job fetch_add produced, in one atomic update per batch.
        let depth = AtomicUsize::new(0);
        assert_eq!(reserve_jobs(&depth, 8, 5), 5);
        assert_eq!(depth.load(Ordering::Relaxed), 5);
        assert_eq!(reserve_jobs(&depth, 8, 5), 3, "partial grant at the bound");
        assert_eq!(depth.load(Ordering::Relaxed), 8);
        assert_eq!(reserve_jobs(&depth, 8, 1), 0, "full queue grants nothing");
        assert_eq!(depth.load(Ordering::Relaxed), 8);
        // Consumer drains a whole batch in one decrement; capacity frees.
        depth.fetch_sub(8, Ordering::Relaxed);
        assert_eq!(reserve_jobs(&depth, 8, 20), 8, "grants clamp to the bound");
    }
}
