//! Per-shard command loops.
//!
//! The engine ([`LogCache`]) is already safe for concurrent callers —
//! the lock-striped index and unlocked read I/O are what PR 2 built —
//! so shards here are **not** data partitions. They are *executors*: N
//! threads, each draining its own bounded command queue, giving the
//! frontend (a) a fixed concurrency level into the engine regardless of
//! connection count, and (b) a natural backpressure point — when a
//! shard's queue is full the frontend sheds with a typed BUSY instead
//! of queueing without bound (the open-loop latency bench is exactly
//! the workload that punishes unbounded queues with unbounded p99).
//!
//! Requests are routed to shards by key hash, so one hot key's requests
//! serialize on one queue instead of racing each other through the
//! engine, and a slow request (zone collision, GC stall) delays only
//! its own shard's queue.
//!
//! Each shard carries its own simulated clock, seeded from the engine's
//! observed clock and re-synchronized against it per request (the same
//! loose coupling the closed-loop MT driver uses), so the trace spans a
//! shard emits interleave correctly with the zone/GC events the engine
//! emits underneath it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use zns_cache::trace::{emit, EventKind};
use zns_cache::LogCache;

use crate::conn::ConnWriter;
use crate::stats::ServerStats;
use crate::wire::{ErrorCode, Reply, Request};

/// One queued command: the decoded request plus the connection that owes
/// the client a reply.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) conn: Arc<ConnWriter>,
}

/// The executor pool: senders into each shard's bounded queue plus the
/// shard threads themselves.
pub(crate) struct ShardPool {
    senders: Vec<SyncSender<Job>>,
    depths: Vec<Arc<AtomicUsize>>,
    queue_capacity: usize,
    handles: Vec<JoinHandle<()>>,
}

/// FNV-1a over the key: stable shard routing with no dependency.
fn shard_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardPool {
    /// Spawns `shards` command loops over `cache`, each with a bounded
    /// queue of `queue_capacity`. `op_wall_delay` inserts an artificial
    /// wall-clock delay per engine op — zero in production; tests use it
    /// to make overload deterministic.
    pub(crate) fn start(
        cache: Arc<LogCache>,
        shards: usize,
        queue_capacity: usize,
        op_wall_delay: Duration,
        stats: Arc<ServerStats>,
    ) -> ShardPool {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut depths = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _shard in 0..shards {
            let (tx, rx) = sync_channel::<Job>(queue_capacity.max(1));
            let depth = Arc::new(AtomicUsize::new(0));
            senders.push(tx);
            depths.push(Arc::clone(&depth));
            let cache = Arc::clone(&cache);
            let stats = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                run_shard(cache, rx, depth, op_wall_delay, stats)
            }));
        }
        ShardPool { senders, depths, queue_capacity: queue_capacity.max(1), handles }
    }

    /// Which shard serves `key`.
    pub(crate) fn shard_of(&self, key: &[u8]) -> usize {
        (shard_hash(key) % self.senders.len() as u64) as usize
    }

    /// Current queue depth of `shard` (approximate; used for the
    /// soft-overload watermark).
    pub(crate) fn depth(&self, shard: usize) -> usize {
        // relaxed-ok: advisory load for the shedding watermark; an
        // off-by-a-few read only shifts when shedding engages.
        self.depths[shard].load(Ordering::Relaxed)
    }

    /// The bound every shard queue enforces.
    pub(crate) fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Enqueues `job` on `shard`, or returns it when the bounded queue
    /// is full (the caller sheds with BUSY) or the pool is shutting down.
    pub(crate) fn try_dispatch(&self, shard: usize, job: Job, stats: &ServerStats) -> Result<(), Job> {
        // Increment BEFORE try_send: the consumer can only decrement after
        // a successful send, so the gauge never dips below zero. (The other
        // order races — a fast shard could dequeue and decrement before
        // this thread's increment landed, wrapping the counter.)
        // relaxed-ok: advisory depth gauge, see `depth`.
        let d = self.depths[shard].fetch_add(1, Ordering::Relaxed) + 1;
        match self.senders[shard].try_send(job) {
            Ok(()) => {
                stats.observe_depth(d as u64);
                Ok(())
            }
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                // relaxed-ok: advisory depth gauge, see `depth`.
                self.depths[shard].fetch_sub(1, Ordering::Relaxed);
                Err(job)
            }
        }
    }

    /// Drops the queue senders and joins every shard thread. Queued jobs
    /// are drained (each still gets its reply) before a loop exits.
    pub(crate) fn shutdown(self) {
        drop(self.senders);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn run_shard(
    cache: Arc<LogCache>,
    rx: Receiver<Job>,
    depth: Arc<AtomicUsize>,
    op_wall_delay: Duration,
    stats: Arc<ServerStats>,
) {
    // This shard's simulated timeline; re-synchronized to the engine's
    // observed clock per request so shard timelines stay loosely coupled
    // (a shard idle for a while does not replay the past).
    let mut clock = cache.observed_clock();
    while let Ok(job) = rx.recv() {
        // relaxed-ok: advisory depth gauge for the shedding watermark.
        depth.fetch_sub(1, Ordering::Relaxed);
        if !op_wall_delay.is_zero() {
            std::thread::sleep(op_wall_delay);
        }
        let Job { req, conn } = job;
        let id = req.id();
        let start = clock.max(cache.observed_clock());
        emit(EventKind::RequestEngineStart, start, id, req.opcode() as u64);
        let reply = match &req {
            Request::Get { key, .. } => match cache.get(key, start) {
                Ok((Some(value), done)) => {
                    clock = done;
                    Reply::Value { id, value: value.to_vec() }
                }
                Ok((None, done)) => {
                    clock = done;
                    Reply::NotFound { id }
                }
                Err(_) => {
                    ServerStats::bump(&stats.engine_errors);
                    Reply::Error { id, code: ErrorCode::Engine }
                }
            },
            Request::Set { key, value, .. } => match cache.set(key, value, start) {
                Ok(done) => {
                    clock = done;
                    Reply::Stored { id }
                }
                Err(_) => {
                    ServerStats::bump(&stats.engine_errors);
                    Reply::Error { id, code: ErrorCode::Engine }
                }
            },
            Request::Del { key, .. } => match cache.delete(key, start) {
                Ok((existed, done)) => {
                    clock = done;
                    Reply::Deleted { id, existed }
                }
                Err(_) => {
                    ServerStats::bump(&stats.engine_errors);
                    Reply::Error { id, code: ErrorCode::Engine }
                }
            },
        };
        emit(EventKind::RequestDone, clock, id, (clock - start).as_nanos());
        conn.send(&reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_is_stable_and_spread() {
        let h1 = shard_hash(b"obj-00000001");
        assert_eq!(h1, shard_hash(b"obj-00000001"), "routing must be deterministic");
        // 1000 distinct keys over 4 shards: no shard may be empty.
        let mut counts = [0u32; 4];
        for i in 0..1000u32 {
            let key = format!("obj-{i:08}");
            counts[(shard_hash(key.as_bytes()) % 4) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed routing: {counts:?}");
    }
}
