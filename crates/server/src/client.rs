//! A small synchronous client: one-shot RPC calls plus raw pipelined
//! send/receive for the open-loop bench driver.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::Path;

use bytes::Bytes;

use crate::conn::Stream;
use crate::wire::{
    append_request_frame, decode_reply, read_frame, Reply, Request, WireError,
};

/// Read-side buffer: large enough that a server's coalesced reply batch
/// usually drains in one syscall.
const READ_BUF: usize = 64 * 1024;

/// A connected client over either transport.
///
/// The simple [`Client::get`]/[`Client::set`]/[`Client::del`] calls are
/// strict request-reply. For pipelining, use [`Client::send`] /
/// [`Client::recv`] directly (ids correlate replies), or — to batch
/// several requests into one write syscall — [`Client::send_buffered`]
/// followed by one [`Client::flush`]. [`Client::try_split`] separates
/// the two halves for driving from different threads; that is what the
/// open-loop bench does, so send pacing never waits on reply draining.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    next_id: u64,
    wbuf: Vec<u8>,
}

/// The send half of a split [`Client`].
pub struct ClientSender {
    writer: Stream,
    wbuf: Vec<u8>,
}

/// The receive half of a split [`Client`].
pub struct ClientReceiver {
    reader: BufReader<Stream>,
}

fn decode_io(payload: Result<Option<Vec<u8>>, io::Error>) -> io::Result<Reply> {
    let payload = payload?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
    })?;
    decode_reply(&payload)
        .map_err(|e: WireError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect_tcp(addr: SocketAddr) -> io::Result<Client> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        let r = Stream::Tcp(s.try_clone()?);
        Ok(Client::new(r, Stream::Tcp(s)))
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        let s = UnixStream::connect(path)?;
        let r = Stream::Unix(s.try_clone()?);
        Ok(Client::new(r, Stream::Unix(s)))
    }

    fn new(reader: Stream, writer: Stream) -> Client {
        Client {
            reader: BufReader::with_capacity(READ_BUF, reader),
            writer,
            next_id: 1,
            wbuf: Vec::new(),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one request without waiting for its reply (pipelining).
    /// Flushes, so the request is on the wire when this returns.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.send_buffered(req);
        self.flush()
    }

    /// Appends one request frame to the send buffer without writing.
    /// Pair with [`Client::flush`] to put a whole batch on the wire in
    /// one syscall.
    pub fn send_buffered(&mut self, req: &Request) {
        append_request_frame(req, &mut self.wbuf);
    }

    /// Writes every buffered frame with one syscall.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.wbuf.is_empty() {
            return Ok(());
        }
        self.writer.write_all(&self.wbuf)?;
        self.wbuf.clear();
        self.writer.flush()
    }

    /// Receives the next reply frame, in whatever order the shards
    /// finished (match by [`Reply::id`]).
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closed; `InvalidData` on an
    /// undecodable reply; any transport error.
    pub fn recv(&mut self) -> io::Result<Reply> {
        decode_io(read_frame(&mut self.reader))
    }

    fn rpc(&mut self, req: Request) -> io::Result<Reply> {
        self.send(&req)?;
        self.recv()
    }

    /// Looks up `key`. `Ok(Some(value))` on a hit, `Ok(None)` on a miss.
    ///
    /// # Errors
    ///
    /// `WouldBlock` on a BUSY shed; `Other` on a typed server error; any
    /// transport error.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Bytes>> {
        let id = self.fresh_id();
        match self.rpc(Request::Get { id, key: key.to_vec() })? {
            Reply::Value { value, .. } => Ok(Some(value)),
            Reply::NotFound { .. } => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// Inserts `key` → `value`.
    ///
    /// # Errors
    ///
    /// `WouldBlock` on a BUSY shed; `Other` on a typed server error; any
    /// transport error.
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        let id = self.fresh_id();
        match self.rpc(Request::Set { id, key: key.to_vec(), value: value.to_vec() })? {
            Reply::Stored { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Removes `key`; returns whether it existed.
    ///
    /// # Errors
    ///
    /// `WouldBlock` on a BUSY shed; `Other` on a typed server error; any
    /// transport error.
    pub fn del(&mut self, key: &[u8]) -> io::Result<bool> {
        let id = self.fresh_id();
        match self.rpc(Request::Del { id, key: key.to_vec() })? {
            Reply::Deleted { existed, .. } => Ok(existed),
            other => Err(unexpected(&other)),
        }
    }

    /// Splits into independent send/receive halves (separate stream
    /// clones), for pipelining across threads.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `try_clone` failure.
    pub fn try_split(self) -> io::Result<(ClientSender, ClientReceiver)> {
        Ok((
            ClientSender { writer: self.writer, wbuf: self.wbuf },
            ClientReceiver { reader: self.reader },
        ))
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    match reply {
        Reply::Busy { .. } => {
            io::Error::new(io::ErrorKind::WouldBlock, "server shed the request (BUSY)")
        }
        other => io::Error::other(format!("unexpected reply {other:?}")),
    }
}

impl ClientSender {
    /// Sends one request frame and flushes.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.send_buffered(req);
        self.flush()
    }

    /// Appends one request frame to the send buffer without writing;
    /// pair with [`ClientSender::flush`].
    pub fn send_buffered(&mut self, req: &Request) {
        append_request_frame(req, &mut self.wbuf);
    }

    /// Bytes currently buffered and not yet written.
    pub fn buffered(&self) -> usize {
        self.wbuf.len()
    }

    /// Writes every buffered frame with one syscall.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.wbuf.is_empty() {
            return Ok(());
        }
        self.writer.write_all(&self.wbuf)?;
        self.wbuf.clear();
        self.writer.flush()
    }
}

impl ClientReceiver {
    /// Receives the next reply frame.
    ///
    /// # Errors
    ///
    /// As [`Client::recv`].
    pub fn recv(&mut self) -> io::Result<Reply> {
        decode_io(read_frame(&mut self.reader))
    }
}
