//! The cache as a server.
//!
//! Everything below this crate — the four cache schemes, the simulated
//! devices, the concurrent engine — runs in-process and is exercised by
//! closed-loop drivers (`crates/bench`). This crate puts a network
//! frontend on the engine so it can be measured the way a persistent
//! cache is actually deployed: remote clients, an *open-loop* arrival
//! process, and overload that must be shed rather than absorbed.
//!
//! Three layers:
//!
//! * [`wire`] — a length-prefixed binary protocol (GET/SET/DEL) with
//!   client correlation ids, so any number of requests can be pipelined
//!   on one connection. Frame lengths are validated before allocation.
//! * [`CacheServer`] — TCP and/or Unix-socket listeners, one reader
//!   thread per connection, and a pool of per-shard command loops over
//!   the shared [`zns_cache::LogCache`]. Shard queues are *bounded*:
//!   when one fills, the frontend answers with a typed
//!   [`wire::Reply::Busy`] instead of queueing without bound, and above
//!   a soft watermark SETs additionally pass the engine's admission
//!   policy ([`zns_cache::Admission`]) — overload sheds writes first,
//!   because under pressure serving hits is worth more than absorbing
//!   writes the cache may evict unread.
//! * [`Client`] — a small synchronous client with one-shot RPCs and a
//!   split pipelined mode, used by the open-loop latency bench.
//!
//! The data path is *batched end to end*: each connection reader drains
//! its socket once per cycle and decodes every complete frame that
//! arrived (borrowed, zero-copy, via [`wire::RequestRef`]), bins the
//! decoded jobs per shard, and hands each bin to its shard as one
//! channel operation. Each shard drains whole batches, executes them,
//! and coalesces the replies it owes each connection into one
//! pre-encoded buffer flushed with one locked write. GET hits carry the
//! engine's refcounted value straight into the encoder. The per-stage
//! amortization (frames per read, jobs per dispatch, replies per flush)
//! and the copy/alloc discipline are all measured in
//! [`ServerStatsSnapshot`].
//!
//! Request-scoped trace spans: the frontend and shards emit
//! `RequestArrive` → `RequestShardEnqueue` → `RequestEngineStart` →
//! `RequestDone` (or `RequestShed`) through [`sim::trace`], keyed by the
//! client correlation id, so one request's life can be stitched to the
//! zone writes and GC events the engine emits underneath it.

mod conn;
mod shard;
mod stats;

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientReceiver, ClientSender};
pub use server::{BindAddr, CacheServer, ServerConfig};
pub use stats::{BatchStat, BatchStatSnapshot, ServerStats, ServerStatsSnapshot, BATCH_BUCKETS};
