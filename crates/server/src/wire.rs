//! The length-prefixed wire protocol.
//!
//! Every message is one *frame*: a 4-byte little-endian payload length
//! followed by that many payload bytes. Lengths are validated before any
//! allocation ([`MAX_FRAME_LEN`]), so a hostile or corrupt peer cannot
//! make the server reserve gigabytes off one header.
//!
//! Request payload layout (all integers little-endian):
//!
//! ```text
//! op: u8 | id: u64 | key_len: u16 | key bytes | value_len: u32 | value bytes
//! ```
//!
//! `op` is 1 = GET, 2 = SET, 3 = DEL; `value_len` must be zero for GET
//! and DEL. `id` is an opaque client-chosen correlation id: replies carry
//! it back, which is what makes **pipelining** work — a client may keep
//! any number of requests in flight on one connection and match replies
//! by id, in whatever order the shards finish them.
//!
//! Reply payload layout:
//!
//! ```text
//! status: u8 | id: u64 | body_len: u32 | body bytes
//! ```
//!
//! | status | meaning | body |
//! |--------|--------------------------------------|---------------------|
//! | 1      | `Value` — GET hit                    | the object          |
//! | 2      | `NotFound` — GET miss                | empty               |
//! | 3      | `Stored` — SET accepted              | empty               |
//! | 4      | `Deleted` — DEL processed            | 1 byte: 1 = existed |
//! | 5      | `Busy` — request shed under overload | empty               |
//! | 6      | `Error`                              | 1 byte error code   |
//!
//! `Busy` is a *typed* reply, not a closed connection: an overloaded
//! server answers cheaply and stays up, and a well-behaved client backs
//! off. Malformed frames (bad opcode, length lies, oversized values) get
//! an `Error` reply with [`ErrorCode::Protocol`] and then the connection
//! is closed — once framing is in doubt, resynchronization is hopeless.

use std::io::{self, Read, Write};
use std::ops::Range;

use bytes::Bytes;

/// Longest accepted key (the engine's keys are small identifiers).
pub const MAX_KEY_LEN: usize = 1024;
/// Longest accepted value (1 MiB — the workload ceiling in ROADMAP's
/// size-class plans).
pub const MAX_VALUE_LEN: usize = 1 << 20;
/// Longest legal frame payload: an encoded SET at the key/value ceilings.
pub const MAX_FRAME_LEN: usize = 1 + 8 + 2 + MAX_KEY_LEN + 4 + MAX_VALUE_LEN;

/// Why a payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Payload ended before the advertised field lengths were satisfied.
    Truncated,
    /// Unknown request opcode.
    BadOpcode(u8),
    /// Unknown reply status byte.
    BadStatus(u8),
    /// Key length over [`MAX_KEY_LEN`].
    KeyTooLong(usize),
    /// Value length over [`MAX_VALUE_LEN`].
    ValueTooLong(usize),
    /// A GET/DEL carried a value, or a reply body had the wrong length.
    BadBody,
    /// Payload had bytes left over after the last field.
    TrailingBytes,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            WireError::BadStatus(s) => write!(f, "unknown reply status {s}"),
            WireError::KeyTooLong(n) => write!(f, "key of {n} bytes exceeds {MAX_KEY_LEN}"),
            WireError::ValueTooLong(n) => write!(f, "value of {n} bytes exceeds {MAX_VALUE_LEN}"),
            WireError::BadBody => write!(f, "body length inconsistent with message type"),
            WireError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// Typed error codes carried by [`Reply::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame or payload violated the protocol; connection closes.
    Protocol = 1,
    /// The engine returned a [`zns_cache::CacheError`].
    Engine = 2,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::Protocol),
            2 => Some(ErrorCode::Engine),
            _ => None,
        }
    }
}

/// One decoded request whose key/value still *borrow* the buffer they
/// were read from.
///
/// The server's read-drain loop decodes every complete frame in its read
/// buffer into these before copying anything: routing, the soft-overload
/// admission decision, and shedding all happen on borrowed slices, so a
/// shed request costs zero copies. Only requests actually admitted to a
/// shard queue pay [`RequestRef::to_owned`] (the one copy out of the
/// reusable read buffer, counted in the `bytes_copied` stat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestRef<'a> {
    /// Look up `key`.
    Get {
        /// Client correlation id, echoed in the reply.
        id: u64,
        /// Object key, borrowed from the read buffer.
        key: &'a [u8],
    },
    /// Insert `key` → `value`.
    Set {
        /// Client correlation id, echoed in the reply.
        id: u64,
        /// Object key, borrowed from the read buffer.
        key: &'a [u8],
        /// Object value, borrowed from the read buffer.
        value: &'a [u8],
    },
    /// Remove `key`.
    Del {
        /// Client correlation id, echoed in the reply.
        id: u64,
        /// Object key, borrowed from the read buffer.
        key: &'a [u8],
    },
}

impl RequestRef<'_> {
    /// The client correlation id.
    pub fn id(&self) -> u64 {
        match self {
            RequestRef::Get { id, .. } | RequestRef::Set { id, .. } | RequestRef::Del { id, .. } => {
                *id
            }
        }
    }

    /// The key this request addresses (shard routing input).
    pub fn key(&self) -> &[u8] {
        match self {
            RequestRef::Get { key, .. }
            | RequestRef::Set { key, .. }
            | RequestRef::Del { key, .. } => key,
        }
    }

    /// Bytes [`RequestRef::to_owned`] will copy out of the read buffer.
    pub fn owned_len(&self) -> usize {
        match self {
            RequestRef::Get { key, .. } | RequestRef::Del { key, .. } => key.len(),
            RequestRef::Set { key, value, .. } => key.len() + value.len(),
        }
    }

    /// Copies the borrowed slices into an owned [`Request`] — the
    /// dispatch boundary, where a request outlives the read buffer.
    pub fn to_owned(&self) -> Request {
        match *self {
            RequestRef::Get { id, key } => Request::Get { id, key: key.to_vec() },
            RequestRef::Set { id, key, value } => {
                Request::Set { id, key: key.to_vec(), value: value.to_vec() }
            }
            RequestRef::Del { id, key } => Request::Del { id, key: key.to_vec() },
        }
    }
}

/// One decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up `key`.
    Get {
        /// Client correlation id, echoed in the reply.
        id: u64,
        /// Object key.
        key: Vec<u8>,
    },
    /// Insert `key` → `value`.
    Set {
        /// Client correlation id, echoed in the reply.
        id: u64,
        /// Object key.
        key: Vec<u8>,
        /// Object value.
        value: Vec<u8>,
    },
    /// Remove `key`.
    Del {
        /// Client correlation id, echoed in the reply.
        id: u64,
        /// Object key.
        key: Vec<u8>,
    },
}

impl Request {
    /// The client correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Get { id, .. } | Request::Set { id, .. } | Request::Del { id, .. } => *id,
        }
    }

    /// The key this request addresses (shard routing input).
    pub fn key(&self) -> &[u8] {
        match self {
            Request::Get { key, .. } | Request::Set { key, .. } | Request::Del { key, .. } => key,
        }
    }

    /// Wire opcode (1 = GET, 2 = SET, 3 = DEL), also the trace payload.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Get { .. } => 1,
            Request::Set { .. } => 2,
            Request::Del { .. } => 3,
        }
    }
}

/// One server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// GET hit.
    Value {
        /// Echoed correlation id.
        id: u64,
        /// The cached object. A refcounted [`Bytes`]: on the server this
        /// is the engine's own buffer carried into the encoder without an
        /// intermediate `to_vec`, so a GET hit's value is copied exactly
        /// once on the reply path (into the coalesced write buffer).
        value: Bytes,
    },
    /// GET miss.
    NotFound {
        /// Echoed correlation id.
        id: u64,
    },
    /// SET accepted (admission may still decline flash residency; the
    /// cache contract is best-effort either way).
    Stored {
        /// Echoed correlation id.
        id: u64,
    },
    /// DEL processed.
    Deleted {
        /// Echoed correlation id.
        id: u64,
        /// Whether an entry existed and was removed.
        existed: bool,
    },
    /// Shed under overload: the shard queue was full (or set-shedding
    /// engaged). Retry with backoff.
    Busy {
        /// Echoed correlation id.
        id: u64,
    },
    /// The request failed.
    Error {
        /// Echoed correlation id (0 when the request never decoded).
        id: u64,
        /// What went wrong.
        code: ErrorCode,
    },
}

impl Reply {
    /// The echoed correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Reply::Value { id, .. }
            | Reply::NotFound { id }
            | Reply::Stored { id }
            | Reply::Deleted { id, .. }
            | Reply::Busy { id }
            | Reply::Error { id, .. } => *id,
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a payload with typed little-endian reads.
struct Take<'a> {
    buf: &'a [u8],
}

impl<'a> Take<'a> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let (&b, rest) = self.buf.split_first().ok_or(WireError::Truncated)?;
        self.buf = rest;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2-byte slice")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8-byte slice")))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Encodes a request payload (no frame length prefix) into `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    out.clear();
    append_request_payload(req, out);
}

fn append_request_payload(req: &Request, out: &mut Vec<u8>) {
    let (key, value): (&[u8], &[u8]) = match req {
        Request::Get { key, .. } | Request::Del { key, .. } => (key, &[]),
        Request::Set { key, value, .. } => (key, value),
    };
    out.push(req.opcode());
    put_u64(out, req.id());
    put_u16(out, key.len() as u16);
    out.extend_from_slice(key);
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value);
}

/// Appends one complete request *frame* (4-byte length prefix +
/// payload) to `out`, encoding in place: the prefix slot is reserved up
/// front and patched once the payload length is known — no intermediate
/// payload buffer. The client's buffered/pipelined send path.
pub fn append_request_frame(req: &Request, out: &mut Vec<u8>) {
    let prefix = out.len();
    out.extend_from_slice(&[0u8; 4]);
    append_request_payload(req, out);
    let len = (out.len() - prefix - 4) as u32;
    out[prefix..prefix + 4].copy_from_slice(&len.to_le_bytes());
}

/// Decodes a request payload into borrowed slices — no allocation, no
/// copy. The server's hot path; [`decode_request`] is the owned wrapper.
///
/// # Errors
///
/// Any [`WireError`]: truncation, unknown opcode, oversized key/value, a
/// value on a GET/DEL, or trailing bytes.
pub fn decode_request_ref(payload: &[u8]) -> Result<RequestRef<'_>, WireError> {
    let mut t = Take { buf: payload };
    let op = t.u8()?;
    let id = t.u64()?;
    let key_len = t.u16()? as usize;
    if key_len > MAX_KEY_LEN {
        return Err(WireError::KeyTooLong(key_len));
    }
    let key = t.bytes(key_len)?;
    let value_len = t.u32()? as usize;
    if value_len > MAX_VALUE_LEN {
        return Err(WireError::ValueTooLong(value_len));
    }
    let value = t.bytes(value_len)?;
    t.finish()?;
    match op {
        1 | 3 if !value.is_empty() => Err(WireError::BadBody),
        1 => Ok(RequestRef::Get { id, key }),
        2 => Ok(RequestRef::Set { id, key, value }),
        3 => Ok(RequestRef::Del { id, key }),
        op => Err(WireError::BadOpcode(op)),
    }
}

/// Decodes a request payload into owned buffers.
///
/// # Errors
///
/// As [`decode_request_ref`].
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    decode_request_ref(payload).map(|r| r.to_owned())
}

/// Encodes a reply payload (no frame length prefix) into `out`.
pub fn encode_reply(reply: &Reply, out: &mut Vec<u8>) {
    out.clear();
    append_reply_payload(reply, out);
}

fn append_reply_payload(reply: &Reply, out: &mut Vec<u8>) {
    let (status, body): (u8, &[u8]) = match reply {
        Reply::Value { value, .. } => (1, value),
        Reply::NotFound { .. } => (2, &[]),
        Reply::Stored { .. } => (3, &[]),
        Reply::Deleted { existed, .. } => (4, if *existed { &[1] } else { &[0] }),
        Reply::Busy { .. } => (5, &[]),
        Reply::Error { code, .. } => (6, match code {
            ErrorCode::Protocol => &[1],
            ErrorCode::Engine => &[2],
        }),
    };
    out.push(status);
    put_u64(out, reply.id());
    put_u32(out, body.len() as u32);
    out.extend_from_slice(body);
}

/// Appends one complete reply *frame* (4-byte length prefix + payload)
/// to `out`, encoding in place with the prefix patched afterwards. The
/// server's coalescing path: shards append every reply owed to one
/// connection into one reusable buffer and flush it with one locked
/// write — no per-reply `payload` + `frame` Vec pair.
pub fn append_reply_frame(reply: &Reply, out: &mut Vec<u8>) {
    let prefix = out.len();
    out.extend_from_slice(&[0u8; 4]);
    append_reply_payload(reply, out);
    let len = (out.len() - prefix - 4) as u32;
    out[prefix..prefix + 4].copy_from_slice(&len.to_le_bytes());
}

/// Scan outcome of [`split_frame`] over a partially-filled read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameSplit {
    /// The buffer holds no complete frame yet — read more first.
    Incomplete,
    /// One complete frame: its payload occupies `payload` within the
    /// scanned slice, and `advance` bytes (prefix + payload) are
    /// consumed.
    Frame {
        /// Payload bounds within the scanned slice.
        payload: Range<usize>,
        /// Total bytes this frame occupies (4-byte prefix + payload).
        advance: usize,
    },
}

/// Finds the next complete frame in `buf` without copying. The
/// read-drain loop calls this repeatedly after one `read` syscall to
/// decode *every* complete frame the read delivered.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when the advertised length exceeds
/// [`MAX_FRAME_LEN`] — checked from the prefix alone, before any
/// buffering decision it would otherwise distort.
pub fn split_frame(buf: &[u8]) -> io::Result<FrameSplit> {
    if buf.len() < 4 {
        return Ok(FrameSplit::Incomplete);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4-byte slice")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds {MAX_FRAME_LEN}"),
        ));
    }
    if buf.len() < 4 + len {
        return Ok(FrameSplit::Incomplete);
    }
    Ok(FrameSplit::Frame { payload: 4..4 + len, advance: 4 + len })
}

/// Decodes a reply payload.
///
/// # Errors
///
/// Any [`WireError`]: truncation, unknown status, a body whose length
/// does not fit the status, or trailing bytes.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, WireError> {
    let mut t = Take { buf: payload };
    let status = t.u8()?;
    let id = t.u64()?;
    let body_len = t.u32()? as usize;
    if body_len > MAX_VALUE_LEN {
        return Err(WireError::ValueTooLong(body_len));
    }
    let body = t.bytes(body_len)?;
    let reply = match (status, body.len()) {
        (1, _) => Reply::Value { id, value: Bytes::copy_from_slice(body) },
        (2, 0) => Reply::NotFound { id },
        (3, 0) => Reply::Stored { id },
        (4, 1) => Reply::Deleted { id, existed: body[0] != 0 },
        (5, 0) => Reply::Busy { id },
        (6, 1) => Reply::Error {
            id,
            code: ErrorCode::from_u8(body[0]).ok_or(WireError::BadBody)?,
        },
        (1..=6, _) => return Err(WireError::BadBody),
        (s, _) => return Err(WireError::BadStatus(s)),
    };
    t.finish()?;
    Ok(reply)
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed between requests).
///
/// # Errors
///
/// * [`io::ErrorKind::InvalidData`] when the advertised length exceeds
///   [`MAX_FRAME_LEN`] — a protocol violation, checked before the
///   allocation it would otherwise force.
/// * [`io::ErrorKind::UnexpectedEof`] when the peer disconnected in the
///   middle of a frame (mid-request disconnect).
/// * Any underlying transport error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before any length byte is a normal connection close;
    // EOF after a partial length is a mid-frame disconnect.
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame length")),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(decode_request(&buf).expect("decode"), req);
    }

    fn round_trip_reply(reply: Reply) {
        let mut buf = Vec::new();
        encode_reply(&reply, &mut buf);
        assert_eq!(decode_reply(&buf).expect("decode"), reply);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Get { id: 7, key: b"obj-1".to_vec() });
        round_trip_request(Request::Set {
            id: u64::MAX,
            key: b"k".to_vec(),
            value: vec![0xA5; 4096],
        });
        round_trip_request(Request::Del { id: 0, key: vec![0xFF; MAX_KEY_LEN] });
    }

    #[test]
    fn replies_round_trip() {
        round_trip_reply(Reply::Value { id: 1, value: Bytes::copy_from_slice(&[9; 100]) });
        round_trip_reply(Reply::Value { id: 2, value: Bytes::new() });
        round_trip_reply(Reply::NotFound { id: 3 });
        round_trip_reply(Reply::Stored { id: 4 });
        round_trip_reply(Reply::Deleted { id: 5, existed: true });
        round_trip_reply(Reply::Deleted { id: 6, existed: false });
        round_trip_reply(Reply::Busy { id: 7 });
        round_trip_reply(Reply::Error { id: 8, code: ErrorCode::Protocol });
        round_trip_reply(Reply::Error { id: 9, code: ErrorCode::Engine });
    }

    #[test]
    fn value_replies_round_trip_at_the_size_extremes() {
        // The refcounted-value plumbing must survive both degenerate
        // sizes: a zero-length object and one at the protocol ceiling.
        round_trip_reply(Reply::Value { id: 1, value: Bytes::new() });
        round_trip_reply(Reply::Value {
            id: 2,
            value: Bytes::from(vec![0x5A; MAX_VALUE_LEN]),
        });
        round_trip_request(Request::Set { id: 3, key: b"k".to_vec(), value: Vec::new() });
        round_trip_request(Request::Set {
            id: 4,
            key: b"k".to_vec(),
            value: vec![0xA5; MAX_VALUE_LEN],
        });
    }

    #[test]
    fn borrowed_decode_matches_owned_and_copies_nothing() {
        let mut buf = Vec::new();
        let req = Request::Set { id: 9, key: b"key".to_vec(), value: vec![7; 64] };
        encode_request(&req, &mut buf);
        let r = decode_request_ref(&buf).expect("decode");
        // The borrowed slices must point back into the payload buffer.
        let RequestRef::Set { id, key, value } = r else {
            panic!("wrong variant {r:?}")
        };
        assert_eq!(id, 9);
        assert!(buf.as_ptr_range().contains(&key.as_ptr()));
        assert!(buf.as_ptr_range().contains(&value.as_ptr()));
        assert_eq!(r.owned_len(), 3 + 64);
        assert_eq!(r.to_owned(), req);
    }

    #[test]
    fn append_frames_round_trip_through_split() {
        // Three frames appended in place into one buffer must split back
        // out one by one, each decodable, with nothing left over.
        let mut out = Vec::new();
        let reqs = [
            Request::Get { id: 1, key: b"a".to_vec() },
            Request::Set { id: 2, key: b"b".to_vec(), value: vec![3; 300] },
            Request::Del { id: 3, key: b"c".to_vec() },
        ];
        for r in &reqs {
            append_request_frame(r, &mut out);
        }
        let mut at = 0;
        for want in &reqs {
            let FrameSplit::Frame { payload, advance } = split_frame(&out[at..]).unwrap() else {
                panic!("expected a complete frame")
            };
            let got = decode_request(&out[at..][payload]).expect("decode");
            assert_eq!(&got, want);
            at += advance;
        }
        assert_eq!(at, out.len());
        assert_eq!(split_frame(&out[at..]).unwrap(), FrameSplit::Incomplete);

        // Reply frames take the same in-place path.
        let mut out = Vec::new();
        let reply = Reply::Value { id: 5, value: Bytes::copy_from_slice(b"xyz") };
        append_reply_frame(&reply, &mut out);
        let FrameSplit::Frame { payload, advance } = split_frame(&out).unwrap() else {
            panic!("expected a complete frame")
        };
        assert_eq!(advance, out.len());
        assert_eq!(decode_reply(&out[payload]).unwrap(), reply);
    }

    #[test]
    fn split_frame_is_incomplete_on_partial_and_rejects_oversize() {
        let mut out = Vec::new();
        append_request_frame(&Request::Get { id: 1, key: b"key".to_vec() }, &mut out);
        for cut in 0..out.len() {
            assert_eq!(
                split_frame(&out[..cut]).unwrap(),
                FrameSplit::Incomplete,
                "cut at {cut}"
            );
        }
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        assert_eq!(
            split_frame(&huge).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn bad_opcode_rejected() {
        let mut buf = Vec::new();
        encode_request(&Request::Get { id: 1, key: b"k".to_vec() }, &mut buf);
        buf[0] = 99;
        assert_eq!(decode_request(&buf), Err(WireError::BadOpcode(99)));
    }

    #[test]
    fn value_on_get_rejected() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Set { id: 1, key: b"k".to_vec(), value: b"v".to_vec() },
            &mut buf,
        );
        buf[0] = 1; // rewrite opcode SET -> GET, leaving the value in place
        assert_eq!(decode_request(&buf), Err(WireError::BadBody));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Set { id: 1, key: b"key".to_vec(), value: vec![1; 64] },
            &mut buf,
        );
        for cut in [0, 1, 5, 9, 12, buf.len() - 1] {
            assert_eq!(
                decode_request(&buf[..cut]),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        encode_request(&Request::Get { id: 1, key: b"k".to_vec() }, &mut buf);
        buf.push(0);
        assert_eq!(decode_request(&buf), Err(WireError::TrailingBytes));
    }

    #[test]
    fn oversized_value_length_rejected_without_allocation() {
        // A SET header whose value_len field lies about a huge body: the
        // decoder must reject on the length field itself.
        let mut buf = Vec::new();
        buf.push(2);
        put_u64(&mut buf, 1);
        put_u16(&mut buf, 1);
        buf.push(b'k');
        put_u32(&mut buf, (MAX_VALUE_LEN + 1) as u32);
        assert_eq!(
            decode_request(&buf),
            Err(WireError::ValueTooLong(MAX_VALUE_LEN + 1))
        );
    }

    #[test]
    fn oversized_key_length_rejected() {
        let mut buf = Vec::new();
        buf.push(1);
        put_u64(&mut buf, 1);
        put_u16(&mut buf, (MAX_KEY_LEN + 1) as u16);
        assert_eq!(
            decode_request(&buf),
            Err(WireError::KeyTooLong(MAX_KEY_LEN + 1))
        );
    }

    #[test]
    fn frame_round_trip_and_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn oversized_frame_length_is_invalid_data() {
        let wire = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        let mut r = &wire[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn mid_frame_eof_is_unexpected_eof() {
        // Length promises 10 bytes; only 3 arrive before the peer hangs up.
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        let mut r = &wire[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // EOF inside the length prefix itself is also mid-frame.
        let wire = [1u8, 0];
        let mut r = &wire[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
