//! The block cache: DRAM LRU with a RocksDB-style secondary cache.
//!
//! Lookup order is DRAM → secondary (flash) → device, and DRAM evictions
//! are demoted into the secondary cache — RocksDB's `SecondaryCache`
//! contract, which the paper uses to put CacheLib under the database
//! (§4.2). Any of the four schemes plugs in through [`NavySecondary`].

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim::{Counter, Nanos};
use zns_cache::dram::{DramCache, DramEntry};
use zns_cache::LogCache;

use crate::types::DbError;

/// A flash tier beneath the DRAM block cache.
pub trait SecondaryCache: Send + Sync {
    /// Looks up a block by cache key.
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    fn get(&self, key: &[u8], now: Nanos) -> Result<(Option<Bytes>, Nanos), DbError>;

    /// Inserts a block demoted from DRAM.
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    fn insert(&self, key: &[u8], value: &[u8], now: Nanos) -> Result<Nanos, DbError>;
}

/// Adapter exposing a [`LogCache`] (any scheme) as a secondary cache.
pub struct NavySecondary {
    cache: Arc<LogCache>,
}

impl NavySecondary {
    /// Wraps a cache engine.
    pub fn new(cache: Arc<LogCache>) -> Self {
        NavySecondary { cache }
    }

    /// The wrapped engine (for metrics).
    pub fn engine(&self) -> &Arc<LogCache> {
        &self.cache
    }
}

impl SecondaryCache for NavySecondary {
    fn get(&self, key: &[u8], now: Nanos) -> Result<(Option<Bytes>, Nanos), DbError> {
        Ok(self.cache.get(key, now)?)
    }

    fn insert(&self, key: &[u8], value: &[u8], now: Nanos) -> Result<Nanos, DbError> {
        Ok(self.cache.set(key, value, now)?)
    }
}

/// Block-cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCacheStatsSnapshot {
    /// Served from DRAM.
    pub dram_hits: u64,
    /// Served from the secondary (flash) tier.
    pub secondary_hits: u64,
    /// Paid a device read.
    pub misses: u64,
}

impl BlockCacheStatsSnapshot {
    /// Hit ratio over both tiers.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.dram_hits + self.secondary_hits + self.misses;
        if total == 0 {
            1.0
        } else {
            (self.dram_hits + self.secondary_hits) as f64 / total as f64
        }
    }
}

/// DRAM LRU over data blocks with optional secondary tier.
pub struct BlockCache {
    dram: Mutex<DramCache>,
    secondary: Option<Arc<dyn SecondaryCache>>,
    dram_hit_cost: Nanos,
    dram_hits: Counter,
    secondary_hits: Counter,
    misses: Counter,
}

fn block_key(table: u64, block: u32) -> [u8; 12] {
    let mut key = [0u8; 12];
    key[..8].copy_from_slice(&table.to_le_bytes());
    key[8..].copy_from_slice(&block.to_le_bytes());
    key
}

fn block_hash(key: &[u8]) -> u64 {
    zns_cache::types::hash_key(key)
}

impl BlockCache {
    /// Creates a cache with `dram_bytes` of primary capacity and an
    /// optional secondary tier.
    pub fn new(dram_bytes: usize, secondary: Option<Arc<dyn SecondaryCache>>) -> Self {
        BlockCache {
            dram: Mutex::new(DramCache::new(dram_bytes)),
            secondary,
            dram_hit_cost: Nanos::from_nanos(400),
            dram_hits: Counter::new(),
            secondary_hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> BlockCacheStatsSnapshot {
        BlockCacheStatsSnapshot {
            dram_hits: self.dram_hits.get(),
            secondary_hits: self.secondary_hits.get(),
            misses: self.misses.get(),
        }
    }

    /// Fetches a block through the tiers. `fetch` performs the device read
    /// on a full miss.
    ///
    /// # Errors
    ///
    /// Propagates secondary-cache and device failures.
    pub fn get_block<F>(
        &self,
        table: u64,
        block: u32,
        now: Nanos,
        fetch: F,
    ) -> Result<(Bytes, Nanos), DbError>
    where
        F: FnOnce(Nanos) -> Result<(Bytes, Nanos), DbError>,
    {
        let key = block_key(table, block);
        let hash = block_hash(&key);
        // The secondary tier is keyed by the 64-bit block hash so demoted
        // entries (which only know their hash) and lookups agree.
        let skey = hash.to_le_bytes();
        // Tier 1: DRAM.
        if let Some(v) = self.dram.lock().get(hash, &skey, now) {
            self.dram_hits.incr();
            return Ok((v, now + self.dram_hit_cost));
        }
        // Tier 2: secondary (flash).
        if let Some(secondary) = &self.secondary {
            let (found, t) = secondary.get(&skey, now)?;
            if let Some(v) = found {
                self.secondary_hits.incr();
                let t = self.admit(hash, v.clone(), t)?;
                return Ok((v, t));
            }
            // Fall through to the device at time t (the flash lookup was
            // on the critical path, as in RocksDB).
            let (v, t) = fetch(t)?;
            self.misses.incr();
            let t = self.admit(hash, v.clone(), t)?;
            return Ok((v, t));
        }
        // No secondary tier.
        let (v, t) = fetch(now)?;
        self.misses.incr();
        let t = self.admit(hash, v.clone(), t)?;
        Ok((v, t))
    }

    /// Inserts into DRAM, demoting evictions to the secondary tier.
    fn admit(&self, hash: u64, value: Bytes, now: Nanos) -> Result<Nanos, DbError> {
        // Entries are keyed by their hash bytes (blocks never expire), the
        // same key the secondary tier uses, so lookups and demotions agree.
        let entry = DramEntry {
            key: Bytes::copy_from_slice(&hash.to_le_bytes()),
            value,
            expiry: Nanos::MAX,
            accessed: false,
        };
        // `None` (block larger than the tier) admits and demotes nothing.
        let evicted = self.dram.lock().insert(hash, entry).unwrap_or_default();
        let mut t = now;
        if let Some(secondary) = &self.secondary {
            for (ehash, e) in evicted {
                t = t.max(secondary.insert(&ehash.to_le_bytes(), &e.value, now)?);
            }
        }
        Ok(t)
    }
}

impl core::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BlockCache").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch_const(v: &'static [u8]) -> impl FnOnce(Nanos) -> Result<(Bytes, Nanos), DbError> {
        move |now| Ok((Bytes::from_static(v), now + Nanos::from_micros(100)))
    }

    #[test]
    fn dram_hit_after_miss() {
        let c = BlockCache::new(1 << 20, None);
        let (v1, t1) = c.get_block(1, 0, Nanos::ZERO, fetch_const(b"blk")).unwrap();
        assert_eq!(v1.as_ref(), b"blk");
        let (v2, t2) = c
            .get_block(1, 0, t1, |_| panic!("should not fetch"))
            .unwrap();
        assert_eq!(v2.as_ref(), b"blk");
        assert!(t2 - t1 < Nanos::from_micros(100));
        let s = c.stats();
        assert_eq!((s.misses, s.dram_hits), (1, 1));
    }

    #[test]
    fn distinct_blocks_have_distinct_keys() {
        let c = BlockCache::new(1 << 20, None);
        c.get_block(1, 0, Nanos::ZERO, fetch_const(b"a")).unwrap();
        let (v, _) = c.get_block(1, 1, Nanos::ZERO, fetch_const(b"b")).unwrap();
        assert_eq!(v.as_ref(), b"b");
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn hit_ratio_math() {
        let s = BlockCacheStatsSnapshot {
            dram_hits: 6,
            secondary_hits: 2,
            misses: 2,
        };
        assert!((s.hit_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(BlockCacheStatsSnapshot::default().hit_ratio(), 1.0);
    }

    /// A secondary tier backed by a plain map, for contract tests.
    struct MapSecondary {
        map: Mutex<std::collections::HashMap<Vec<u8>, Bytes>>,
        inserts: Counter,
    }

    impl SecondaryCache for MapSecondary {
        fn get(&self, key: &[u8], now: Nanos) -> Result<(Option<Bytes>, Nanos), DbError> {
            Ok((self.map.lock().get(key).cloned(), now + Nanos::from_micros(10)))
        }

        fn insert(&self, key: &[u8], value: &[u8], now: Nanos) -> Result<Nanos, DbError> {
            self.inserts.incr();
            self.map
                .lock()
                .insert(key.to_vec(), Bytes::copy_from_slice(value));
            Ok(now + Nanos::from_micros(5))
        }
    }

    #[test]
    fn evictions_demote_to_secondary() {
        let secondary = Arc::new(MapSecondary {
            map: Mutex::new(Default::default()),
            inserts: Counter::new(),
        });
        // Tiny DRAM: 1 block at a time (block value is 8 bytes).
        let c = BlockCache::new(8, Some(secondary.clone()));
        c.get_block(1, 0, Nanos::ZERO, fetch_const(b"11111111")).unwrap();
        c.get_block(1, 1, Nanos::ZERO, fetch_const(b"22222222")).unwrap();
        assert!(secondary.inserts.get() >= 1, "no demotion happened");
        // The demoted block is now served by the secondary tier, not the
        // device.
        let (v, _) = c
            .get_block(1, 0, Nanos::ZERO, |_| panic!("device read on secondary hit"))
            .unwrap();
        assert_eq!(v.as_ref(), b"11111111");
        assert_eq!(c.stats().secondary_hits, 1);
    }
}
