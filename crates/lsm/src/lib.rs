//! A miniature LSM-tree key-value store with a RocksDB-style secondary
//! cache hook.
//!
//! The paper's end-to-end evaluation (§4.2) integrates CacheLib into
//! RocksDB as its *secondary cache*: SST data blocks evicted from the DRAM
//! block cache are demoted to flash, and DRAM misses consult flash before
//! paying an HDD read. This crate reproduces that exact dependency chain:
//!
//! * [`Db`] — memtable → L0 → leveled SSTs, flush + compaction,
//! * [`Table`](table::Table) — sorted-string tables with block index and
//!   bloom filter, stored on any [`sim::BlockDevice`] (the experiments use
//!   the `hdd` crate's drive),
//! * [`BlockCache`] — sharded-free DRAM LRU over data blocks with an
//!   optional [`SecondaryCache`]; the provided [`NavySecondary`] adapter
//!   plugs in any `zns-cache` scheme,
//! * db_bench-style drivers ([`bench`](crate::bench)) for `fillrandom` / `readrandom`
//!   with exp-range skew.
//!
//! # Example
//!
//! ```
//! use lsm::{Db, DbConfig};
//! use sim::Nanos;
//! use std::sync::Arc;
//!
//! let db = Db::open(DbConfig::small_test()).unwrap();
//! let t = db.put(b"k", b"v", Nanos::ZERO).unwrap();
//! let (v, _t) = db.get(b"k", t).unwrap();
//! assert_eq!(v.as_deref(), Some(&b"v"[..]));
//! ```

pub mod bench;
pub mod bloom;
pub mod block;
pub mod cache;
pub mod db;
pub mod table;
pub mod types;

pub use cache::{BlockCache, NavySecondary, SecondaryCache};
pub use db::{Db, DbConfig, DbStatsSnapshot};
pub use types::DbError;
