//! Error types for the KV store.

use core::fmt;

/// Errors returned by the database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Storage device failure or exhaustion.
    Storage(String),
    /// Corrupt on-disk structure (bad block, bad footer).
    Corruption(String),
    /// Key or value exceeds format limits.
    TooLarge {
        /// What was too large, e.g. `"key"`.
        what: &'static str,
        /// Its length.
        len: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Storage(msg) => write!(f, "storage error: {msg}"),
            DbError::Corruption(msg) => write!(f, "corruption: {msg}"),
            DbError::TooLarge { what, len } => write!(f, "{what} of {len} bytes too large"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<sim::IoError> for DbError {
    fn from(err: sim::IoError) -> Self {
        DbError::Storage(err.to_string())
    }
}

impl From<zns_cache::CacheError> for DbError {
    fn from(err: zns_cache::CacheError) -> Self {
        DbError::Storage(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(DbError::Corruption("x".into()).to_string().contains('x'));
        let e: DbError = sim::IoError::NoSpace.into();
        assert!(e.to_string().contains("space"));
        assert!(DbError::TooLarge { what: "key", len: 9 }.to_string().contains("key"));
    }
}
