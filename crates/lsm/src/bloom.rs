//! A double-hashing bloom filter for SST key membership.
//!
//! RocksDB attaches a bloom filter per table so point lookups skip tables
//! that cannot contain the key — essential for the readrandom workloads
//! where most tables are irrelevant to any one key.

/// A fixed-size bloom filter built once over a key set.
///
/// # Example
///
/// ```
/// use lsm::bloom::BloomFilter;
///
/// let bloom = BloomFilter::build([b"a".as_slice(), b"b".as_slice()], 10);
/// assert!(bloom.may_contain(b"a"));
/// assert!(!bloom.may_contain(b"definitely-not-here"));
/// ```
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: u64,
    k: u32,
}

fn hash128(key: &[u8]) -> (u64, u64) {
    // FNV-1a in two lanes with different offsets.
    let (mut a, mut b) = (0xcbf2_9ce4_8422_2325u64, 0x6c62_272e_07bb_0142u64);
    for &byte in key {
        a = (a ^ byte as u64).wrapping_mul(0x1_0000_01b3);
        b = (b ^ byte as u64).wrapping_mul(0x1_0000_01b5);
    }
    (a, b | 1) // odd step for full cycle
}

impl BloomFilter {
    /// Builds a filter with `bits_per_key` bits per element (10 gives ~1%
    /// false positives).
    pub fn build<'a>(keys: impl IntoIterator<Item = &'a [u8]>, bits_per_key: u32) -> Self {
        let keys: Vec<&[u8]> = keys.into_iter().collect();
        let nbits = ((keys.len() as u64) * bits_per_key as u64).max(64);
        let k = ((bits_per_key as f64) * 0.69).round().clamp(1.0, 30.0) as u32;
        let mut bits = vec![0u64; nbits.div_ceil(64) as usize];
        let nbits = bits.len() as u64 * 64;
        for key in keys {
            let (h1, h2) = hash128(key);
            for i in 0..k {
                let bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) % nbits;
                bits[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        BloomFilter { bits, nbits, k }
    }

    /// Whether the key might be in the set (no false negatives).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = hash128(key);
        (0..self.k).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.nbits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Size of the filter in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..1000u32).map(|i| format!("key{i}").into_bytes()).collect();
        let bloom = BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10);
        for k in &keys {
            assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let keys: Vec<Vec<u8>> = (0..10_000u32).map(|i| format!("in{i}").into_bytes()).collect();
        let bloom = BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10);
        let fp = (0..10_000u32)
            .filter(|i| bloom.may_contain(format!("out{i}").as_bytes()))
            .count();
        assert!(fp < 300, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn empty_filter_rejects() {
        let bloom = BloomFilter::build(std::iter::empty(), 10);
        assert!(!bloom.may_contain(b"anything"));
    }
}
