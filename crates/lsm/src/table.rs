//! Sorted-string tables and their on-device extent store.
//!
//! Tables are immutable sorted runs: 4 KiB data blocks, an in-memory block
//! index (first key per block), and a bloom filter. Blocks are written
//! sequentially — the HDD-friendly pattern real LSM stores rely on — and
//! read back one block at a time through the block cache.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use sim::{BlockDevice, Lba, Nanos, BLOCK_SIZE};

use crate::block::{block_entries, block_get, BlockBuilder, BLOCK_TARGET};
use crate::bloom::BloomFilter;
use crate::types::DbError;

/// Versioned entries as scans yield them: `(key, value-or-tombstone)`.
pub type TableEntries = Vec<(Bytes, Option<Bytes>)>;

/// A first-fit extent allocator over a block device, shared by all tables.
pub struct TableStore {
    dev: Arc<dyn BlockDevice>,
    /// Sorted free extents (start, len) in blocks.
    free: Mutex<Vec<(u64, u64)>>,
}

impl TableStore {
    /// Takes over an entire device.
    pub fn new(dev: Arc<dyn BlockDevice>) -> Self {
        let blocks = dev.block_count();
        TableStore {
            dev,
            free: Mutex::new(vec![(0, blocks)]),
        }
    }

    /// Allocates `blocks` contiguous blocks (first fit).
    ///
    /// # Errors
    ///
    /// [`DbError::Storage`] when no extent fits.
    pub fn alloc(&self, blocks: u64) -> Result<u64, DbError> {
        let mut free = self.free.lock();
        for i in 0..free.len() {
            let (start, len) = free[i];
            if len >= blocks {
                if len == blocks {
                    free.remove(i);
                } else {
                    free[i] = (start + blocks, len - blocks);
                }
                return Ok(start);
            }
        }
        Err(DbError::Storage(format!(
            "no extent of {blocks} blocks available"
        )))
    }

    /// Returns an extent to the free pool, coalescing neighbours.
    pub fn release(&self, start: u64, blocks: u64) {
        let mut free = self.free.lock();
        let pos = free.partition_point(|&(s, _)| s < start);
        free.insert(pos, (start, blocks));
        // Coalesce around the insertion point.
        if pos + 1 < free.len() && free[pos].0 + free[pos].1 == free[pos + 1].0 {
            free[pos].1 += free[pos + 1].1;
            free.remove(pos + 1);
        }
        if pos > 0 && free[pos - 1].0 + free[pos - 1].1 == free[pos].0 {
            free[pos - 1].1 += free[pos].1;
            free.remove(pos);
        }
    }

    /// Total free blocks.
    pub fn free_blocks(&self) -> u64 {
        self.free.lock().iter().map(|&(_, l)| l).sum()
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.dev
    }
}

impl core::fmt::Debug for TableStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TableStore")
            .field("free_blocks", &self.free_blocks())
            .finish()
    }
}

/// An immutable sorted table on the store.
pub struct Table {
    id: u64,
    store: Arc<TableStore>,
    start_block: u64,
    data_blocks: u32,
    /// First key of each data block.
    index: Vec<Bytes>,
    bloom: BloomFilter,
    first_key: Bytes,
    last_key: Bytes,
    entries: u64,
}

impl core::fmt::Debug for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("blocks", &self.data_blocks)
            .field("entries", &self.entries)
            .finish()
    }
}

impl Table {
    /// Builds a table from entries that MUST be sorted by key with no
    /// duplicates. Returns the table and the write completion time.
    ///
    /// # Errors
    ///
    /// [`DbError::Storage`] on allocation failure; device I/O errors.
    ///
    /// # Panics
    ///
    /// Panics (debug) if entries are unsorted — a compaction bug.
    pub fn build(
        id: u64,
        store: Arc<TableStore>,
        entries: &[(Bytes, Option<Bytes>)],
        bloom_bits_per_key: u32,
        now: Nanos,
    ) -> Result<(Self, Nanos), DbError> {
        assert!(!entries.is_empty(), "cannot build an empty table");
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "table entries must be strictly sorted"
        );
        // Encode data blocks: exactly one 4 KiB device block each (blocks
        // close *before* an entry would overflow, so block index == device
        // block offset). Oversized entries are rejected upstream.
        let mut blocks: Vec<Vec<u8>> = Vec::new();
        let mut index = Vec::new();
        let mut builder = BlockBuilder::new();
        let mut block_first: Option<Bytes> = None;
        for (key, value) in entries {
            let encoded = 6 + key.len() + value.as_ref().map_or(0, |v| v.len());
            assert!(
                encoded + 4 <= BLOCK_TARGET,
                "entry of {encoded} bytes exceeds the block size; enforce limits upstream"
            );
            // +4 for the entry-count prefix finish() adds.
            if !builder.is_empty() && 4 + builder.size() + encoded > BLOCK_TARGET {
                index.push(block_first.take().expect("set at first add"));
                let mut data = builder.finish();
                data.resize(BLOCK_SIZE, 0);
                blocks.push(data);
            }
            if block_first.is_none() {
                block_first = Some(key.clone());
            }
            builder.add(key, value.as_deref());
        }
        if !builder.is_empty() {
            index.push(block_first.take().expect("set at first add"));
            let mut data = builder.finish();
            data.resize(BLOCK_SIZE, 0);
            blocks.push(data);
        }
        let data_device_blocks: u64 = blocks.len() as u64;
        // Metadata footprint (index + bloom), persisted after the data.
        let bloom = BloomFilter::build(entries.iter().map(|(k, _)| k.as_ref()), bloom_bits_per_key);
        let meta_bytes: usize =
            index.iter().map(|k| k.len() + 4).sum::<usize>() + bloom.size_bytes() + 64;
        let meta_device_blocks = meta_bytes.div_ceil(BLOCK_SIZE) as u64;

        let total = data_device_blocks + meta_device_blocks;
        let start = store.alloc(total)?;
        // Sequential write of the whole table.
        let mut t = now;
        let mut lba = start;
        for data in &blocks {
            t = store.dev.write(Lba(lba), data, t)?;
            lba += (data.len() / BLOCK_SIZE) as u64;
        }
        // Metadata blocks (content is reconstructed from memory on open;
        // the write models its I/O cost).
        let meta = vec![0u8; (meta_device_blocks as usize) * BLOCK_SIZE];
        t = store.dev.write(Lba(lba), &meta, t)?;

        Ok((
            Table {
                id,
                store,
                start_block: start,
                data_blocks: blocks.len() as u32,
                index,
                bloom,
                first_key: entries[0].0.clone(),
                last_key: entries[entries.len() - 1].0.clone(),
                entries: entries.len() as u64,
            },
            t,
        ))
    }

    /// Table id (unique per database).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of entries.
    pub fn entry_count(&self) -> u64 {
        self.entries
    }

    /// Number of 4 KiB data blocks.
    pub fn data_blocks(&self) -> u32 {
        self.data_blocks
    }

    /// Smallest key.
    pub fn first_key(&self) -> &Bytes {
        &self.first_key
    }

    /// Largest key.
    pub fn last_key(&self) -> &Bytes {
        &self.last_key
    }

    /// Whether `key` falls in this table's key range.
    pub fn covers(&self, key: &[u8]) -> bool {
        self.first_key.as_ref() <= key && key <= self.last_key.as_ref()
    }

    /// Whether the bloom filter admits the key.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.may_contain(key)
    }

    /// The data block index that could contain `key`.
    pub fn block_for(&self, key: &[u8]) -> u32 {
        // Last block whose first key <= key.
        match self.index.partition_point(|first| first.as_ref() <= key) {
            0 => 0,
            n => (n - 1) as u32,
        }
    }

    /// Reads one data block from the device (the block-cache miss path).
    ///
    /// # Errors
    ///
    /// Device I/O failures.
    pub fn read_block(&self, block: u32, now: Nanos) -> Result<(Bytes, Nanos), DbError> {
        debug_assert!(block < self.data_blocks);
        let mut buf = vec![0u8; BLOCK_SIZE];
        let t = self
            .store
            .dev
            .read(Lba(self.start_block + block as u64), &mut buf, now)?;
        Ok((Bytes::from(buf), t))
    }

    /// Searches one (decoded) block for the key.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on malformed blocks.
    pub fn search_block(
        &self,
        block_bytes: &[u8],
        key: &[u8],
    ) -> Result<Option<Option<Bytes>>, DbError> {
        block_get(block_bytes, key)
    }

    /// Streams every entry (compaction input). Returns entries and the
    /// read completion time.
    ///
    /// # Errors
    ///
    /// Device/decode failures.
    pub fn scan(&self, now: Nanos) -> Result<(TableEntries, Nanos), DbError> {
        let mut out = Vec::with_capacity(self.entries as usize);
        let mut t = now;
        for b in 0..self.data_blocks {
            let (bytes, t2) = self.read_block(b, t)?;
            t = t2;
            out.extend(block_entries(&bytes)?);
        }
        Ok((out, t))
    }

    /// Streams entries with keys in `[start, end)`. Reads only the data
    /// blocks that can intersect the range.
    ///
    /// # Errors
    ///
    /// Device/decode failures.
    pub fn scan_range(
        &self,
        start: &[u8],
        end: &[u8],
        now: Nanos,
    ) -> Result<(TableEntries, Nanos), DbError> {
        let mut out = Vec::new();
        let mut t = now;
        if start >= end || end <= self.first_key.as_ref() || start > self.last_key.as_ref() {
            return Ok((out, t));
        }
        let first_block = self.block_for(start);
        for b in first_block..self.data_blocks {
            // Stop once the block starts at or past the range end.
            if self.index[b as usize].as_ref() >= end && b > first_block {
                break;
            }
            let (bytes, t2) = self.read_block(b, t)?;
            t = t2;
            for (k, v) in block_entries(&bytes)? {
                if k.as_ref() >= end {
                    return Ok((out, t));
                }
                if k.as_ref() >= start {
                    out.push((k, v));
                }
            }
        }
        Ok((out, t))
    }

    /// Frees the table's extent. Call exactly once, when the table leaves
    /// the live version set.
    pub fn release(&self) {
        let meta_blocks = {
            let meta_bytes: usize =
                self.index.iter().map(|k| k.len() + 4).sum::<usize>() + self.bloom.size_bytes() + 64;
            meta_bytes.div_ceil(BLOCK_SIZE) as u64
        };
        self.store
            .release(self.start_block, self.data_blocks as u64 + meta_blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::RamDisk;

    fn store() -> Arc<TableStore> {
        Arc::new(TableStore::new(Arc::new(RamDisk::new(4096))))
    }

    fn entries(n: u32) -> Vec<(Bytes, Option<Bytes>)> {
        (0..n)
            .map(|i| {
                (
                    Bytes::from(format!("key{i:06}")),
                    Some(Bytes::from(format!("value{i}"))),
                )
            })
            .collect()
    }

    #[test]
    fn extent_alloc_release_coalesce() {
        let s = store();
        let total = s.free_blocks();
        let a = s.alloc(10).unwrap();
        let b = s.alloc(20).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.free_blocks(), total - 30);
        s.release(a, 10);
        s.release(b, 20);
        assert_eq!(s.free_blocks(), total);
        // Fully coalesced back into one extent: a full-size alloc works.
        let c = s.alloc(total).unwrap();
        s.release(c, total);
    }

    #[test]
    fn alloc_failure_when_fragmented_or_full() {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(16));
        let s = TableStore::new(dev);
        let _a = s.alloc(16).unwrap();
        assert!(s.alloc(1).is_err());
    }

    #[test]
    fn build_and_point_lookup() {
        let s = store();
        let ents = entries(500);
        let (table, t) = Table::build(1, s, &ents, 10, Nanos::ZERO).unwrap();
        assert!(table.data_blocks() > 1, "should span multiple blocks");
        assert_eq!(table.entry_count(), 500);
        // Every key findable via block_for + read_block + search_block.
        for (key, value) in ents.iter().step_by(41) {
            assert!(table.covers(key));
            assert!(table.may_contain(key));
            let block = table.block_for(key);
            let (bytes, _) = table.read_block(block, t).unwrap();
            let got = table.search_block(&bytes, key).unwrap();
            assert_eq!(got, Some(value.clone()), "key {key:?}");
        }
        // Absent keys.
        let block = table.block_for(b"zzz");
        let (bytes, _) = table.read_block(block, t).unwrap();
        assert_eq!(table.search_block(&bytes, b"zzz~nope").unwrap(), None);
    }

    #[test]
    fn scan_returns_everything_in_order() {
        let s = store();
        let ents = entries(300);
        let (table, t) = Table::build(2, s, &ents, 10, Nanos::ZERO).unwrap();
        let (scanned, _) = table.scan(t).unwrap();
        assert_eq!(scanned.len(), 300);
        assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(scanned, ents);
    }

    #[test]
    fn release_returns_space() {
        let s = store();
        let before = s.free_blocks();
        let (table, _) = Table::build(3, s.clone(), &entries(100), 10, Nanos::ZERO).unwrap();
        assert!(s.free_blocks() < before);
        table.release();
        assert_eq!(s.free_blocks(), before);
    }

    #[test]
    fn tombstones_survive_build() {
        let s = store();
        let ents = vec![
            (Bytes::from_static(b"a"), Some(Bytes::from_static(b"1"))),
            (Bytes::from_static(b"b"), None),
        ];
        let (table, t) = Table::build(4, s, &ents, 10, Nanos::ZERO).unwrap();
        let (bytes, _) = table.read_block(0, t).unwrap();
        assert_eq!(table.search_block(&bytes, b"b").unwrap(), Some(None));
    }
}
