//! The LSM database: memtable, leveled SSTs, flush and compaction.
//!
//! A deliberate miniature of RocksDB's read/write paths:
//!
//! * writes land in a sorted memtable; a full memtable flushes to an L0
//!   table (L0 tables overlap),
//! * when L0 accumulates `l0_trigger` tables they are merged with L1 into
//!   fresh non-overlapping L1 tables; oversized levels cascade downward
//!   with a 10× size multiplier (full-level merges — partial compactions
//!   are a fidelity loss documented in DESIGN.md),
//! * reads consult memtable → L0 (newest first) → one candidate table per
//!   deeper level, each data-block access going through the
//!   [`BlockCache`] and therefore through the secondary cache when one is
//!   attached.
//!
//! There is no WAL: the paper's db_bench runs measure steady-state
//! performance, not crash recovery of the database itself.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim::{BlockDevice, Nanos};

use crate::cache::{BlockCache, BlockCacheStatsSnapshot, SecondaryCache};
use crate::table::{Table, TableStore};
use crate::types::DbError;

/// Number of levels below L0.
const MAX_LEVELS: usize = 4;

/// Configuration for [`Db::open`].
pub struct DbConfig {
    /// Backing device for SSTs (the paper uses an HDD).
    pub dev: Arc<dyn BlockDevice>,
    /// Memtable flush threshold in bytes.
    pub memtable_bytes: usize,
    /// L0 table count that triggers compaction into L1.
    pub l0_trigger: usize,
    /// Target cumulative size of L1; deeper levels scale by
    /// `level_multiplier`.
    pub l1_target_bytes: u64,
    /// Per-level size multiplier (RocksDB default: 10).
    pub level_multiplier: u64,
    /// Target size of one output table.
    pub table_target_bytes: usize,
    /// Bloom filter bits per key.
    pub bloom_bits_per_key: u32,
    /// DRAM block-cache capacity in bytes.
    pub block_cache_bytes: usize,
    /// Optional flash secondary cache (the paper's CacheLib integration).
    pub secondary: Option<Arc<dyn SecondaryCache>>,
    /// CPU cost per put/get before any I/O.
    pub op_cpu: Nanos,
}

impl DbConfig {
    /// In-memory configuration for unit tests.
    pub fn small_test() -> Self {
        DbConfig {
            dev: Arc::new(sim::RamDisk::new(8192)),
            memtable_bytes: 16 * 1024,
            l0_trigger: 4,
            l1_target_bytes: 128 * 1024,
            level_multiplier: 4,
            table_target_bytes: 32 * 1024,
            bloom_bits_per_key: 10,
            block_cache_bytes: 32 * 1024,
            secondary: None,
            op_cpu: Nanos::from_nanos(1_000),
        }
    }
}

/// Point-in-time database statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbStatsSnapshot {
    /// Put operations.
    pub puts: u64,
    /// Get operations.
    pub gets: u64,
    /// Gets answered from the memtable.
    pub memtable_hits: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compaction rounds.
    pub compactions: u64,
    /// Entries rewritten by compaction.
    pub compacted_entries: u64,
    /// Live tables per level (L0 first).
    pub tables_per_level: [u32; MAX_LEVELS],
}

struct DbInner {
    memtable: BTreeMap<Bytes, Option<Bytes>>,
    memtable_bytes: usize,
    /// `levels[0]` = L0 (overlapping, oldest first); deeper levels sorted
    /// by first key, non-overlapping.
    levels: Vec<Vec<Arc<Table>>>,
    next_table_id: u64,
    stats: DbStatsSnapshot,
}

/// The database handle. Internally locked; methods take `&self`.
pub struct Db {
    store: Arc<TableStore>,
    cache: Arc<BlockCache>,
    memtable_limit: usize,
    l0_trigger: usize,
    l1_target: u64,
    level_multiplier: u64,
    table_target: usize,
    bloom_bits: u32,
    op_cpu: Nanos,
    inner: Mutex<DbInner>,
}

impl core::fmt::Debug for Db {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Db").field("stats", &self.stats()).finish()
    }
}

impl Db {
    /// Opens a fresh database on the configured device.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; reserved for device validation.
    pub fn open(config: DbConfig) -> Result<Self, DbError> {
        let store = Arc::new(TableStore::new(config.dev));
        let cache = Arc::new(BlockCache::new(config.block_cache_bytes, config.secondary));
        Ok(Db {
            store,
            cache,
            memtable_limit: config.memtable_bytes.max(1024),
            l0_trigger: config.l0_trigger.max(2),
            l1_target: config.l1_target_bytes.max(1024),
            level_multiplier: config.level_multiplier.max(2),
            table_target: config.table_target_bytes.max(4096),
            bloom_bits: config.bloom_bits_per_key,
            op_cpu: config.op_cpu,
            inner: Mutex::new(DbInner {
                memtable: BTreeMap::new(),
                memtable_bytes: 0,
                levels: vec![Vec::new(); MAX_LEVELS],
                next_table_id: 1,
                stats: DbStatsSnapshot::default(),
            }),
        })
    }

    /// Database statistics.
    pub fn stats(&self) -> DbStatsSnapshot {
        let inner = self.inner.lock();
        let mut s = inner.stats;
        for (i, level) in inner.levels.iter().enumerate() {
            s.tables_per_level[i] = level.len() as u32;
        }
        s
    }

    /// Block-cache statistics (DRAM + secondary tiers).
    pub fn cache_stats(&self) -> BlockCacheStatsSnapshot {
        self.cache.stats()
    }

    /// Inserts or overwrites a key.
    ///
    /// # Errors
    ///
    /// [`DbError::TooLarge`] for oversized keys/values; storage failures
    /// from flush/compaction.
    pub fn put(&self, key: &[u8], value: &[u8], now: Nanos) -> Result<Nanos, DbError> {
        self.write(key, Some(value), now)
    }

    /// Deletes a key (writes a tombstone).
    ///
    /// # Errors
    ///
    /// As [`Db::put`].
    pub fn delete(&self, key: &[u8], now: Nanos) -> Result<Nanos, DbError> {
        self.write(key, None, now)
    }

    fn write(&self, key: &[u8], value: Option<&[u8]>, now: Nanos) -> Result<Nanos, DbError> {
        if key.len() > u16::MAX as usize {
            return Err(DbError::TooLarge {
                what: "key",
                len: key.len(),
            });
        }
        if let Some(v) = value {
            // One entry must fit a 4 KiB data block (header + key + value).
            if 6 + key.len() + v.len() > crate::block::BLOCK_TARGET {
                return Err(DbError::TooLarge {
                    what: "value",
                    len: v.len(),
                });
            }
        }
        let mut inner = self.inner.lock();
        let entry_bytes = key.len() + value.map_or(0, <[u8]>::len) + 16;
        inner.memtable.insert(
            Bytes::copy_from_slice(key),
            value.map(Bytes::copy_from_slice),
        );
        inner.memtable_bytes += entry_bytes;
        inner.stats.puts += 1;
        let mut t = now + self.op_cpu;
        if inner.memtable_bytes >= self.memtable_limit {
            t = self.flush_locked(&mut inner, t)?;
            t = self.maybe_compact(&mut inner, t)?;
        }
        Ok(t)
    }

    /// Flushes the memtable into a new L0 table.
    fn flush_locked(&self, inner: &mut DbInner, now: Nanos) -> Result<Nanos, DbError> {
        if inner.memtable.is_empty() {
            return Ok(now);
        }
        let entries: Vec<(Bytes, Option<Bytes>)> = std::mem::take(&mut inner.memtable)
            .into_iter()
            .collect();
        inner.memtable_bytes = 0;
        let id = inner.next_table_id;
        inner.next_table_id += 1;
        let (table, t) = Table::build(id, self.store.clone(), &entries, self.bloom_bits, now)?;
        inner.levels[0].push(Arc::new(table));
        inner.stats.flushes += 1;
        Ok(t)
    }

    /// Forces a memtable flush (benchmarks call this between phases).
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn flush(&self, now: Nanos) -> Result<Nanos, DbError> {
        let mut inner = self.inner.lock();
        let t = self.flush_locked(&mut inner, now)?;
        self.maybe_compact(&mut inner, t)
    }

    fn level_bytes(level: &[Arc<Table>]) -> u64 {
        // Approximate: data blocks dominate.
        level
            .iter()
            .map(|t| t.data_blocks() as u64 * sim::BLOCK_SIZE as u64)
            .sum()
    }

    /// Runs the compaction cascade until every level is within target.
    fn maybe_compact(&self, inner: &mut DbInner, now: Nanos) -> Result<Nanos, DbError> {
        let mut t = now;
        if inner.levels[0].len() >= self.l0_trigger {
            t = self.compact_into(inner, 0, t)?;
        }
        for level in 1..MAX_LEVELS - 1 {
            let target = self.l1_target * self.level_multiplier.pow(level as u32 - 1);
            if Self::level_bytes(&inner.levels[level]) > target {
                t = self.compact_into(inner, level, t)?;
            }
        }
        Ok(t)
    }

    /// Merges level `from` (entirely) with level `from + 1`.
    fn compact_into(&self, inner: &mut DbInner, from: usize, now: Nanos) -> Result<Nanos, DbError> {
        let to = from + 1;
        let drop_tombstones = to == MAX_LEVELS - 1;
        let upper = std::mem::take(&mut inner.levels[from]);
        let lower = std::mem::take(&mut inner.levels[to]);
        if upper.is_empty() {
            inner.levels[to] = lower;
            return Ok(now);
        }
        // Apply oldest → newest so newer versions overwrite older ones:
        // lower level first, then upper in push (age) order.
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        let mut t = now;
        for table in lower.iter().chain(upper.iter()) {
            let (entries, t2) = table.scan(t)?;
            t = t2;
            inner.stats.compacted_entries += entries.len() as u64;
            for (k, v) in entries {
                merged.insert(k, v);
            }
        }
        // Emit output tables of ~table_target bytes.
        let mut out_entries: Vec<(Bytes, Option<Bytes>)> = Vec::new();
        let mut out_bytes = 0usize;
        let mut outputs: Vec<Arc<Table>> = Vec::new();
        for (k, v) in merged {
            if drop_tombstones && v.is_none() {
                continue;
            }
            out_bytes += k.len() + v.as_ref().map_or(0, Bytes::len) + 8;
            out_entries.push((k, v));
            if out_bytes >= self.table_target {
                let id = inner.next_table_id;
                inner.next_table_id += 1;
                let (table, t2) =
                    Table::build(id, self.store.clone(), &out_entries, self.bloom_bits, t)?;
                t = t2;
                outputs.push(Arc::new(table));
                out_entries = Vec::new();
                out_bytes = 0;
            }
        }
        if !out_entries.is_empty() {
            let id = inner.next_table_id;
            inner.next_table_id += 1;
            let (table, t2) =
                Table::build(id, self.store.clone(), &out_entries, self.bloom_bits, t)?;
            t = t2;
            outputs.push(Arc::new(table));
        }
        // Release inputs and install outputs.
        for table in upper.iter().chain(lower.iter()) {
            table.release();
        }
        inner.levels[to] = outputs;
        inner.stats.compactions += 1;
        Ok(t)
    }

    /// Scans keys in `[start, end)`, newest version wins, tombstones
    /// filtered — RocksDB's iterator semantics for a bounded range.
    ///
    /// # Errors
    ///
    /// Storage or corruption failures.
    pub fn scan(
        &self,
        start: &[u8],
        end: &[u8],
        now: Nanos,
    ) -> Result<(Vec<(Bytes, Bytes)>, Nanos), DbError> {
        use std::collections::BTreeMap;
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        let mut t = now + self.op_cpu;
        if start >= end {
            return Ok((Vec::new(), t));
        }
        // Collect candidate tables oldest-first so newer versions overwrite.
        let (tables, mem_entries): (Vec<Arc<Table>>, crate::table::TableEntries) = {
            let inner = self.inner.lock();
            let mut tables = Vec::new();
            // Deepest level first (oldest data), L0 last in age order.
            for level in inner.levels[1..].iter().rev() {
                for table in level {
                    tables.push(table.clone());
                }
            }
            for table in &inner.levels[0] {
                tables.push(table.clone());
            }
            let mem = inner
                .memtable
                .range(Bytes::copy_from_slice(start)..Bytes::copy_from_slice(end))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            (tables, mem)
        };
        for table in tables {
            let (entries, t2) = table.scan_range(start, end, t)?;
            t = t2;
            for (k, v) in entries {
                merged.insert(k, v);
            }
        }
        // The memtable is newest of all.
        for (k, v) in mem_entries {
            merged.insert(k, v);
        }
        let out = merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect();
        Ok((out, t))
    }

    /// Looks up a key.
    ///
    /// # Errors
    ///
    /// Storage or corruption failures.
    pub fn get(&self, key: &[u8], now: Nanos) -> Result<(Option<Bytes>, Nanos), DbError> {
        let mut t = now + self.op_cpu;
        // Collect lookup candidates under the lock, then do I/O without it.
        let candidates: Vec<Arc<Table>> = {
            let mut inner = self.inner.lock();
            inner.stats.gets += 1;
            if let Some(v) = inner.memtable.get(key).cloned() {
                inner.stats.memtable_hits += 1;
                return Ok((v, t));
            }
            let mut c: Vec<Arc<Table>> = Vec::new();
            // L0: newest first.
            for table in inner.levels[0].iter().rev() {
                if table.covers(key) && table.may_contain(key) {
                    c.push(table.clone());
                }
            }
            for level in inner.levels[1..].iter() {
                // Non-overlapping: binary search for the covering table.
                let idx = level.partition_point(|table| table.first_key().as_ref() <= key);
                if idx > 0 {
                    let table = &level[idx - 1];
                    if table.covers(key) && table.may_contain(key) {
                        c.push(table.clone());
                    }
                }
            }
            c
        };

        for table in candidates {
            let block = table.block_for(key);
            let (bytes, t2) = self.cache.get_block(table.id(), block, t, |start| {
                table.read_block(block, start)
            })?;
            t = t2;
            match table.search_block(&bytes, key)? {
                Some(Some(v)) => return Ok((Some(v), t)),
                Some(None) => return Ok((None, t)), // tombstone
                None => continue,
            }
        }
        Ok((None, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Db {
        Db::open(DbConfig::small_test()).unwrap()
    }

    #[test]
    fn put_get_from_memtable() {
        let d = db();
        let t = d.put(b"k", b"v", Nanos::ZERO).unwrap();
        let (v, _) = d.get(b"k", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"v"[..]));
        assert_eq!(d.stats().memtable_hits, 1);
    }

    #[test]
    fn get_missing_returns_none() {
        let d = db();
        let (v, _) = d.get(b"nope", Nanos::ZERO).unwrap();
        assert!(v.is_none());
    }

    #[test]
    fn flush_moves_data_to_l0_and_reads_still_work() {
        let d = db();
        let mut t = Nanos::ZERO;
        for i in 0..100u32 {
            t = d.put(format!("key{i:04}").as_bytes(), b"value", t).unwrap();
        }
        t = d.flush(t).unwrap();
        assert!(d.stats().flushes >= 1);
        let (v, _) = d.get(b"key0042", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"value"[..]));
    }

    #[test]
    fn overwrites_and_deletes_respect_recency_across_flushes() {
        let d = db();
        let t = d.put(b"a", b"1", Nanos::ZERO).unwrap();
        let t = d.flush(t).unwrap();
        let t = d.put(b"a", b"2", t).unwrap();
        let t = d.flush(t).unwrap();
        let (v, t) = d.get(b"a", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"2"[..]));
        let t = d.delete(b"a", t).unwrap();
        let t = d.flush(t).unwrap();
        let (v, _) = d.get(b"a", t).unwrap();
        assert!(v.is_none(), "tombstone ignored");
    }

    #[test]
    fn sustained_writes_trigger_compaction_and_stay_readable() {
        let d = db();
        let mut t = Nanos::ZERO;
        let value = vec![7u8; 64];
        for i in 0..4000u32 {
            let key = format!("key{:06}", i % 1500);
            t = d.put(key.as_bytes(), &value, t).unwrap();
        }
        t = d.flush(t).unwrap();
        let s = d.stats();
        assert!(s.compactions > 0, "no compaction: {s:?}");
        // Spot-check reads.
        for i in (0..1500u32).step_by(173) {
            let key = format!("key{:06}", i);
            let (v, t2) = d.get(key.as_bytes(), t).unwrap();
            assert_eq!(v.as_deref(), Some(&value[..]), "{key} lost");
            t = t2;
        }
        // L0 is under control.
        assert!(s.tables_per_level[0] < 8);
    }

    #[test]
    fn deletes_purge_at_bottom_level() {
        let d = db();
        let mut t = Nanos::ZERO;
        let value = vec![1u8; 64];
        for i in 0..500u32 {
            t = d.put(format!("k{i:05}").as_bytes(), &value, t).unwrap();
        }
        for i in 0..500u32 {
            t = d.delete(format!("k{i:05}").as_bytes(), t).unwrap();
        }
        t = d.flush(t).unwrap();
        for i in (0..500u32).step_by(97) {
            let (v, t2) = d.get(format!("k{i:05}").as_bytes(), t).unwrap();
            assert!(v.is_none());
            t = t2;
        }
    }

    #[test]
    fn block_cache_accelerates_repeat_reads() {
        let d = db();
        let mut t = Nanos::ZERO;
        for i in 0..200u32 {
            t = d.put(format!("key{i:04}").as_bytes(), b"value", t).unwrap();
        }
        t = d.flush(t).unwrap();
        let (_, t1) = d.get(b"key0100", t).unwrap();
        let cold = t1 - t;
        let (_, t2) = d.get(b"key0100", t1).unwrap();
        let warm = t2 - t1;
        assert!(warm < cold, "cache had no effect: warm {warm} cold {cold}");
        assert!(d.cache_stats().dram_hits >= 1);
    }

    #[test]
    fn range_scan_merges_levels_and_memtable() {
        let d = db();
        let mut t = Nanos::ZERO;
        // Older versions on disk.
        for i in 0..200u32 {
            t = d.put(format!("k{i:04}").as_bytes(), b"old", t).unwrap();
        }
        t = d.flush(t).unwrap();
        // Newer versions for some keys; one delete; one memtable-only key.
        t = d.put(b"k0010", b"new", t).unwrap();
        t = d.delete(b"k0011", t).unwrap();
        t = d.flush(t).unwrap();
        t = d.put(b"k0012", b"newest", t).unwrap(); // stays in memtable

        let (got, _) = d.scan(b"k0009", b"k0014", t).unwrap();
        let as_strings: Vec<(String, String)> = got
            .iter()
            .map(|(k, v)| {
                (
                    String::from_utf8_lossy(k).into_owned(),
                    String::from_utf8_lossy(v).into_owned(),
                )
            })
            .collect();
        assert_eq!(
            as_strings,
            vec![
                ("k0009".into(), "old".into()),
                ("k0010".into(), "new".into()),
                // k0011 deleted
                ("k0012".into(), "newest".into()),
                ("k0013".into(), "old".into()),
            ]
        );
    }

    #[test]
    fn empty_and_inverted_ranges_scan_to_nothing() {
        let d = db();
        let t = d.put(b"a", b"1", Nanos::ZERO).unwrap();
        let (got, _) = d.scan(b"x", b"z", t).unwrap();
        assert!(got.is_empty());
        let (got, _) = d.scan(b"z", b"a", t).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn oversized_key_rejected() {
        let d = db();
        let big = vec![0u8; 70_000];
        assert!(matches!(
            d.put(&big, b"v", Nanos::ZERO),
            Err(DbError::TooLarge { what: "key", .. })
        ));
    }
}
