//! SST data-block encoding.
//!
//! A data block is a sorted run of entries:
//! `[u16 key_len][u32 value_tag][key][value]`, where `value_tag` is the
//! value length or [`TOMBSTONE`] for deletions. Blocks target 4 KiB — the
//! unit the block cache and secondary cache operate on.

use bytes::{Buf, BufMut, Bytes};

use crate::types::DbError;

/// Value tag marking a deletion entry.
pub const TOMBSTONE: u32 = u32::MAX;

/// Target encoded size of one data block.
pub const BLOCK_TARGET: usize = 4096;

/// Builds data blocks from entries appended in sorted order.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    count: u32,
}

impl BlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry. `value = None` encodes a tombstone.
    pub fn add(&mut self, key: &[u8], value: Option<&[u8]>) {
        self.buf.put_u16_le(key.len() as u16);
        match value {
            Some(v) => {
                self.buf.put_u32_le(v.len() as u32);
                self.buf.put_slice(key);
                self.buf.put_slice(v);
            }
            None => {
                self.buf.put_u32_le(TOMBSTONE);
                self.buf.put_slice(key);
            }
        }
        self.count += 1;
    }

    /// Encoded size so far.
    pub fn size(&self) -> usize {
        self.buf.len()
    }

    /// Entries added so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether the block has reached its target size.
    pub fn is_full(&self) -> bool {
        self.buf.len() >= BLOCK_TARGET
    }

    /// Whether the block has no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finishes the block, returning its bytes (entry-count prefixed) and
    /// resetting the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.buf.len());
        out.put_u32_le(self.count);
        out.extend_from_slice(&self.buf);
        self.count = 0;
        self.buf.clear();
        out
    }
}

/// Searches an encoded block for a key.
///
/// Returns `Ok(Some(None))` for a tombstone hit, `Ok(Some(Some(v)))` for a
/// value hit, `Ok(None)` for absent.
///
/// # Errors
///
/// [`DbError::Corruption`] on malformed encoding.
pub fn block_get(block: &[u8], key: &[u8]) -> Result<Option<Option<Bytes>>, DbError> {
    let mut buf = block;
    if buf.remaining() < 4 {
        return Err(DbError::Corruption("block too short for header".into()));
    }
    let count = buf.get_u32_le();
    for _ in 0..count {
        if buf.remaining() < 6 {
            return Err(DbError::Corruption("entry overruns block".into()));
        }
        let klen = buf.get_u16_le() as usize;
        let tag = buf.get_u32_le();
        if buf.remaining() < klen {
            return Err(DbError::Corruption("key overruns block".into()));
        }
        let this_key = &buf[..klen];
        let matches = this_key == key;
        // Sorted blocks allow early exit once past the key.
        let past = this_key > key;
        buf.advance(klen);
        if tag == TOMBSTONE {
            if matches {
                return Ok(Some(None));
            }
        } else {
            let vlen = tag as usize;
            if buf.remaining() < vlen {
                return Err(DbError::Corruption("value overruns block".into()));
            }
            if matches {
                return Ok(Some(Some(Bytes::copy_from_slice(&buf[..vlen]))));
            }
            buf.advance(vlen);
        }
        if past {
            return Ok(None);
        }
    }
    Ok(None)
}

/// Decodes every entry of a block (compaction input path).
///
/// # Errors
///
/// [`DbError::Corruption`] on malformed encoding.
pub fn block_entries(block: &[u8]) -> Result<Vec<(Bytes, Option<Bytes>)>, DbError> {
    let mut buf = block;
    if buf.remaining() < 4 {
        return Err(DbError::Corruption("block too short for header".into()));
    }
    let count = buf.get_u32_le();
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        if buf.remaining() < 6 {
            return Err(DbError::Corruption("entry overruns block".into()));
        }
        let klen = buf.get_u16_le() as usize;
        let tag = buf.get_u32_le();
        if buf.remaining() < klen {
            return Err(DbError::Corruption("key overruns block".into()));
        }
        let key = Bytes::copy_from_slice(&buf[..klen]);
        buf.advance(klen);
        if tag == TOMBSTONE {
            out.push((key, None));
        } else {
            let vlen = tag as usize;
            if buf.remaining() < vlen {
                return Err(DbError::Corruption("value overruns block".into()));
            }
            out.push((key, Some(Bytes::copy_from_slice(&buf[..vlen]))));
            buf.advance(vlen);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_search() {
        let mut b = BlockBuilder::new();
        b.add(b"apple", Some(b"red"));
        b.add(b"banana", None);
        b.add(b"cherry", Some(b"dark"));
        let block = b.finish();

        assert_eq!(
            block_get(&block, b"apple").unwrap(),
            Some(Some(Bytes::from_static(b"red")))
        );
        assert_eq!(block_get(&block, b"banana").unwrap(), Some(None));
        assert_eq!(block_get(&block, b"zzz").unwrap(), None);
        assert_eq!(block_get(&block, b"aaa").unwrap(), None);
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new();
        b.add(b"k", Some(b"v"));
        assert!(!b.is_empty());
        let _ = b.finish();
        assert!(b.is_empty());
        assert_eq!(b.size(), 0);
    }

    #[test]
    fn entries_round_trip() {
        let mut b = BlockBuilder::new();
        b.add(b"a", Some(b"1"));
        b.add(b"b", None);
        let block = b.finish();
        let entries = block_entries(&block).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0.as_ref(), b"a");
        assert_eq!(entries[1].1, None);
    }

    #[test]
    fn corruption_detected() {
        let mut b = BlockBuilder::new();
        b.add(b"key", Some(b"value"));
        let mut block = b.finish();
        block.truncate(block.len() - 2);
        assert!(block_get(&block, b"key").is_err());
    }

    #[test]
    fn full_flag_trips_at_target() {
        let mut b = BlockBuilder::new();
        let v = vec![0u8; 512];
        while !b.is_full() {
            b.add(b"somekey", Some(&v));
        }
        assert!(b.size() >= BLOCK_TARGET);
    }
}
