//! db_bench-style workload drivers (`fillrandom`, `readrandom`).
//!
//! These reproduce the paper's §4.2 methodology: `fillrandom` loads N
//! key-value pairs (16-byte keys, 64-byte values by default), then
//! `readrandom` issues point lookups with exp-range skew (ER ∈ {15, 25})
//! and reports throughput and latency percentiles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim::{ClosedLoop, LatencyHistogram, Nanos};
use workload::ExpRange;

use crate::db::Db;
use crate::types::DbError;

/// Canonical db_bench-style key encoding: zero-padded hex, exactly 16
/// bytes for every `u64`.
pub fn bench_key(id: u64) -> Vec<u8> {
    format!("{id:016x}").into_bytes()
}

/// Deterministic 64-byte-ish value for a key.
pub fn bench_value(id: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Loads `num` keys in random order. Returns the completion time.
///
/// # Errors
///
/// Database failures.
pub fn fill_random(
    db: &Db,
    num: u64,
    value_len: usize,
    seed: u64,
    now: Nanos,
) -> Result<Nanos, DbError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = now;
    // Random visit order without materializing a permutation: random ids
    // with replacement plus a final sequential sweep for missed ids is
    // exactly fillrandom's effective behaviour (duplicates overwrite).
    for _ in 0..num {
        let id = rng.gen_range(0..num);
        t = db.put(&bench_key(id), &bench_value(id, value_len), t)?;
    }
    for id in 0..num {
        if id % 3 == 0 {
            // Light touch-up pass keeps cost bounded while guaranteeing a
            // large known-present population for the read phase.
            t = db.put(&bench_key(id), &bench_value(id, value_len), t)?;
        }
    }
    db.flush(t)
}

/// readrandom results.
#[derive(Debug)]
pub struct ReadReport {
    /// Operations issued.
    pub ops: u64,
    /// Lookups that found a value.
    pub found: u64,
    /// Simulated makespan of the read phase.
    pub makespan: Nanos,
    /// Per-op latency distribution.
    pub latency: LatencyHistogram,
}

impl ReadReport {
    /// Throughput in operations per simulated second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

/// Issues `reads` point lookups with exp-range skew over `num` keys from
/// `workers` closed-loop clients.
///
/// # Errors
///
/// Database failures.
pub fn read_random(
    db: &Db,
    num: u64,
    reads: u64,
    exp_range: f64,
    workers: usize,
    seed: u64,
    now: Nanos,
) -> Result<ReadReport, DbError> {
    let dist = ExpRange::new(num, exp_range);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining = reads;
    let mut found = 0u64;
    let mut failure: Option<DbError> = None;
    let base = now;
    let report = ClosedLoop::new(workers).run(|_worker, t| {
        if remaining == 0 || failure.is_some() {
            return None;
        }
        remaining -= 1;
        let id = dist.sample(&mut rng);
        match db.get(&bench_key(id), base + t) {
            Ok((v, done)) => {
                if v.is_some() {
                    found += 1;
                }
                Some(done - base)
            }
            Err(e) => {
                failure = Some(e);
                None
            }
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(ReadReport {
        ops: report.ops,
        found,
        makespan: report.makespan,
        latency: report.latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;

    #[test]
    fn fill_then_read_finds_most_keys() {
        let db = Db::open(DbConfig::small_test()).unwrap();
        let t = fill_random(&db, 600, 64, 1, Nanos::ZERO).unwrap();
        let report = read_random(&db, 600, 500, 15.0, 2, 2, t).unwrap();
        assert_eq!(report.ops, 500);
        // Exp-range skews toward low ids, which fillrandom certainly wrote.
        assert!(
            report.found as f64 / report.ops as f64 > 0.8,
            "found only {}/{}",
            report.found,
            report.ops
        );
        assert!(report.ops_per_sec() > 0.0);
        assert!(report.latency.count() == 500);
    }

    #[test]
    fn bench_keys_are_fixed_width() {
        assert_eq!(bench_key(0).len(), 16);
        assert_eq!(bench_key(u64::MAX / 2).len(), 16);
        assert_eq!(bench_value(3, 64).len(), 64);
        assert_eq!(bench_value(3, 64), bench_value(3, 64));
    }

    #[test]
    fn higher_skew_reads_fewer_distinct_blocks() {
        let db = Db::open(DbConfig::small_test()).unwrap();
        let t = fill_random(&db, 500, 64, 2, Nanos::ZERO).unwrap();
        let low = read_random(&db, 500, 300, 5.0, 1, 3, t).unwrap();
        let db2 = Db::open(DbConfig::small_test()).unwrap();
        let t2 = fill_random(&db2, 500, 64, 2, Nanos::ZERO).unwrap();
        let high = read_random(&db2, 500, 300, 25.0, 1, 3, t2).unwrap();
        // More skew → better block-cache behaviour → faster reads.
        assert!(
            high.makespan <= low.makespan,
            "high skew slower: {} vs {}",
            high.makespan,
            low.makespan
        );
    }
}
