//! Lock-order analysis: the may-hold-while-acquiring graph.
//!
//! For each covered crate, discovers every `Mutex`/`RwLock` field from
//! struct definitions, finds every acquisition scope (a `let`-bound guard
//! is live until `drop` or end of block; a guard acquired mid-expression
//! is live for the rest of its statement), and builds the directed graph
//! *lock A held while acquiring lock B*. Call edges propagate: a call
//! made while holding A contributes edges A → every lock the callee may
//! acquire (computed to a fixpoint over the crate's call graph).
//!
//! Three findings fall out:
//!
//! * **lock-cycle** — a cycle in the graph is a deadlock schedule waiting
//!   for the right thread timing; always an error. Re-acquiring a held
//!   scalar lock is the one-node case of the same bug.
//! * **lock-across-io** — a guard live at a statement that performs
//!   device I/O (calls through a `backend`/`dev` field, maintenance
//!   passes, scrubs), directly or via a callee that does. Unlike the old
//!   regex rule, this follows guards across *statements* and *calls* —
//!   the bug class the regex provably missed. Intentional sites (the
//!   engine's inline-eviction backpressure) carry `// lock-ok: why`.
//! * **submit-to-complete** — same liveness check, but for the async
//!   flush pipeline's endpoints (`submit_flush`, `wait_done`,
//!   `resolve_ticket`), which must run with every shard lock released.
//!
//! Plus the engine-specific read-path rule carried over from the old
//! linter: `get`/`try_get`/`delete` never acquire the writer mutex,
//! directly or transitively.

use std::collections::{BTreeMap, BTreeSet};

use super::model::{build, stmts, FieldItem, FileModel, FnItem, LockKind, Stmt};
use super::parse::{Group, SourceFile, Tok, Token, Tree};
use super::{push, Violation};

/// Fields named these are device handles: any method call through them is
/// I/O.
const IO_FIELDS: &[&str] = &["backend", "dev"];

/// Method names that are maintenance passes — they reach the device
/// regardless of how the receiver resolves.
const IO_METHODS: &[&str] = &["maintain", "run_once", "scrub"];

/// The async submit-to-complete interval's endpoints.
const PIPELINE_METHODS: &[&str] = &["submit_flush", "wait_done", "resolve_ticket"];

/// Wrapper types to see through when resolving a field's payload type.
const WRAPPERS: &[&str] = &[
    "Vec", "Box", "Arc", "Rc", "Option", "Result", "RefCell", "Cell", "VecDeque", "Mutex",
    "RwLock", "HashMap", "BTreeMap", "u8", "u16", "u32", "u64", "usize",
];

/// Engine read-path entry points that must never touch the writer mutex.
const READ_PATH_FNS: &[&str] = &["get", "try_get", "delete"];

/// One parsed file of a crate, as handed in by the driver.
pub struct CrateFile<'a> {
    pub path: &'a str,
    pub source: &'a SourceFile,
}

/// The per-crate lock graph, kept for the ANALYSIS.md inventory.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Lock node → kind label (`Mutex`, `RwLock`, `?`).
    pub nodes: BTreeMap<String, &'static str>,
    /// (held, acquired) → one example site `file:line`.
    pub edges: BTreeMap<(String, String), String>,
}

type FnKey = (Option<String>, String);

#[derive(Clone, Debug)]
struct Guard {
    /// Binding name for `let`-bound guards; `None` for temporaries.
    var: Option<String>,
    lock: String,
}

/// A call made while holding locks — resolved against the fixpoint later.
struct HeldCall {
    callee: FnKey,
    held: Vec<String>,
    file: String,
    line: u32,
    annotated: bool,
}

#[derive(Default)]
struct FnFacts {
    /// Locks this fn acquires directly.
    acquires: BTreeSet<String>,
    /// Directly performs device I/O.
    does_io: bool,
    /// Directly touches the flush pipeline endpoints.
    does_pipeline: bool,
    /// Same-crate callees (resolved).
    calls: Vec<FnKey>,
}

/// Runs the analysis over one crate's files. Appends violations and
/// returns the lock graph.
pub fn analyze(crate_name: &str, files: &[CrateFile<'_>], out: &mut Vec<Violation>) -> LockGraph {
    let models: Vec<FileModel<'_>> = files.iter().map(|f| build(f.source)).collect();
    let reg = Registry::new(&models);

    // Per-fn facts from a guard-liveness walk of every body.
    let mut facts: BTreeMap<FnKey, FnFacts> = BTreeMap::new();
    let mut graph = LockGraph::default();
    let mut held_calls: Vec<HeldCall> = Vec::new();
    for (f, m) in files.iter().zip(&models) {
        for func in &m.fns {
            if func.is_test {
                continue;
            }
            let Some(body) = func.body else { continue };
            let mut fx = FnFacts::default();
            let mut walker = Walker {
                reg: &reg,
                source: f.source,
                file: f.path,
                func,
                facts: &mut fx,
                graph: &mut graph,
                out,
                held_calls: &mut held_calls,
                locals: BTreeMap::new(),
            };
            walker.block(&stmts(body), &mut Vec::new());
            let entry = facts
                .entry((func.self_ty.clone(), func.name.clone()))
                .or_default();
            entry.acquires.extend(fx.acquires);
            entry.does_io |= fx.does_io;
            entry.does_pipeline |= fx.does_pipeline;
            entry.calls.extend(fx.calls);
        }
    }

    // Fixpoint: what may each fn acquire / do, transitively?
    let mut may_acquire: BTreeMap<FnKey, BTreeSet<String>> = BTreeMap::new();
    let mut may_io: BTreeMap<FnKey, (bool, bool)> = BTreeMap::new();
    for (k, fx) in &facts {
        may_acquire.insert(k.clone(), fx.acquires.clone());
        may_io.insert(k.clone(), (fx.does_io, fx.does_pipeline));
    }
    loop {
        let mut changed = false;
        for (k, fx) in &facts {
            let mut acq = may_acquire.get(k).cloned().unwrap_or_default();
            let mut io = *may_io.get(k).unwrap_or(&(false, false));
            for callee in &fx.calls {
                if let Some(ca) = may_acquire.get(callee) {
                    for l in ca.clone() {
                        changed |= acq.insert(l);
                    }
                }
                if let Some(&(cio, cpipe)) = may_io.get(callee) {
                    changed |= cio && !io.0;
                    changed |= cpipe && !io.1;
                    io.0 |= cio;
                    io.1 |= cpipe;
                }
            }
            may_acquire.insert(k.clone(), acq);
            may_io.insert(k.clone(), io);
        }
        if !changed {
            break;
        }
    }

    // Held-context calls: transitive edges plus held-across-io findings.
    for hc in &held_calls {
        if let Some(acq) = may_acquire.get(&hc.callee) {
            for l in acq {
                for h in &hc.held {
                    if h != l {
                        graph
                            .edges
                            .entry((h.clone(), l.clone()))
                            .or_insert_with(|| format!("{}:{}", hc.file, hc.line));
                    }
                }
            }
        }
        if hc.annotated {
            continue;
        }
        if let Some(&(cio, cpipe)) = may_io.get(&hc.callee) {
            if cio {
                push(
                    out,
                    "lock-across-io",
                    &hc.file,
                    hc.line,
                    format!(
                        "lock(s) {:?} held across a call to `{}` which performs \
                         device I/O; release them first or annotate `// lock-ok: why`",
                        hc.held, hc.callee.1
                    ),
                );
            } else if cpipe {
                push(
                    out,
                    "submit-to-complete",
                    &hc.file,
                    hc.line,
                    format!(
                        "lock(s) {:?} held across a call to `{}` which enters the \
                         flush submit/complete interval; the pipeline must run with \
                         all shard locks released",
                        hc.held, hc.callee.1
                    ),
                );
            }
        }
    }

    report_cycles(crate_name, &graph, out);

    // Engine read-path rule (crates/core only).
    if crate_name == "core" {
        for (f, m) in files.iter().zip(&models) {
            if !f.path.ends_with("src/engine.rs") {
                continue;
            }
            for func in &m.fns {
                if func.is_test || !READ_PATH_FNS.contains(&func.name.as_str()) {
                    continue;
                }
                let key = (func.self_ty.clone(), func.name.clone());
                if let Some(acq) = may_acquire.get(&key) {
                    if let Some(w) = acq.iter().find(|l| l.ends_with(".writer")) {
                        push(
                            out,
                            "lock-across-io",
                            f.path,
                            func.line,
                            format!(
                                "read-path entry `{}` may acquire the writer mutex ({w})",
                                func.name
                            ),
                        );
                    }
                }
            }
        }
    }

    graph
}

fn report_cycles(crate_name: &str, graph: &LockGraph, out: &mut Vec<Violation>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (h, a) in graph.edges.keys() {
        adj.entry(h).or_default().push(a);
    }

    fn dfs<'a>(
        n: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        state: &mut BTreeMap<&'a str, u8>, // 0 unseen, 1 on-stack, 2 done
        stack: &mut Vec<&'a str>,
        cycles: &mut Vec<Vec<String>>,
    ) {
        state.insert(n, 1);
        stack.push(n);
        for &m in adj.get(n).into_iter().flatten() {
            match state.get(m).copied().unwrap_or(0) {
                0 => dfs(m, adj, state, stack, cycles),
                1 => {
                    let pos = stack.iter().position(|&s| s == m).unwrap_or(0);
                    let mut cyc: Vec<String> =
                        stack[pos..].iter().map(|s| s.to_string()).collect();
                    cyc.push(m.to_string());
                    cycles.push(cyc);
                }
                _ => {}
            }
        }
        stack.pop();
        state.insert(n, 2);
    }

    let mut state: BTreeMap<&str, u8> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();
    let mut cycles = Vec::new();
    let nodes: Vec<&str> = graph
        .edges
        .keys()
        .flat_map(|(a, b)| [a.as_str(), b.as_str()])
        .collect();
    for n in nodes {
        if state.get(n).copied().unwrap_or(0) == 0 {
            dfs(n, &adj, &mut state, &mut stack, &mut cycles);
        }
    }

    let mut reported: BTreeSet<String> = BTreeSet::new();
    for cyc in cycles {
        let mut canon = cyc.clone();
        canon.sort();
        canon.dedup();
        if !reported.insert(canon.join("→")) {
            continue;
        }
        let sites: Vec<String> = cyc
            .windows(2)
            .filter_map(|w| {
                graph
                    .edges
                    .get(&(w[0].clone(), w[1].clone()))
                    .map(|s| format!("{}→{} at {}", w[0], w[1], s))
            })
            .collect();
        push(
            out,
            "lock-cycle",
            &format!("crates/{crate_name}"),
            0,
            format!(
                "lock-order cycle {}: a deadlock schedule exists ({})",
                cyc.join(" → "),
                sites.join("; ")
            ),
        );
    }
}

// ---------------------------------------------------------------------
// Resolution registry
// ---------------------------------------------------------------------

struct Registry<'m> {
    /// (struct, field) → the field item.
    by_struct: BTreeMap<(&'m str, &'m str), &'m FieldItem>,
    lock_fields: Vec<&'m FieldItem>,
    /// Lock field name → node name, when unique in the crate (fallback
    /// resolution for untyped receivers).
    unique_lock_fields: BTreeMap<&'m str, String>,
    /// (self_ty, fn name) → return-type principal ident.
    fn_ret: BTreeMap<FnKey, Option<String>>,
    /// Keys of all same-crate fns, so calls can be resolved.
    fn_keys: BTreeSet<FnKey>,
}

impl<'m> Registry<'m> {
    fn new(models: &'m [FileModel<'_>]) -> Registry<'m> {
        let mut by_struct = BTreeMap::new();
        let mut lock_fields: Vec<&'m FieldItem> = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<String>> = BTreeMap::new();
        for m in models {
            for f in &m.fields {
                by_struct.insert((f.struct_name.as_str(), f.field.as_str()), f);
                if f.lock_kind().is_some() {
                    lock_fields.push(f);
                    by_name
                        .entry(f.field.as_str())
                        .or_default()
                        .push(format!("{}.{}", f.struct_name, f.field));
                }
            }
        }
        let mut unique_lock_fields = BTreeMap::new();
        for (k, v) in by_name {
            if v.len() == 1 {
                unique_lock_fields.insert(k, v.into_iter().next().unwrap());
            }
        }
        let mut fn_ret = BTreeMap::new();
        let mut fn_keys = BTreeSet::new();
        for m in models {
            for f in &m.fns {
                let key = (f.self_ty.clone(), f.name.clone());
                fn_ret.insert(key.clone(), f.ret_ty.clone());
                fn_keys.insert(key);
            }
        }
        Registry {
            by_struct,
            lock_fields,
            unique_lock_fields,
            fn_ret,
            fn_keys,
        }
    }

    fn field(&self, ty: &str, name: &str) -> Option<&'m FieldItem> {
        self.by_struct.get(&(ty, name)).copied()
    }

    /// Payload type of a field, seeing through wrapper types.
    fn payload_type(&self, f: &FieldItem) -> Option<String> {
        f.type_idents
            .iter()
            .rev()
            .find(|t| !WRAPPERS.contains(&t.as_str()))
            .cloned()
    }

    /// A method on `ty` whose return type is a lock handle: map it back to
    /// the lock field it exposes when the names overlap (`dram_shard` →
    /// `dram`, `shard` → `shards`).
    fn method_lock_node(&self, ty: &str, method: &str) -> Option<String> {
        let ret = self
            .fn_ret
            .get(&(Some(ty.to_string()), method.to_string()))?
            .as_deref()?;
        if ret != "Mutex" && ret != "RwLock" {
            return None;
        }
        for f in &self.lock_fields {
            if f.struct_name == ty
                && (method.contains(f.field.as_str()) || f.field.contains(method))
            {
                return Some(format!("{}.{}", f.struct_name, f.field));
            }
        }
        Some(format!("{ty}.{method}()"))
    }

    /// Resolves a receiver chain (idents up to, but excluding, the final
    /// method) against `self`'s type and the fn's local type map.
    fn resolve_chain(
        &self,
        chain: &[String],
        self_ty: Option<&str>,
        locals: &BTreeMap<String, Resolved>,
    ) -> Resolved {
        let mut idx = 0usize;
        let mut ty: Option<String> = None;
        match chain.first().map(String::as_str) {
            Some("self") => {
                ty = self_ty.map(str::to_string);
                idx = 1;
            }
            Some(head) => {
                if let Some(r) = locals.get(head) {
                    match r {
                        Resolved::Lock(_) if chain.len() == 1 => return r.clone(),
                        Resolved::Type(t) => {
                            ty = Some(t.clone());
                            idx = 1;
                        }
                        _ => return Resolved::Unknown,
                    }
                }
            }
            None => return Resolved::Unknown,
        }
        let Some(mut ty) = ty else {
            // Untyped head: fall back to unique-lock-field matching on the
            // final chain ident.
            if let Some(last) = chain.last() {
                if let Some(node) = self.unique_lock_fields.get(last.as_str()) {
                    return Resolved::Lock(node.clone());
                }
            }
            return Resolved::Unknown;
        };
        while idx < chain.len() {
            let seg = &chain[idx];
            let last = idx == chain.len() - 1;
            if let Some(f) = self.field(&ty, seg) {
                if last && f.lock_kind().is_some() {
                    return Resolved::Lock(format!("{}.{}", f.struct_name, f.field));
                }
                match self.payload_type(f) {
                    Some(t) => ty = t,
                    None => return Resolved::Unknown,
                }
            } else if let Some(node) = self.method_lock_node(&ty, seg) {
                return if last { Resolved::Lock(node) } else { Resolved::Unknown };
            } else if let Some(Some(r)) = self.fn_ret.get(&(Some(ty.clone()), seg.clone())) {
                ty = r.clone();
            } else {
                return Resolved::Unknown;
            }
            idx += 1;
        }
        Resolved::Type(ty)
    }

    fn lock_kind_of(&self, node: &str) -> Option<LockKind> {
        // `registry()` — a free-fn static lock getter.
        if let Some(name) = node.strip_suffix("()") {
            return match self
                .fn_ret
                .get(&(None, name.to_string()))
                .and_then(|r| r.as_deref())
            {
                Some("Mutex") => Some(LockKind::Mutex),
                Some("RwLock") => Some(LockKind::RwLock),
                _ => None,
            };
        }
        let (s, f) = node.split_once('.')?;
        self.field(s, f).and_then(|fi| fi.lock_kind())
    }

    fn is_collection(&self, node: &str) -> bool {
        node.split_once('.')
            .and_then(|(s, f)| self.field(s, f))
            .is_some_and(|fi| fi.is_collection())
    }
}

#[derive(Clone, Debug)]
enum Resolved {
    Lock(String),
    Type(String),
    Unknown,
}

// ---------------------------------------------------------------------
// Leaf stream: flat statement tokens with call positions and depth
// ---------------------------------------------------------------------

/// The flattened tokens of one statement, aligned with (a) whether each
/// ident is immediately followed by a `(...)` group (a call), and (b) the
/// group-nesting depth of each token — so receiver chains can be walked
/// back *skipping argument tokens*, which plain flattening loses.
struct LeafStream<'a> {
    toks: Vec<&'a Token>,
    is_call: Vec<bool>,
    depth: Vec<u32>,
}

fn leaf_stream<'a>(st: &Stmt<'a>) -> LeafStream<'a> {
    fn walk<'a>(g: &'a Group, d: u32, s: &mut LeafStream<'a>) {
        for (i, c) in g.children.iter().enumerate() {
            let next_paren =
                matches!(g.children.get(i + 1), Some(Tree::Group(p)) if p.delim == '(');
            emit(c, next_paren, d, s);
        }
    }
    fn emit<'a>(t: &'a Tree, next_paren: bool, d: u32, s: &mut LeafStream<'a>) {
        match t {
            Tree::Leaf(tok) => {
                s.is_call
                    .push(matches!(tok.tok, Tok::Ident(_)) && next_paren);
                s.depth.push(d);
                s.toks.push(tok);
            }
            Tree::Group(g) => walk(g, d + 1, s),
        }
    }
    let mut s = LeafStream {
        toks: Vec::new(),
        is_call: Vec::new(),
        depth: Vec::new(),
    };
    for i in 0..st.trees.len() {
        let t = st.trees[i];
        // Top-level brace sub-blocks are separate scopes (they surface
        // through `Stmt::blocks`), mirroring `Stmt::leaves`.
        if matches!(t, Tree::Group(Group { delim: '{', .. })) {
            continue;
        }
        let next_paren =
            matches!(st.trees.get(i + 1), Some(Tree::Group(p)) if p.delim == '(');
        emit(t, next_paren, 0, &mut s);
    }
    s
}

/// Walks back from the `.` before a method to collect the receiver chain
/// in source order, staying at the dot's nesting depth (argument and
/// index tokens sit deeper and are skipped).
fn receiver_chain(s: &LeafStream<'_>, dot_idx: usize) -> Vec<String> {
    let d = s.depth[dot_idx];
    let mut chain = Vec::new();
    let mut expect_ident = true;
    let mut i = dot_idx;
    while i > 0 {
        i -= 1;
        if s.depth[i] > d {
            continue;
        }
        if s.depth[i] < d {
            break;
        }
        match &s.toks[i].tok {
            Tok::Ident(id) if expect_ident => {
                chain.push(id.clone());
                expect_ident = false;
            }
            Tok::Punct('.') if !expect_ident => expect_ident = true,
            Tok::Punct(':') => expect_ident = true,
            _ => break,
        }
    }
    chain.reverse();
    chain
}

/// Whether the acquisition at leaf `i` is the statement's final value
/// (allowing only `.unwrap()` / `.expect(…)` / `?` after it) — i.e. a
/// `let`-bound guard rather than a temporary.
fn terminal_acquisition(s: &LeafStream<'_>, i: usize) -> bool {
    let d = s.depth[i];
    let mut expect_method = false;
    for j in i + 1..s.toks.len() {
        if s.depth[j] > d {
            continue;
        }
        if s.depth[j] < d {
            return false;
        }
        match &s.toks[j].tok {
            Tok::Punct('.') => expect_method = true,
            Tok::Ident(m) if expect_method && (m == "unwrap" || m == "expect") => {
                expect_method = false;
            }
            Tok::Punct('?') => {}
            _ => return false,
        }
    }
    true
}

/// The RHS chain of `let x = <chain>;`, at top depth only, for local type
/// inference.
fn rhs_chain(s: &LeafStream<'_>) -> Option<Vec<String>> {
    let eq = s
        .toks
        .iter()
        .enumerate()
        .position(|(i, t)| t.tok == Tok::Punct('=') && s.depth[i] == 0)?;
    let mut chain = Vec::new();
    for j in eq + 1..s.toks.len() {
        if s.depth[j] > 0 {
            continue;
        }
        match &s.toks[j].tok {
            Tok::Ident(id) => chain.push(id.clone()),
            Tok::Punct('.') | Tok::Punct('&') | Tok::Punct(':') | Tok::Punct('*') => {}
            _ => break,
        }
    }
    (!chain.is_empty()).then_some(chain)
}

// ---------------------------------------------------------------------
// Body walker
// ---------------------------------------------------------------------

struct Walker<'a, 'b> {
    reg: &'b Registry<'b>,
    source: &'a SourceFile,
    file: &'a str,
    func: &'b FnItem<'a>,
    facts: &'b mut FnFacts,
    graph: &'b mut LockGraph,
    out: &'b mut Vec<Violation>,
    held_calls: &'b mut Vec<HeldCall>,
    locals: BTreeMap<String, Resolved>,
}

impl<'a> Walker<'a, '_> {
    /// Walks one block's statements with the inherited live guards;
    /// guards bound inside die at block end.
    fn block(&mut self, statements: &[Stmt<'a>], live: &mut Vec<Guard>) {
        let depth = live.len();
        for st in statements {
            self.statement(st, live);
        }
        live.truncate(depth);
    }

    fn statement(&mut self, st: &Stmt<'a>, live: &mut Vec<Guard>) {
        let s = leaf_stream(st);
        let lock_ok = self.source.annotated(st.first_line, 4, "lock-ok:")
            || self.source.file_annotated("lock-ok(file):");
        let is_match_stmt = matches!(s.toks.first().map(|t| &t.tok),
            Some(Tok::Ident(k)) if k.as_str() == "match");

        // `self.dram_shard(h).is_some_and(|shard| shard.lock()…)`: a
        // single-param closure inside a combinator call binds its param
        // to whatever the receiver chain resolves to.
        for i in 0..s.toks.len() {
            if s.toks[i].tok != Tok::Punct('|') || i + 2 >= s.toks.len() {
                continue;
            }
            let Tok::Ident(param) = &s.toks[i + 1].tok else { continue };
            if s.toks[i + 2].tok != Tok::Punct('|') || s.depth[i] == 0 {
                continue;
            }
            // A closure's `|` opens an argument: it starts the group or
            // follows a comma. Anything else is bitwise/pattern or.
            let opens_arg = i == 0
                || s.depth[i - 1] < s.depth[i]
                || s.toks[i - 1].tok == Tok::Punct(',');
            if !opens_arg {
                continue;
            }
            // The enclosing combinator: nearest call ident one level up.
            let Some(j) = (0..i)
                .rev()
                .find(|&j| s.depth[j] + 1 == s.depth[i] && s.is_call[j])
            else {
                continue;
            };
            if !(j > 0 && s.toks[j - 1].tok == Tok::Punct('.')) {
                continue;
            }
            let chain = receiver_chain(&s, j - 1);
            let r = self
                .reg
                .resolve_chain(&chain, self.func.self_ty.as_deref(), &self.locals);
            if !matches!(r, Resolved::Unknown) {
                self.locals.insert(param.clone(), r);
            }
        }

        let mut temp: Vec<Guard> = Vec::new();
        let mut bound_lock: Option<String> = None;
        for i in 0..s.toks.len() {
            let Tok::Ident(id) = &s.toks[i].tok else { continue };
            let line = s.toks[i].line;
            let after_dot = i > 0 && s.toks[i - 1].tok == Tok::Punct('.');

            // drop(x) kills the named guard.
            if id == "drop" && s.is_call[i] && !after_dot {
                if let Some(Tok::Ident(arg)) = s.toks.get(i + 1).map(|t| &t.tok) {
                    live.retain(|g| g.var.as_deref() != Some(arg.as_str()));
                }
                continue;
            }

            // Acquisition: `.lock()`, `.read()`, `.write()` on a receiver
            // that resolves to a lock field.
            let mut handled = false;
            if (id == "lock" || id == "read" || id == "write") && after_dot && s.is_call[i] {
                let chain = receiver_chain(&s, i - 1);
                let resolved =
                    self.reg
                        .resolve_chain(&chain, self.func.self_ty.as_deref(), &self.locals);
                let node = match resolved {
                    Resolved::Lock(node) => {
                        let ok = match (id.as_str(), self.reg.lock_kind_of(&node)) {
                            ("lock", Some(LockKind::Mutex)) => true,
                            ("read" | "write", Some(LockKind::RwLock)) => true,
                            (_, None) => id == "lock",
                            _ => false,
                        };
                        ok.then_some(node)
                    }
                    _ => {
                        // `registry().lock()` — a free fn returning a
                        // static lock is its own node.
                        let free_fn = chain.len() == 1 && i >= 2 && s.is_call[i - 2];
                        let free_node = free_fn.then(|| format!("{}()", chain[0]));
                        if let Some(n) = free_node
                            .filter(|n| self.reg.lock_kind_of(n).is_some())
                        {
                            Some(n)
                        } else if id == "lock" {
                            // `.lock()` on an unresolved receiver is still
                            // a mutex by contract; fall back to the
                            // unique-field map or an opaque per-name node.
                            Some(
                                chain
                                    .last()
                                    .and_then(|l| {
                                        self.reg
                                            .unique_lock_fields
                                            .get(l.as_str())
                                            .cloned()
                                    })
                                    .unwrap_or_else(|| {
                                        format!(
                                            "?.{}",
                                            chain.last().cloned().unwrap_or_default()
                                        )
                                    }),
                            )
                        } else {
                            None
                        }
                    }
                };
                if let Some(node) = node {
                    self.acquire(&node, line, live, &mut temp);
                    if terminal_acquisition(&s, i) {
                        bound_lock = Some(node);
                    }
                    handled = true;
                }
            }
            if handled || !s.is_call[i] {
                continue;
            }

            // Flush pipeline endpoints.
            if PIPELINE_METHODS.contains(&id.as_str()) {
                if (!live.is_empty() || !temp.is_empty()) && !lock_ok {
                    push(
                        self.out,
                        "submit-to-complete",
                        self.file,
                        line,
                        format!(
                            "lock(s) {:?} held at flush pipeline call `{id}`; the \
                             submit-to-complete interval must run with all shard \
                             locks released",
                            held_names(live, &temp)
                        ),
                    );
                }
                self.facts.does_pipeline = true;
                continue;
            }

            if after_dot {
                let chain = receiver_chain(&s, i - 1);
                let via_io_field = chain.iter().any(|c| IO_FIELDS.contains(&c.as_str()));
                if via_io_field || IO_METHODS.contains(&id.as_str()) {
                    // Direct device I/O.
                    if (!live.is_empty() || !temp.is_empty()) && !lock_ok {
                        push(
                            self.out,
                            "lock-across-io",
                            self.file,
                            line,
                            format!(
                                "lock(s) {:?} held across device I/O `{id}`; release \
                                 every guard before the device call or annotate \
                                 `// lock-ok: why`",
                                held_names(live, &temp)
                            ),
                        );
                    }
                    self.facts.does_io = true;
                } else {
                    // Same-crate method call: resolve the receiver type.
                    let key: Option<FnKey> = match chain.first().map(String::as_str) {
                        Some("self") if chain.len() == 1 => {
                            Some((self.func.self_ty.clone(), id.clone()))
                        }
                        _ => match self.reg.resolve_chain(
                            &chain,
                            self.func.self_ty.as_deref(),
                            &self.locals,
                        ) {
                            Resolved::Type(ty) => Some((Some(ty), id.clone())),
                            _ => None,
                        },
                    };
                    if let Some(key) = key {
                        if self.reg.fn_keys.contains(&key) {
                            self.push_call(key, line, live, &temp, lock_ok);
                        }
                    }
                }
            } else {
                // Free-fn call within the crate.
                let key: FnKey = (None, id.clone());
                if self.reg.fn_keys.contains(&key) {
                    self.push_call(key, line, live, &temp, lock_ok);
                }
            }
        }

        // `if let Some(shard) = self.dram_shard(h) { shard.lock() … }`:
        // record the binding's type *before* walking the sub-blocks, so
        // receivers inside them resolve.
        let binds = st.let_bindings();
        if bound_lock.is_none() && binds.len() == 1 {
            if let Some(chain) = rhs_chain(&s) {
                let r = self
                    .reg
                    .resolve_chain(&chain, self.func.self_ty.as_deref(), &self.locals);
                if !matches!(r, Resolved::Unknown) {
                    self.locals.insert(binds[0].clone(), r);
                }
            }
        }

        // Sub-blocks (if/else bodies, match arms, loop bodies) see the
        // inherited guards; a `match` scrutinee's temporary guard lives
        // through the whole match body.
        if !st.blocks.is_empty() {
            let depth = live.len();
            if is_match_stmt {
                live.extend(temp.iter().cloned());
            }
            for b in &st.blocks {
                let sub = stmts(b);
                self.block(&sub, live);
            }
            live.truncate(depth);
        }

        // A terminal acquisition bound by `let` stays live.
        if let Some(node) = bound_lock {
            if let Some(var) = binds.first() {
                live.retain(|g| g.var.as_deref() != Some(var.as_str()));
                live.push(Guard {
                    var: Some(var.clone()),
                    lock: node,
                });
            }
        }
    }

    fn acquire(&mut self, node: &str, line: u32, live: &[Guard], temp: &mut Vec<Guard>) {
        let kind = match self.reg.lock_kind_of(node) {
            Some(LockKind::Mutex) => "Mutex",
            Some(LockKind::RwLock) => "RwLock",
            None => "?",
        };
        self.graph.nodes.entry(node.to_string()).or_insert(kind);
        self.facts.acquires.insert(node.to_string());
        for g in live.iter().chain(temp.iter()) {
            if g.lock != node {
                self.graph
                    .edges
                    .entry((g.lock.clone(), node.to_string()))
                    .or_insert_with(|| format!("{}:{}", self.file, line));
            } else if self.reg.lock_kind_of(node).is_some()
                && !self.reg.is_collection(node)
                && !self.source.annotated(line, 4, "lock-ok:")
            {
                push(
                    self.out,
                    "lock-cycle",
                    self.file,
                    line,
                    format!(
                        "`{node}` acquired while already held (self-deadlock on a \
                         non-reentrant lock); if the instances are provably \
                         distinct, annotate `// lock-ok: why`"
                    ),
                );
            }
        }
        temp.push(Guard {
            var: None,
            lock: node.to_string(),
        });
    }

    fn push_call(&mut self, key: FnKey, line: u32, live: &[Guard], temp: &[Guard], lock_ok: bool) {
        self.facts.calls.push(key.clone());
        let held = held_names(live, temp);
        if !held.is_empty() {
            self.held_calls.push(HeldCall {
                callee: key,
                held,
                file: self.file.to_string(),
                line,
                annotated: lock_ok,
            });
        }
    }
}

fn held_names(live: &[Guard], temp: &[Guard]) -> Vec<String> {
    let mut v: Vec<String> = live
        .iter()
        .chain(temp.iter())
        .map(|g| g.lock.clone())
        .collect();
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse::parse;

    fn run(crate_name: &str, files: &[(&str, &str)]) -> (Vec<Violation>, LockGraph) {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(_, text)| parse(text).unwrap())
            .collect();
        let cf: Vec<CrateFile<'_>> = parsed
            .iter()
            .zip(files)
            .map(|(sf, (path, _))| CrateFile { path, source: sf })
            .collect();
        let mut out = Vec::new();
        let graph = analyze(crate_name, &cf, &mut out);
        (out, graph)
    }

    const STRUCTS: &str =
        "struct Engine {\n    writer: Mutex<W>,\n    meta: Mutex<M>,\n    backend: B,\n}\n";

    #[test]
    fn guard_live_across_later_io_statement_is_flagged() {
        // The case the old same-line regex provably missed: the guard is
        // bound on one line, the device call happens three lines later.
        let src = format!(
            "{STRUCTS}impl Engine {{\n    fn seal(&self) -> Result<(), E> {{\n        \
             let w = self.writer.lock();\n        let x = 1;\n        let _ = x;\n        \
             self.backend.write_region(x)?;\n        Ok(())\n    }}\n}}\n"
        );
        let (v, _) = run("core", &[("crates/core/src/engine.rs", &src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-across-io");
        assert_eq!(v[0].line, 11, "{v:?}");
    }

    #[test]
    fn dropped_guard_clears_the_liveness() {
        let src = format!(
            "{STRUCTS}impl Engine {{\n    fn seal(&self) -> Result<(), E> {{\n        \
             let w = self.writer.lock();\n        drop(w);\n        \
             self.backend.write_region(1)?;\n        Ok(())\n    }}\n}}\n"
        );
        let (v, _) = run("core", &[("crates/core/src/engine.rs", &src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn block_scoped_guard_dies_at_block_end() {
        let src = format!(
            "{STRUCTS}impl Engine {{\n    fn seal(&self) -> Result<(), E> {{\n        \
             let job = {{ let w = self.writer.lock(); w.detach() }};\n        \
             self.backend.write_region(1)?;\n        Ok(())\n    }}\n}}\n"
        );
        let (v, _) = run("core", &[("crates/core/src/engine.rs", &src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_order_cycle_is_detected() {
        let src = format!(
            "{STRUCTS}impl Engine {{\n    fn ab(&self) {{\n        \
             let a = self.writer.lock();\n        let b = self.meta.lock();\n    }}\n    \
             fn ba(&self) {{\n        let b = self.meta.lock();\n        \
             let a = self.writer.lock();\n    }}\n}}\n"
        );
        let (v, g) = run("core", &[("crates/core/src/engine.rs", &src)]);
        assert!(
            v.iter().any(|x| x.rule == "lock-cycle" && x.msg.contains("cycle")),
            "{v:?}"
        );
        assert!(g.edges.contains_key(&("Engine.writer".into(), "Engine.meta".into())));
        assert!(g.edges.contains_key(&("Engine.meta".into(), "Engine.writer".into())));
    }

    #[test]
    fn consistent_order_is_clean_and_graphed() {
        let src = format!(
            "{STRUCTS}impl Engine {{\n    fn ab(&self) {{\n        \
             let a = self.writer.lock();\n        let b = self.meta.lock();\n    }}\n    \
             fn ab2(&self) {{\n        let a = self.writer.lock();\n        \
             let b = self.meta.lock();\n    }}\n}}\n"
        );
        let (v, g) = run("core", &[("crates/core/src/engine.rs", &src)]);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.nodes.get("Engine.writer"), Some(&"Mutex"));
    }

    #[test]
    fn transitive_io_through_a_callee_is_flagged() {
        // Holding the writer across a call to a fn that does I/O — only
        // visible with the interprocedural pass; the old regex had no
        // concept of callees at all.
        let src = format!(
            "{STRUCTS}impl Engine {{\n    fn outer(&self) {{\n        \
             let w = self.writer.lock();\n        self.evict_one();\n    }}\n    \
             fn evict_one(&self) {{\n        let _ = self.backend.discard(1);\n    }}\n}}\n"
        );
        let (v, _) = run("core", &[("crates/core/src/engine.rs", &src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-across-io");
        assert!(v[0].msg.contains("evict_one"));
    }

    #[test]
    fn lock_ok_annotation_waives_intentional_backpressure() {
        let src = format!(
            "{STRUCTS}impl Engine {{\n    fn outer(&self) {{\n        \
             let w = self.writer.lock();\n        \
             // lock-ok: inline eviction backpressure.\n        \
             self.evict_one();\n    }}\n    \
             fn evict_one(&self) {{\n        let _ = self.backend.discard(1);\n    }}\n}}\n"
        );
        let (v, _) = run("core", &[("crates/core/src/engine.rs", &src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_ok_file_waiver_covers_a_translation_layer() {
        // A layer whose whole point is "device ops run under the mapping
        // lock" carries one file-level waiver instead of one per call.
        let src = format!(
            "// lock-ok(file): state lock serializes the device write pointer.\n\
             {STRUCTS}impl Engine {{\n    fn outer(&self) {{\n        \
             let w = self.writer.lock();\n        \
             let _ = self.backend.discard(1);\n    }}\n}}\n"
        );
        let (v, _) = run("core", &[("crates/core/src/backend/middle.rs", &src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn closure_param_inherits_the_receiver_chain_resolution() {
        // `self.dram_shard(h).is_some_and(|shard| shard.lock()…)` must
        // resolve to the dram field, not an opaque `?.shard` node.
        let src = "struct Cache {\n    dram: Vec<Mutex<u32>>,\n}\n\
                   impl Cache {\n    fn dram_shard(&self, h: u64) -> Option<&Mutex<u32>> {\n        \
                   self.dram.get(h as usize)\n    }\n    \
                   fn del(&self, h: u64) -> bool {\n        \
                   self.dram_shard(h).is_some_and(|shard| shard.lock().eq(&h))\n    }\n}\n";
        let (v, g) = run("core", &[("crates/core/src/engine.rs", src)]);
        assert!(v.is_empty(), "{v:?}");
        assert!(g.nodes.contains_key("Cache.dram"), "{:?}", g.nodes);
        assert!(!g.nodes.keys().any(|n| n.starts_with('?')), "{:?}", g.nodes);
    }

    #[test]
    fn free_fn_static_lock_getter_resolves_to_a_named_node() {
        // `registry().lock()` — the getter fn itself is the node, not an
        // opaque `?.registry`.
        let src = "fn registry() -> &'static Mutex<Vec<u32>> {\n    \
                   static R: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n    &R\n}\n\
                   fn record(v: u32) {\n    registry().lock().push(v);\n}\n";
        let (v, g) = run("sim", &[("crates/sim/src/trace.rs", src)]);
        assert!(v.is_empty(), "{v:?}");
        assert!(g.nodes.contains_key("registry()"), "{:?}", g.nodes);
        assert!(!g.nodes.keys().any(|n| n.starts_with('?')), "{:?}", g.nodes);
    }

    #[test]
    fn pipeline_call_under_guard_is_submit_to_complete() {
        let src = format!(
            "{STRUCTS}impl Engine {{\n    fn seal(&self) {{\n        \
             let w = self.writer.lock();\n        let t = self.submit_flush(1, 2);\n    }}\n    \
             fn submit_flush(&self, a: u32, b: u32) -> u32 {{ a + b }}\n}}\n"
        );
        let (v, _) = run("core", &[("crates/core/src/engine.rs", &src)]);
        assert!(v.iter().any(|x| x.rule == "submit-to-complete"), "{v:?}");
    }

    #[test]
    fn self_deadlock_on_scalar_mutex_flagged_but_collections_pass() {
        let src = "struct S {\n    m: Mutex<u32>,\n    shards: Vec<Mutex<u32>>,\n}\n\
                   impl S {\n    fn bad(&self) {\n        let a = self.m.lock();\n        \
                   let b = self.m.lock();\n    }\n    \
                   fn ok(&self) {\n        let a = self.shards.lock();\n        \
                   let b = self.shards.lock();\n    }\n}\n";
        let (v, _) = run("core", &[("crates/core/src/x.rs", src)]);
        let selfs: Vec<_> = v.iter().filter(|x| x.msg.contains("already held")).collect();
        assert_eq!(selfs.len(), 1, "{v:?}");
        assert_eq!(selfs[0].line, 8);
    }

    #[test]
    fn read_path_must_not_reach_the_writer_even_transitively() {
        let src = "struct LogCache {\n    writer: Mutex<W>,\n}\n\
                   impl LogCache {\n    pub fn get(&self) {\n        self.helper();\n    }\n    \
                   fn helper(&self) {\n        let w = self.writer.lock();\n    }\n    \
                   pub fn set(&self) {\n        let w = self.writer.lock();\n    }\n}\n";
        let (v, _) = run("core", &[("crates/core/src/engine.rs", src)]);
        let rp: Vec<_> = v.iter().filter(|x| x.msg.contains("read-path")).collect();
        assert_eq!(rp.len(), 1, "{v:?}");
        assert!(rp[0].msg.contains("`get`"));
    }

    #[test]
    fn same_statement_guard_io_still_fires() {
        // The old regex rule's case must keep working: guard and device
        // call in one statement.
        let src = "struct Fs {\n    inner: Mutex<Inner>,\n    dev: D,\n}\n\
                   impl Fs {\n    fn write(&self) -> Result<(), E> {\n        \
                   let t = self.inner.lock().alloc.dev.write(1)?;\n        Ok(())\n    }\n}\n";
        let (v, _) = run("f2fs-lite", &[("crates/f2fs-lite/src/fs.rs", src)]);
        assert!(v.iter().any(|x| x.rule == "lock-across-io"), "{v:?}");
    }

    #[test]
    fn accessor_method_resolves_to_its_lock_field() {
        // `self.dram_shard(h).lock()` — the accessor's return type maps
        // back to the `dram` field, so order edges stay precise.
        let src = "struct Cache {\n    dram: Vec<Mutex<D>>,\n    writer: Mutex<W>,\n}\n\
                   impl Cache {\n    fn dram_shard(&self, h: u64) -> &Mutex<D> {\n        \
                   &self.dram[0]\n    }\n    \
                   fn demote(&self, h: u64) {\n        let w = self.writer.lock();\n        \
                   let s = self.dram_shard(h).lock();\n    }\n}\n";
        let (v, g) = run("core", &[("crates/core/src/engine.rs", src)]);
        assert!(v.is_empty(), "{v:?}");
        assert!(
            g.edges.contains_key(&("Cache.writer".into(), "Cache.dram".into())),
            "{:?}",
            g.edges
        );
    }

    #[test]
    fn match_scrutinee_guard_lives_through_the_arms() {
        let src = format!(
            "{STRUCTS}impl Engine {{\n    fn f(&self) {{\n        \
             match self.meta.lock().state() {{\n            \
             1 => self.backend.discard(1),\n            _ => 0,\n        }};\n    }}\n}}\n"
        );
        let (v, _) = run("core", &[("crates/core/src/engine.rs", &src)]);
        assert!(v.iter().any(|x| x.rule == "lock-across-io"), "{v:?}");
    }
}
