//! Atomic-ordering inventory and justification rules.
//!
//! Every atomic access site in first-party `src/` code is inventoried
//! with its `Ordering` (the table lands in ANALYSIS.md), and cross-checked
//! against the workspace's concurrency discipline:
//!
//! * Inside `crates/core/src/protocol/` — the loom-modeled publication
//!   protocol — `Ordering::Relaxed` is forbidden outright. Annotations do
//!   not override this: protocol types exist precisely so that ordering
//!   decisions live in loom-checked code.
//! * Outside protocol, `Relaxed` requires a `relaxed-ok:` justification
//!   (same line or up to four lines above) or a file-level
//!   `relaxed-ok(file):` waiver.
//! * Outside protocol, any *stronger* ordering requires an `ordering-ok:`
//!   justification: raw Acquire/Release choreography belongs in the
//!   protocol module where loom models it, so a stray `Acquire` in a
//!   maintainer loop is either misrouted or needs to say why it is safe
//!   where it is.

use super::model::build;
use super::parse::{SourceFile, Tok, Token, Tree};
use super::{push, Violation};

/// One atomic access site, for the ANALYSIS.md inventory.
pub struct AtomicSite {
    pub file: String,
    pub line: u32,
    pub op: String,
    pub ordering: String,
    /// Carries an explicit `relaxed-ok:`/`ordering-ok:` justification.
    /// Protocol sites are `false`: they are justified by the loom model,
    /// not by comments.
    pub justified: bool,
}

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic method idents used to label the `op` column. Nearest one before
/// the `Ordering::` path wins.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
];

/// Runs the analysis over one file, returning its inventory rows.
pub fn analyze(file: &str, sf: &SourceFile, out: &mut Vec<Violation>) -> Vec<AtomicSite> {
    if !file.contains("/src/") {
        return Vec::new();
    }
    let in_protocol = file.starts_with("crates/core/src/protocol");
    let relaxed_file_waiver = sf.file_annotated("relaxed-ok(file):");
    let ordering_file_waiver = sf.file_annotated("ordering-ok(file):");

    // Test functions may use whatever orderings make the test readable.
    let m = build(sf);
    let test_ranges: Vec<(u32, u32)> = m
        .fns
        .iter()
        .filter(|f| f.is_test)
        .filter_map(|f| f.body.map(|b| (b.open_line, b.close_line)))
        .collect();
    let in_test = |line: u32| test_ranges.iter().any(|(a, b)| line >= *a && line <= *b);

    let mut leaves: Vec<&Token> = Vec::new();
    flatten(&sf.trees, &mut leaves);

    let mut sites = Vec::new();
    for i in 0..leaves.len() {
        // Match `Ordering :: <ord>`.
        let Tok::Ident(head) = &leaves[i].tok else { continue };
        if head != "Ordering" || i + 3 >= leaves.len() {
            continue;
        }
        if leaves[i + 1].tok != Tok::Punct(':') || leaves[i + 2].tok != Tok::Punct(':') {
            continue;
        }
        let Tok::Ident(ord) = &leaves[i + 3].tok else { continue };
        if !ORDERINGS.contains(&ord.as_str()) {
            continue;
        }
        let line = leaves[i].line;
        if in_test(line) {
            continue;
        }
        let op = nearest_op(&leaves, i);
        let relaxed = ord == "Relaxed";
        let justified = if relaxed {
            relaxed_file_waiver || sf.annotated(line, 4, "relaxed-ok:")
        } else {
            ordering_file_waiver || sf.annotated(line, 4, "ordering-ok:")
        };

        if in_protocol {
            if relaxed {
                push(
                    out,
                    "core-protocol-orderings",
                    file,
                    line,
                    format!(
                        "`Ordering::Relaxed` on `{op}` inside the loom-modeled protocol \
                         module; protocol types must use acquire/release or stronger \
                         (annotations do not override this rule)"
                    ),
                );
            }
            sites.push(AtomicSite {
                file: file.to_string(),
                line,
                op,
                ordering: ord.clone(),
                justified: false,
            });
            continue;
        }

        if relaxed && !justified {
            push(
                out,
                "relaxed-needs-justification",
                file,
                line,
                format!(
                    "`Ordering::Relaxed` on `{op}` without a `relaxed-ok:` comment \
                     (same line or up to 4 lines above) or `relaxed-ok(file):` waiver"
                ),
            );
        } else if !relaxed && !justified {
            push(
                out,
                "ordering-outside-protocol",
                file,
                line,
                format!(
                    "`Ordering::{ord}` on `{op}` outside crates/core/src/protocol/; \
                     route the choreography through a loom-modeled protocol type, or \
                     justify the site with an `ordering-ok:` comment"
                ),
            );
        }
        sites.push(AtomicSite {
            file: file.to_string(),
            line,
            op,
            ordering: ord.clone(),
            justified,
        });
    }
    sites
}

fn flatten<'a>(trees: &'a [Tree], out: &mut Vec<&'a Token>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => out.push(tok),
            Tree::Group(g) => flatten(&g.children, out),
        }
    }
}

/// The nearest atomic-method ident before index `i`, searching a short
/// window backwards; `atomic` when the call shape is unusual.
fn nearest_op(leaves: &[&Token], i: usize) -> String {
    for j in (i.saturating_sub(40)..i).rev() {
        if let Tok::Ident(id) = &leaves[j].tok {
            if ATOMIC_OPS.contains(&id.as_str()) {
                return id.clone();
            }
        }
    }
    "atomic".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse::parse;

    fn run(file: &str, src: &str) -> (Vec<Violation>, Vec<AtomicSite>) {
        let sf = parse(src).unwrap();
        let mut out = Vec::new();
        let sites = analyze(file, &sf, &mut out);
        (out, sites)
    }

    #[test]
    fn unjustified_relaxed_is_flagged_and_inventoried() {
        let src = "fn f(c: &AtomicU64) -> u64 {\n    c.fetch_add(1, Ordering::Relaxed)\n}\n";
        let (v, s) = run("crates/sim/src/stats.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "relaxed-needs-justification");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].op, "fetch_add");
        assert_eq!(s[0].ordering, "Relaxed");
        assert!(!s[0].justified);
    }

    #[test]
    fn relaxed_ok_comment_justifies_a_site() {
        let src = "fn f(c: &AtomicU64) -> u64 {\n    \
                   // relaxed-ok: monotonic counter, read only for stats.\n    \
                   c.fetch_add(1, Ordering::Relaxed)\n}\n";
        let (v, s) = run("crates/sim/src/stats.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert!(s[0].justified);
    }

    #[test]
    fn file_waiver_covers_every_relaxed_site() {
        let src = "// relaxed-ok(file): pure counters, no cross-thread ordering.\n\
                   fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n    \
                   c.store(0, Ordering::Relaxed);\n}\n";
        let (v, s) = run("crates/sim/src/stats.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn relaxed_inside_protocol_is_forbidden_even_with_annotation() {
        let src = "fn publish(g: &AtomicU64) {\n    \
                   // relaxed-ok: trust me.\n    \
                   g.store(1, Ordering::Relaxed);\n}\n";
        let (v, _) = run("crates/core/src/protocol/generation.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "core-protocol-orderings");
    }

    #[test]
    fn strong_orderings_inside_protocol_need_no_comment() {
        let src = "fn publish(g: &AtomicU64) {\n    g.store(1, Ordering::Release);\n    \
                   let _ = g.load(Ordering::Acquire);\n}\n";
        let (v, s) = run("crates/core/src/protocol/generation.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn strong_ordering_outside_protocol_needs_ordering_ok() {
        let src = "fn f(flag: &AtomicBool) -> bool {\n    flag.load(Ordering::Acquire)\n}\n";
        let (v, _) = run("crates/core/src/maintainer.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ordering-outside-protocol");
        let src_ok = "fn f(flag: &AtomicBool) -> bool {\n    \
                      // ordering-ok: pairs with the Release store in stop().\n    \
                      flag.load(Ordering::Acquire)\n}\n";
        let (v, s) = run("crates/core/src/maintainer.rs", src_ok);
        assert!(v.is_empty(), "{v:?}");
        assert!(s[0].justified);
    }

    #[test]
    fn test_functions_are_exempt_but_not_inventoried() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   c.store(1, Ordering::SeqCst);\n    }\n}\n";
        let (v, s) = run("crates/core/src/metrics.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert!(s.is_empty());
    }

    #[test]
    fn non_src_files_are_out_of_scope() {
        let src = "fn t() {\n    c.store(1, Ordering::SeqCst);\n}\n";
        let (v, s) = run("crates/core/tests/loom.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert!(s.is_empty());
    }
}
