//! The AST-lite model every analysis consumes: items (functions with
//! their impl context, struct fields with their principal types, unsafe
//! sites) extracted from the [`super::parse`] token forest, plus a
//! statement splitter for control-flow-aware walks of function bodies.
//!
//! This is deliberately *not* a full Rust AST. It models exactly what the
//! analyses need to be structurally accurate where the old regex lints
//! were textual: which function a line belongs to, whether it is test
//! code, what type `self` is, which fields are `Mutex`/`RwLock`, and
//! where statements begin and end (so a guard bound by `let` can be
//! tracked live across the statements — and early exits — that follow).

use super::parse::{Group, SourceFile, Tok, Token, Tree};

/// A function item with its context.
#[derive(Debug)]
pub struct FnItem<'a> {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// The `{ … }` body group; `None` for trait-method declarations.
    pub body: Option<&'a Group>,
    /// Principal ident of the surrounding `impl` type, if any.
    pub self_ty: Option<String>,
    /// Principal ident of the return type (last path segment before any
    /// generic arguments), if the signature declares one.
    pub ret_ty: Option<String>,
    /// Inside a `#[cfg(test)]` module or carrying `#[test]`.
    pub is_test: bool,
}

/// One struct field: `Struct.field: PrincipalTy` plus whether the type
/// wraps a lock and/or a collection.
#[derive(Debug)]
pub struct FieldItem {
    pub struct_name: String,
    pub field: String,
    /// Last meaningful path segment of the field type (`Mutex`, `Vec`,
    /// `RegionSlot`, …) — the *outermost* wrapper.
    pub principal: String,
    /// Idents appearing anywhere in the type (for `Vec<Mutex<…>>` and
    /// element-type resolution).
    pub type_idents: Vec<String>,
    #[allow(dead_code)] // part of the model API; read by tests
    pub line: u32,
}

impl FieldItem {
    /// The lock kind this field holds, if any (directly or inside a
    /// collection).
    pub fn lock_kind(&self) -> Option<LockKind> {
        if self.type_idents.iter().any(|i| i == "Mutex") {
            Some(LockKind::Mutex)
        } else if self.type_idents.iter().any(|i| i == "RwLock") {
            Some(LockKind::RwLock)
        } else {
            None
        }
    }

    /// Whether the lock is one of many instances (a `Vec`/array of locks,
    /// or a lock nested in an element type) — per-instance locks may be
    /// acquired "twice" on *distinct* instances without self-deadlock.
    pub fn is_collection(&self) -> bool {
        self.principal == "Vec" || self.principal == "Box" || self.principal.is_empty()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// An `unsafe` occurrence.
#[derive(Debug)]
pub struct UnsafeItem {
    pub line: u32,
    /// `block`, `fn`, `impl` or `trait`.
    pub kind: &'static str,
    /// Enclosing function name, when inside one.
    pub context: Option<String>,
    pub is_test: bool,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileModel<'a> {
    pub fns: Vec<FnItem<'a>>,
    pub fields: Vec<FieldItem>,
    pub unsafes: Vec<UnsafeItem>,
}

/// Builds the model for a parsed file.
pub fn build<'a>(file: &'a SourceFile) -> FileModel<'a> {
    let mut model = FileModel::default();
    walk_items(&file.trees, &Ctx::default(), &mut model);
    model
}

#[derive(Clone, Default)]
struct Ctx {
    self_ty: Option<String>,
    in_test: bool,
    in_fn: Option<String>,
}

fn walk_items<'a>(trees: &'a [Tree], ctx: &Ctx, out: &mut FileModel<'a>) {
    let mut i = 0usize;
    // Pending attribute state: `#[cfg(test)]` / `#[test]` seen since the
    // last item.
    let mut attr_test = false;
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(Token { tok: Tok::Punct('#'), .. }) => {
                // `#[…]` — inspect for test markers; attaches to the next
                // item at this level.
                if let Some(Tree::Group(g)) = trees.get(i + 1) {
                    if g.delim == '[' && attr_is_test(&g.children) {
                        attr_test = true;
                    }
                    i += 2;
                    continue;
                }
                i += 1;
            }
            Tree::Leaf(Token { tok: Tok::Ident(kw), line }) if kw == "mod" => {
                // `mod name { … }` — recurse with test-ness.
                let name = trees.get(i + 1).and_then(Tree::ident).unwrap_or("");
                if let Some(Tree::Group(g)) = trees.get(i + 2) {
                    if g.delim == '{' {
                        let sub = Ctx {
                            in_test: ctx.in_test || attr_test || name == "tests",
                            self_ty: None,
                            in_fn: None,
                        };
                        walk_items(&g.children, &sub, out);
                        i += 3;
                        attr_test = false;
                        continue;
                    }
                }
                let _ = line;
                i += 1;
                attr_test = false;
            }
            Tree::Leaf(Token { tok: Tok::Ident(kw), .. }) if kw == "impl" => {
                let (self_ty, body_idx) = parse_impl_header(trees, i);
                if let Some(Tree::Group(g)) = trees.get(body_idx) {
                    if g.delim == '{' {
                        let sub = Ctx {
                            self_ty,
                            in_test: ctx.in_test || attr_test,
                            in_fn: None,
                        };
                        walk_items(&g.children, &sub, out);
                        i = body_idx + 1;
                        attr_test = false;
                        continue;
                    }
                }
                i += 1;
                attr_test = false;
            }
            Tree::Leaf(Token { tok: Tok::Ident(kw), line }) if kw == "struct" => {
                if let Some(name) = trees.get(i + 1).and_then(Tree::ident) {
                    // Find the brace group before the next `;` (tuple or
                    // unit structs have none).
                    let mut j = i + 2;
                    while j < trees.len() {
                        match &trees[j] {
                            Tree::Group(g) if g.delim == '{' => {
                                parse_struct_fields(name, &g.children, out);
                                break;
                            }
                            Tree::Leaf(Token { tok: Tok::Punct(';'), .. }) => break,
                            _ => j += 1,
                        }
                    }
                }
                let _ = line;
                i += 1;
                attr_test = false;
            }
            Tree::Leaf(Token { tok: Tok::Ident(kw), line }) if kw == "unsafe" => {
                // `unsafe { … }` block, `unsafe fn`, `unsafe impl`, …
                let kind = match trees.get(i + 1) {
                    Some(Tree::Group(g)) if g.delim == '{' => "block",
                    Some(Tree::Leaf(Token { tok: Tok::Ident(k), .. })) => match k.as_str() {
                        "fn" => "fn",
                        "impl" => "impl",
                        "trait" => "trait",
                        _ => "block",
                    },
                    _ => "block",
                };
                out.unsafes.push(UnsafeItem {
                    line: *line,
                    kind,
                    context: ctx.in_fn.clone(),
                    is_test: ctx.in_test || attr_test,
                });
                i += 1;
                // Fall through: an `unsafe fn` still parses as a fn below;
                // an unsafe block group recurses below.
            }
            Tree::Leaf(Token { tok: Tok::Ident(kw), line }) if kw == "fn" => {
                let name = trees
                    .get(i + 1)
                    .and_then(Tree::ident)
                    .unwrap_or("")
                    .to_string();
                // Scan forward for the body group; capture `-> RetTy`.
                let mut j = i + 2;
                let mut ret_ty = None;
                let mut body = None;
                let mut saw_arrow = false;
                let mut ret_idents: Vec<String> = Vec::new();
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group(g) if g.delim == '{' => {
                            body = Some(g);
                            break;
                        }
                        Tree::Leaf(Token { tok: Tok::Punct(';'), .. }) => break,
                        Tree::Leaf(Token { tok: Tok::Punct('>'), .. })
                            if trees.get(j - 1).and_then(Tree::punct) == Some('-') =>
                        {
                            saw_arrow = true;
                        }
                        Tree::Leaf(Token { tok: Tok::Ident(id), .. })
                            if saw_arrow && id != "where" && id != "dyn" && id != "impl" =>
                        {
                            ret_idents.push(id.clone());
                        }
                        Tree::Leaf(Token { tok: Tok::Ident(id), .. }) if id == "where" => {
                            saw_arrow = false;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if !ret_idents.is_empty() {
                    // Principal = the innermost meaningful segment for
                    // resolution purposes: prefer a lock wrapper if one
                    // appears, else the last ident.
                    ret_ty = ret_idents
                        .iter()
                        .find(|t| *t == "Mutex" || *t == "RwLock")
                        .cloned()
                        .or_else(|| ret_idents.last().cloned());
                }
                let is_test = ctx.in_test || attr_test;
                if let Some(b) = body {
                    // Recurse into the body for nested items (closures'
                    // unsafe blocks, nested fns) with fn context.
                    let sub = Ctx {
                        self_ty: ctx.self_ty.clone(),
                        in_test: is_test,
                        in_fn: Some(name.clone()),
                    };
                    walk_items(&b.children, &sub, out);
                }
                out.fns.push(FnItem {
                    name,
                    line: *line,
                    body,
                    self_ty: ctx.self_ty.clone(),
                    ret_ty,
                    is_test,
                });
                i = j + 1;
                attr_test = false;
            }
            Tree::Group(g) => {
                // Stray group at item level (e.g. macro bodies): recurse
                // so unsafe blocks inside are still seen.
                walk_items(&g.children, ctx, out);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

fn attr_is_test(attr: &[Tree]) -> bool {
    // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[tokio::test]`
    fn contains_test(trees: &[Tree]) -> bool {
        trees.iter().any(|t| match t {
            Tree::Leaf(Token { tok: Tok::Ident(s), .. }) => s == "test",
            Tree::Group(g) => contains_test(&g.children),
            Tree::Leaf(_) => false,
        })
    }
    match attr.first().and_then(Tree::ident) {
        Some("test") => true,
        Some("cfg") => contains_test(attr),
        _ => false,
    }
}

/// Parses an `impl` header starting at `trees[i]` (the `impl` keyword).
/// Returns the principal self-type ident and the index of the body group.
fn parse_impl_header(trees: &[Tree], i: usize) -> (Option<String>, usize) {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < trees.len() {
        match &trees[j] {
            Tree::Group(g) if g.delim == '{' && angle == 0 => {
                return (if saw_for { after_for } else { last_ident }, j);
            }
            Tree::Leaf(Token { tok: Tok::Punct('<'), .. }) => angle += 1,
            Tree::Leaf(Token { tok: Tok::Punct('>'), .. }) => angle -= 1,
            Tree::Leaf(Token { tok: Tok::Ident(id), .. }) if angle == 0 => {
                if id == "for" {
                    saw_for = true;
                } else if id == "where" {
                    // type idents end here
                } else if saw_for {
                    after_for = Some(id.clone());
                } else {
                    last_ident = Some(id.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (None, j)
}

fn parse_struct_fields(struct_name: &str, body: &[Tree], out: &mut FileModel<'_>) {
    // Fields are `vis? name : type ,` at the top level of the braces.
    let mut i = 0usize;
    while i < body.len() {
        // Skip attributes.
        if body[i].punct() == Some('#') {
            i += 2;
            continue;
        }
        // `pub` / `pub(crate)`.
        if body[i].ident() == Some("pub") {
            i += 1;
            if matches!(body.get(i), Some(Tree::Group(g)) if g.delim == '(') {
                i += 1;
            }
            continue;
        }
        let Some(name) = body[i].ident() else {
            i += 1;
            continue;
        };
        if body.get(i + 1).and_then(Tree::punct) != Some(':') {
            i += 1;
            continue;
        }
        let line = body[i].line();
        // Collect type idents until the `,` at angle-depth 0.
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut type_idents = Vec::new();
        let mut principal = String::new();
        while j < body.len() {
            match &body[j] {
                Tree::Leaf(Token { tok: Tok::Punct(','), .. }) if angle <= 0 => break,
                Tree::Leaf(Token { tok: Tok::Punct('<'), .. }) => angle += 1,
                Tree::Leaf(Token { tok: Tok::Punct('>'), .. }) => angle -= 1,
                Tree::Leaf(Token { tok: Tok::Ident(id), .. }) => {
                    if principal.is_empty() && angle == 0 {
                        principal = id.clone();
                    }
                    type_idents.push(id.clone());
                }
                Tree::Group(g) => {
                    // Array types `[Mutex<()>; 3]`.
                    collect_idents(&g.children, &mut type_idents);
                }
                _ => {}
            }
            j += 1;
        }
        // Path types like `sim::aio::IoHandle`: principal should be the
        // *last* top-level segment before generics, but the first segment
        // heuristic breaks on paths; fix up: if the collected idents form
        // a path (`::`), prefer the last pre-generic segment.
        if let Some(k) = path_principal(&body[i + 2..j]) {
            principal = k;
        }
        out.fields.push(FieldItem {
            struct_name: struct_name.to_string(),
            field: name.to_string(),
            principal,
            type_idents,
            line,
        });
        i = j + 1;
    }
}

/// Last angle-depth-0 ident of a type token run (the principal segment of
/// `std::sync::Mutex<T>` is `Mutex`; of `[Mutex<()>; 3]` it is none —
/// empty principal marks array types).
fn path_principal(trees: &[Tree]) -> Option<String> {
    let mut angle = 0i32;
    let mut last = None;
    for t in trees {
        match t {
            Tree::Leaf(Token { tok: Tok::Punct('<'), .. }) => angle += 1,
            Tree::Leaf(Token { tok: Tok::Punct('>'), .. }) => angle -= 1,
            Tree::Leaf(Token { tok: Tok::Ident(id), .. }) if angle == 0 => {
                last = Some(id.clone());
            }
            _ => {}
        }
    }
    last
}

fn collect_idents(trees: &[Tree], out: &mut Vec<String>) {
    for t in trees {
        match t {
            Tree::Leaf(Token { tok: Tok::Ident(s), .. }) => out.push(s.clone()),
            Tree::Group(g) => collect_idents(&g.children, out),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

/// One statement of a function body: its top-level tokens (with groups
/// kept nested) and the brace sub-blocks it owns (if/else/match/loop
/// bodies, plain blocks).
#[derive(Debug)]
pub struct Stmt<'a> {
    pub trees: Vec<&'a Tree>,
    /// Brace groups belonging to this statement, in source order.
    pub blocks: Vec<&'a Group>,
    pub first_line: u32,
    #[allow(dead_code)] // part of the model API; read by tests
    pub last_line: u32,
}

impl<'a> Stmt<'a> {
    /// Flat leaf tokens of this statement *excluding* its brace
    /// sub-blocks but *including* paren/bracket groups (call arguments
    /// belong to the statement; block bodies are separate scopes).
    pub fn leaves(&self) -> Vec<&'a Token> {
        fn walk<'a>(t: &'a Tree, out: &mut Vec<&'a Token>) {
            match t {
                Tree::Leaf(tok) => out.push(tok),
                Tree::Group(g) if g.delim != '{' => {
                    for c in &g.children {
                        walk(c, out);
                    }
                }
                // Brace groups inside paren args (closures!) are part of
                // the statement's expression; include them.
                Tree::Group(g) => {
                    for c in &g.children {
                        walk(c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        for t in &self.trees {
            match t {
                // Top-level brace sub-blocks are scopes, not statement
                // tokens; they surface through `blocks` instead.
                Tree::Group(Group { delim: '{', .. }) => {}
                other => walk(other, &mut out),
            }
        }
        out
    }

    /// Whether the statement contains an early-exit edge at expression
    /// level: `?`, `return`, `break` or `continue`.
    pub fn has_early_exit(&self) -> bool {
        self.leaves().iter().any(|t| match &t.tok {
            Tok::Punct('?') => true,
            Tok::Ident(s) => s == "return" || s == "break" || s == "continue",
            _ => false,
        })
    }

    /// Whether any leaf ident equals `name`.
    pub fn mentions(&self, name: &str) -> bool {
        self.leaves()
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
    }

    /// The binding identifier if this statement is a `let` (first ident
    /// after `let`/`let mut`, or the idents of a tuple pattern).
    pub fn let_bindings(&self) -> Vec<String> {
        let leaves = self.leaves();
        let mut it = leaves.iter().enumerate();
        let Some((li, _)) = it.find(|(_, t)| matches!(&t.tok, Tok::Ident(s) if s == "let")) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for t in leaves.iter().skip(li + 1) {
            match &t.tok {
                Tok::Ident(s) if s == "mut" || s == "ref" => {}
                // `let Some(job) = job` — pattern idents before `=`.
                Tok::Ident(s) if s == "else" => break,
                Tok::Ident(s) => {
                    // Skip constructor-ish path segments (capitalized,
                    // followed by `::` or pattern parens) — keep bindings.
                    out.push(s.clone());
                }
                Tok::Punct('=') => break,
                Tok::Punct(':') if out.len() == 1 => break, // type ascription
                _ => {}
            }
        }
        // Drop obvious enum constructors (`Some`, `Ok`, `Err`, `None`).
        out.retain(|s| !matches!(s.as_str(), "Some" | "Ok" | "Err" | "None"));
        out
    }
}

/// Splits a brace group's children into statements. Every `;` at top
/// level ends a statement; a top-level brace group ends the statement
/// that owns it *unless* the next token is `else` (if/else chains) or the
/// group is a match body continuing an expression.
pub fn stmts<'a>(body: &'a Group) -> Vec<Stmt<'a>> {
    let trees = &body.children;
    let mut out: Vec<Stmt<'a>> = Vec::new();
    let mut cur: Vec<&'a Tree> = Vec::new();
    let mut blocks: Vec<&'a Group> = Vec::new();
    let mut i = 0usize;

    fn flush<'a>(
        cur: &mut Vec<&'a Tree>,
        blocks: &mut Vec<&'a Group>,
        out: &mut Vec<Stmt<'a>>,
        fallback_line: u32,
    ) {
        if cur.is_empty() && blocks.is_empty() {
            return;
        }
        let first_line = cur
            .first()
            .map(|t| t.line())
            .or_else(|| blocks.first().map(|g| g.open_line))
            .unwrap_or(fallback_line);
        let last_line = blocks
            .last()
            .map(|g| g.close_line)
            .or_else(|| cur.last().map(|t| t.line()))
            .unwrap_or(first_line);
        out.push(Stmt {
            trees: std::mem::take(cur),
            blocks: std::mem::take(blocks),
            first_line,
            last_line: last_line.max(first_line),
        });
    }

    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(Token { tok: Tok::Punct(';'), line }) => {
                flush(&mut cur, &mut blocks, &mut out, *line);
                i += 1;
            }
            Tree::Group(g) if g.delim == '{' => {
                blocks.push(g);
                cur.push(&trees[i]);
                // `} else`, `} else if`, match-arm commas: keep going.
                let cont = matches!(
                    trees.get(i + 1).and_then(Tree::ident),
                    Some("else")
                ) || trees.get(i + 1).and_then(Tree::punct) == Some('?')
                    || trees.get(i + 1).and_then(Tree::punct) == Some('.');
                if !cont {
                    flush(&mut cur, &mut blocks, &mut out, g.close_line);
                }
                i += 1;
            }
            t => {
                cur.push(t);
                i += 1;
            }
        }
    }
    flush(&mut cur, &mut blocks, &mut out, body.close_line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse::parse;

    fn model_of(src: &str) -> (SourceFileOwner, ()) {
        (SourceFileOwner(parse(src).unwrap()), ())
    }
    struct SourceFileOwner(SourceFile);

    #[test]
    fn fns_carry_impl_context_and_testness() {
        let src = "impl Engine {\n    pub fn get(&self) -> Option<u32> { None }\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n\
                   fn free() {}\n";
        let (owner, ()) = model_of(src);
        let m = build(&owner.0);
        let get = m.fns.iter().find(|f| f.name == "get").unwrap();
        assert_eq!(get.self_ty.as_deref(), Some("Engine"));
        assert!(!get.is_test);
        assert_eq!(get.ret_ty.as_deref(), Some("u32"));
        assert!(m.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
        assert!(m.fns.iter().find(|f| f.name == "t").unwrap().is_test);
        assert!(!m.fns.iter().find(|f| f.name == "free").unwrap().is_test);
    }

    #[test]
    fn impl_trait_for_type_resolves_to_type() {
        let src = "impl Drop for Handle {\n    fn drop(&mut self) {}\n}\n";
        let (owner, ()) = model_of(src);
        let m = build(&owner.0);
        assert_eq!(m.fns[0].self_ty.as_deref(), Some("Handle"));
    }

    #[test]
    fn lock_fields_are_discovered_with_collections() {
        let src = "struct Engine {\n    writer: Mutex<WriterState>,\n    \
                   active_ro: RwLock<Option<Arc<Buf>>>,\n    dram: Vec<Mutex<DramCache>>,\n    \
                   log_locks: [Mutex<()>; 3],\n    slots: Vec<RegionSlot>,\n    count: u64,\n}\n";
        let (owner, ()) = model_of(src);
        let m = build(&owner.0);
        let find = |n: &str| m.fields.iter().find(|f| f.field == n).unwrap();
        assert_eq!(find("writer").lock_kind(), Some(LockKind::Mutex));
        assert!(!find("writer").is_collection());
        assert_eq!(find("active_ro").lock_kind(), Some(LockKind::RwLock));
        assert_eq!(find("dram").lock_kind(), Some(LockKind::Mutex));
        assert!(find("dram").is_collection());
        assert_eq!(find("log_locks").lock_kind(), Some(LockKind::Mutex));
        assert_eq!(find("count").lock_kind(), None);
        assert_eq!(find("slots").principal, "Vec");
        assert!(find("slots").type_idents.contains(&"RegionSlot".into()));
    }

    #[test]
    fn unsafe_blocks_and_fns_are_recorded_with_context() {
        let src = "fn read(&self) {\n    let v = unsafe { buf.slice(0, 4) };\n}\n\
                   unsafe fn raw() {}\nunsafe impl Send for X {}\n";
        let (owner, ()) = model_of(src);
        let m = build(&owner.0);
        assert_eq!(m.unsafes.len(), 3, "{:?}", m.unsafes);
        assert_eq!(m.unsafes[0].kind, "block");
        assert_eq!(m.unsafes[0].context.as_deref(), Some("read"));
        assert_eq!(m.unsafes[1].kind, "fn");
        assert_eq!(m.unsafes[2].kind, "impl");
    }

    #[test]
    fn stmts_split_on_semicolons_and_blocks() {
        let src = "fn f() {\n    let a = 1;\n    if a > 0 {\n        g();\n    } else {\n        h();\n    }\n    let b = m.lock();\n    drop(b);\n}\n";
        let (owner, ()) = model_of(src);
        let m = build(&owner.0);
        let body = m.fns[0].body.unwrap();
        let ss = stmts(body);
        assert_eq!(ss.len(), 4, "{:?}", ss.iter().map(|s| s.first_line).collect::<Vec<_>>());
        // The if/else is one statement owning two blocks.
        assert_eq!(ss[1].blocks.len(), 2);
        assert_eq!(ss[1].first_line, 3);
        assert_eq!(ss[1].last_line, 7);
        assert_eq!(ss[2].let_bindings(), vec!["b".to_string()]);
        assert!(ss[3].mentions("drop"));
    }

    #[test]
    fn early_exit_detection_sees_question_marks_and_returns() {
        let src = "fn f() -> Result<(), E> {\n    let x = io()?;\n    if x { return Ok(()); }\n    Ok(())\n}\n";
        let (owner, ()) = model_of(src);
        let m = build(&owner.0);
        let ss = stmts(m.fns[0].body.unwrap());
        assert!(ss[0].has_early_exit());
        // `return` sits inside the if-block — the statement still reports
        // an exit edge because block tokens surface through blocks();
        // at minimum the `?` case is precise.
        let tuple = "fn g() {\n    let (job, tickets) = self.seal_detach(w);\n}\n";
        let (owner2, ()) = model_of(tuple);
        let m2 = build(&owner2.0);
        let ss2 = stmts(m2.fns[0].body.unwrap());
        let binds = ss2[0].let_bindings();
        assert!(binds.contains(&"job".to_string()) && binds.contains(&"tickets".to_string()));
    }
}
