//! Unsafe inventory: every `unsafe` block, fn, impl, or trait in
//! first-party non-test code must carry a `// SAFETY:` comment (same line
//! or up to three lines above) and is recorded in ANALYSIS.md, so the
//! workspace's entire unsafe surface is reviewable in one table and any
//! growth shows up as a diff.

use super::model::build;
use super::parse::SourceFile;
use super::{push, Violation};

/// One unsafe site, for the ANALYSIS.md inventory.
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// `block`, `fn`, `impl`, or `trait`.
    pub kind: &'static str,
    /// `in <enclosing fn> — <SAFETY: text>`, as far as each is known.
    pub context: Option<String>,
}

/// Runs the analysis over one file, returning its inventory rows.
pub fn analyze(file: &str, sf: &SourceFile, out: &mut Vec<Violation>) -> Vec<UnsafeSite> {
    // Integration-test and bench scaffolding is exempt, like test fns.
    if !file.contains("/src/") && !file.starts_with("src/") {
        return Vec::new();
    }
    let m = build(sf);
    let mut sites = Vec::new();
    for u in &m.unsafes {
        if u.is_test {
            continue;
        }
        let safety = safety_text(sf, u.line);
        if safety.is_none() {
            push(
                out,
                "unsafe-needs-safety-comment",
                file,
                u.line,
                format!(
                    "unsafe {} without a `// SAFETY:` comment (same line or up to 3 \
                     lines above) stating the invariant that makes it sound",
                    u.kind
                ),
            );
        }
        let context = match (&u.context, &safety) {
            (Some(f), Some(s)) => Some(format!("in `{f}` — {s}")),
            (Some(f), None) => Some(format!("in `{f}`")),
            (None, Some(s)) => Some(s.clone()),
            (None, None) => None,
        };
        sites.push(UnsafeSite {
            file: file.to_string(),
            line: u.line,
            kind: u.kind,
            context,
        });
    }
    sites
}

/// The justification attached to an unsafe site: a `SAFETY:` tag or a doc
/// `# Safety` section in the contiguous comment block ending on the
/// `unsafe` keyword's line (or within 3 lines above it, so attributes
/// between the comment and the item do not detach it). Long soundness
/// arguments are a feature; the tag may sit at the top of the block.
fn safety_text(sf: &SourceFile, line: u32) -> Option<String> {
    let comment_lines: std::collections::BTreeSet<u32> =
        sf.comments.iter().map(|c| c.line).collect();
    // Nearest comment at or shortly above the site…
    let anchor = (line.saturating_sub(3)..=line)
        .rev()
        .find(|l| comment_lines.contains(l))?;
    // …extended upward while the block stays contiguous.
    let mut lo = anchor;
    while lo > 0 && comment_lines.contains(&(lo - 1)) {
        lo -= 1;
    }
    sf.comments
        .iter()
        .filter(|c| c.line >= lo && c.line <= line)
        .rev()
        .find_map(|c| {
            if let Some(idx) = c.text.find("SAFETY:") {
                let text = c.text[idx + "SAFETY:".len()..].trim();
                Some(if text.is_empty() {
                    "(empty)".to_string()
                } else {
                    text.to_string()
                })
            } else if c.text.contains("# Safety") {
                // Doc-convention unsafe fn: the caller contract is the
                // justification; unsafe blocks inside still need SAFETY.
                Some("doc `# Safety` contract".to_string())
            } else {
                None
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse::parse;

    fn run(file: &str, src: &str) -> (Vec<Violation>, Vec<UnsafeSite>) {
        let sf = parse(src).unwrap();
        let mut out = Vec::new();
        let sites = analyze(file, &sf, &mut out);
        (out, sites)
    }

    #[test]
    fn bare_unsafe_block_is_flagged_and_inventoried() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let (v, s) = run("crates/core/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unsafe-needs-safety-comment");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].kind, "block");
        assert_eq!(s[0].context.as_deref(), Some("in `f`"));
    }

    #[test]
    fn safety_comment_satisfies_the_rule_and_fills_context() {
        let src = "fn f(p: *const u8) -> u8 {\n    \
                   // SAFETY: caller guarantees p is valid for reads.\n    \
                   unsafe { *p }\n}\n";
        let (v, s) = run("crates/core/src/lib.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(
            s[0].context.as_deref(),
            Some("in `f` — caller guarantees p is valid for reads.")
        );
    }

    #[test]
    fn unsafe_impl_is_covered_too() {
        let src = "// SAFETY: Shard owns its map; no thread-affine state.\n\
                   unsafe impl Send for Shard {}\n\
                   unsafe impl Sync for Shard {}\n";
        let (v, s) = run("crates/core/src/engine.rs", src);
        // The second impl sits 2 lines below the comment — still in range.
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].kind, "impl");
    }

    #[test]
    fn long_safety_block_counts_when_the_tag_leads_it() {
        let src = "fn f(p: *const u8) -> u8 {\n    \
                   // SAFETY: the full argument —\n    \
                   // line two of the argument,\n    \
                   // line three of the argument,\n    \
                   // line four of the argument,\n    \
                   // line five, still attached.\n    \
                   unsafe { *p }\n}\n";
        let (v, s) = run("crates/core/src/lib.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert!(s[0].context.as_deref().unwrap().contains("full argument"));
    }

    #[test]
    fn doc_safety_section_covers_an_unsafe_fn() {
        let src = "/// Reads a byte.\n///\n/// # Safety\n///\n\
                   /// `p` must be valid for reads.\n\
                   unsafe fn read_at(p: *const u8) -> u8 {\n    \
                   // SAFETY: contract forwarded verbatim.\n    \
                   unsafe { *p }\n}\n";
        let (v, s) = run("crates/core/src/lib.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn a_detached_comment_does_not_count() {
        let src = "// SAFETY: stale note about other code.\n\
                   fn g() {}\n\n\n\n\
                   fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let (v, _) = run("crates/core/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   let x = unsafe { core::mem::zeroed::<u8>() };\n        \
                   assert_eq!(x, 0);\n    }\n}\n";
        let (v, s) = run("crates/core/src/lib.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert!(s.is_empty());
    }
}
