//! `cargo xtask analyze` — the workspace static-analysis engine.
//!
//! One engine, four analyses, all built on the same vendored parse layer
//! ([`parse`] → token trees, [`model`] → items/fields/statements):
//!
//! 1. [`lock_order`] — the may-hold-while-acquiring lock graph: cycles,
//!    guards live across device I/O, and the flush pipeline's
//!    submit-to-complete interval.
//! 2. [`tickets`] — linear-resource obligation tracking for async I/O
//!    tickets (`IoHandle` submissions, `FlushTicket`s): every submit must
//!    be resolved, reaped, or aborted on every path, including `?` exits.
//! 3. [`atomics`] — the atomic-ordering inventory: every atomic site with
//!    its `Ordering`, the Relaxed-needs-justification rule, and the
//!    protocol-module routing rule.
//! 4. [`unsafety`] — the unsafe inventory: every `unsafe` carries a
//!    `// SAFETY:` comment and appears in ANALYSIS.md.
//!
//! Old regex rules that survive (`zns-state-authority`, `no-panic-paths`,
//! `no-unwrap-in-recovery`) are reimplemented over the token model in
//! [`ported`], so there is exactly one lint engine.

pub mod atomics;
pub mod lock_order;
pub mod model;
pub mod parse;
pub mod ported;
pub mod tickets;
pub mod unsafety;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One finding. `line == 0` means a file- or crate-level finding.
#[derive(Debug)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.msg)
        } else {
            write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
        }
    }
}

/// Appends one violation.
pub fn push(out: &mut Vec<Violation>, rule: &'static str, file: &str, line: u32, msg: String) {
    out.push(Violation {
        rule,
        file: file.to_string(),
        line,
        msg,
    });
}

/// A loaded workspace source file.
pub struct WorkspaceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    pub text: String,
}

/// Walks the workspace and loads every `.rs` file outside the analyzer
/// itself and build output.
pub fn load_workspace(root: &Path) -> Vec<WorkspaceFile> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(root, root, &mut paths);
    paths.sort();
    paths
        .into_iter()
        .filter_map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&p).ok()?;
            Some(WorkspaceFile { rel, text })
        })
        .collect()
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            // Vendored third-party shims are not ours to lint.
            if path.ends_with("shims") && dir == root {
                continue;
            }
            // The analyzer does not analyze itself: its fixtures are
            // deliberate violations.
            if path.ends_with("crates/xtask") {
                continue;
            }
            collect_rs(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The crate a workspace-relative path belongs to (`crates/core/src/…` →
/// `core`), or `None` for files outside `crates/`/`shims/`.
pub fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel
        .strip_prefix("crates/")
        .or_else(|| rel.strip_prefix("shims/"))?;
    Some(rest.split('/').next().unwrap_or(rest))
}

/// Everything one `analyze` run produces: findings plus the inventory
/// inputs for ANALYSIS.md.
#[derive(Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub lock_graphs: Vec<(String, lock_order::LockGraph)>,
    pub atomic_sites: Vec<atomics::AtomicSite>,
    pub unsafe_sites: Vec<unsafety::UnsafeSite>,
}

/// Runs every analysis over the loaded workspace.
pub fn run(files: &[WorkspaceFile]) -> Report {
    let mut report = Report::default();
    let mut parsed: Vec<(usize, parse::SourceFile)> = Vec::new();
    for (i, f) in files.iter().enumerate() {
        match parse::parse(&f.text) {
            Ok(sf) => parsed.push((i, sf)),
            Err(e) => push(
                &mut report.violations,
                "parse",
                &f.rel,
                e.line,
                format!("cannot parse: {e} — a file the analyzer cannot parse is a file it cannot vouch for"),
            ),
        }
    }

    // Lock-order runs per crate: lock fields and call graphs are
    // crate-local.
    let mut crates: Vec<&str> = parsed
        .iter()
        .filter_map(|(i, _)| crate_of(&files[*i].rel))
        .collect();
    crates.sort_unstable();
    crates.dedup();
    for cr in crates {
        let cf: Vec<lock_order::CrateFile<'_>> = parsed
            .iter()
            .filter(|(i, _)| crate_of(&files[*i].rel) == Some(cr))
            .map(|(i, sf)| lock_order::CrateFile {
                path: &files[*i].rel,
                source: sf,
            })
            .collect();
        let graph = lock_order::analyze(cr, &cf, &mut report.violations);
        if !graph.nodes.is_empty() {
            report.lock_graphs.push((cr.to_string(), graph));
        }
    }

    // File-local analyses.
    for (i, sf) in &parsed {
        let rel = &files[*i].rel;
        tickets::analyze(rel, sf, &mut report.violations);
        report
            .atomic_sites
            .extend(atomics::analyze(rel, sf, &mut report.violations));
        report
            .unsafe_sites
            .extend(unsafety::analyze(rel, sf, &mut report.violations));
        ported::analyze(rel, sf, &mut report.violations);
    }
    report
}

/// Renders the checked-in ANALYSIS.md inventory from a report.
pub fn render_analysis_md(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("# ANALYSIS.md — static-analysis inventory\n\n");
    out.push_str(
        "Generated by `cargo xtask analyze --write`. Checked in so that drift in\n\
         lock structure, atomic orderings, or unsafe surface shows up in diffs.\n\
         Do not edit by hand; re-run the command instead.\n",
    );

    out.push_str("\n## Lock-order graphs\n\n");
    out.push_str(
        "Edges read *held → acquired*; each edge names one example site. The\n\
         analyzer fails the build on any cycle.\n\n",
    );
    for (cr, g) in &report.lock_graphs {
        out.push_str(&format!("### crate `{cr}`\n\n"));
        for (node, kind) in &g.nodes {
            out.push_str(&format!("- `{node}` ({kind})\n"));
        }
        if g.edges.is_empty() {
            out.push_str("\nNo hold-while-acquiring edges.\n\n");
        } else {
            out.push('\n');
            for ((held, acq), site) in &g.edges {
                out.push_str(&format!("- `{held}` → `{acq}` (e.g. {site})\n"));
            }
            out.push('\n');
        }
    }

    out.push_str("## Atomic-ordering inventory\n\n");
    out.push_str(
        "Every atomic access site with its `Ordering`. Sites outside\n\
         `crates/core/src/protocol/` must be Relaxed-with-justification\n\
         (`relaxed-ok:`) or carry an `ordering-ok:` justification for stronger\n\
         orderings; protocol types are loom-modeled instead.\n\n",
    );
    out.push_str("| file | line | op | ordering | justified |\n");
    out.push_str("|---|---|---|---|---|\n");
    for s in &report.atomic_sites {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            s.file,
            s.line,
            s.op,
            s.ordering,
            if s.justified { "yes" } else { "n/a (protocol/test)" }
        ));
    }

    out.push_str("\n## Unsafe inventory\n\n");
    if report.unsafe_sites.is_empty() {
        out.push_str("No unsafe code outside test scaffolding.\n");
    } else {
        out.push_str("| file | line | kind | context |\n");
        out.push_str("|---|---|---|---|\n");
        for s in &report.unsafe_sites {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                s.file,
                s.line,
                s.kind,
                s.context.as_deref().unwrap_or("-")
            ));
        }
    }
    out
}
