//! The thin parse layer under every analysis: a Rust lexer plus
//! brace-matched token trees.
//!
//! The build environment is fully offline, so `syn` is not available as a
//! dependency; this module vendors the *minimal* subset the analyses
//! need — a faithful lexer (strings, raw strings, char-vs-lifetime
//! disambiguation, nested block comments) and delimiter-matched token
//! trees with line numbers. Everything higher-level (items, functions,
//! statements, lock fields) is built on top in [`super::model`].
//!
//! Fidelity matters more than coverage here: the one unforgivable lexer
//! bug for a static analyzer is misclassifying a string or comment, which
//! silently turns code into non-code (the failure mode of the old
//! line/regex `cargo xtask lint` that this engine replaces). The lexer is
//! therefore exact about literal forms, and the unit tests below pin the
//! corner cases (`'a'` vs `'a`, `r#".."#`, `"//"`, nested `/* /* */ */`).

use std::fmt;

/// A lexical token. Multi-character operators are *not* joined — `::` is
/// two `Punct(':')` leaves — so pattern matching works over single chars.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `self`, `Ordering`, …).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `?`, `=`, …).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, number.
    Lit,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A token tree: a leaf token or a delimiter-matched group.
#[derive(Clone, Debug)]
pub enum Tree {
    Leaf(Token),
    Group(Group),
}

/// A `(…)`, `[…]` or `{…}` group with its span.
#[derive(Clone, Debug)]
pub struct Group {
    /// Opening delimiter: `(`, `[` or `{`.
    pub delim: char,
    pub open_line: u32,
    pub close_line: u32,
    pub children: Vec<Tree>,
}

impl Tree {
    /// The source line the tree starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }

    /// The identifier text, if this is an ident leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(Token { tok: Tok::Ident(s), .. }) => Some(s),
            _ => None,
        }
    }

    /// The punct char, if this is a punct leaf.
    pub fn punct(&self) -> Option<char> {
        match self {
            Tree::Leaf(Token { tok: Tok::Punct(c), .. }) => Some(*c),
            _ => None,
        }
    }
}

/// A comment with the line it sits on (block comments: the line they
/// start on). Doc comments are included — `// SAFETY:` and
/// `// relaxed-ok:` annotations both arrive through this channel.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// A parsed source file: the token forest plus the comment side-channel.
#[derive(Debug, Default)]
pub struct SourceFile {
    pub trees: Vec<Tree>,
    pub comments: Vec<Comment>,
}

impl SourceFile {
    /// Whether any comment on `line` (or a `lookback`-line window above
    /// it) contains `needle`. This is the annotation-resolution rule every
    /// analysis shares: same line, or an explanatory comment just above a
    /// multi-line statement.
    pub fn annotated(&self, line: u32, lookback: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(lookback);
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && c.text.contains(needle))
    }

    /// Whether any comment in the whole file contains `needle` (file-level
    /// waivers like `relaxed-ok(file):`).
    pub fn file_annotated(&self, needle: &str) -> bool {
        self.comments.iter().any(|c| c.text.contains(needle))
    }
}

/// A parse failure (unbalanced delimiters, unterminated literal). The
/// analyses treat this as a violation in its own right: a file the
/// analyzer cannot parse is a file it cannot vouch for.
#[derive(Debug)]
pub struct ParseError {
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Lexes and tree-builds one source file.
pub fn parse(text: &str) -> Result<SourceFile, ParseError> {
    let tokens = lex(text)?;
    let mut file = SourceFile {
        trees: Vec::new(),
        comments: tokens.comments,
    };
    // Delimiter matching over the flat token stream.
    let mut stack: Vec<(char, u32, Vec<Tree>)> = Vec::new();
    let mut current: Vec<Tree> = Vec::new();
    for t in tokens.tokens {
        match t.tok {
            Tok::Punct(open @ ('(' | '[' | '{')) => {
                stack.push((open, t.line, std::mem::take(&mut current)));
            }
            Tok::Punct(close @ (')' | ']' | '}')) => {
                let Some((open, open_line, parent)) = stack.pop() else {
                    return Err(ParseError {
                        line: t.line,
                        msg: format!("unmatched closing `{close}`"),
                    });
                };
                let expect = match open {
                    '(' => ')',
                    '[' => ']',
                    _ => '}',
                };
                if close != expect {
                    return Err(ParseError {
                        line: t.line,
                        msg: format!("`{open}` at line {open_line} closed by `{close}`"),
                    });
                }
                let children = std::mem::replace(&mut current, parent);
                current.push(Tree::Group(Group {
                    delim: open,
                    open_line,
                    close_line: t.line,
                    children,
                }));
            }
            _ => current.push(Tree::Leaf(t)),
        }
    }
    if let Some((open, open_line, _)) = stack.pop() {
        return Err(ParseError {
            line: open_line,
            msg: format!("unclosed `{open}`"),
        });
    }
    file.trees = current;
    Ok(file)
}

struct LexOutput {
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

fn lex(text: &str) -> Result<LexOutput, ParseError> {
    let b = text.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: text[start..i].to_string(),
                });
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let (start, start_line) = (i, line);
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                if depth != 0 {
                    return Err(ParseError {
                        line: start_line,
                        msg: "unterminated block comment".into(),
                    });
                }
                comments.push(Comment {
                    line: start_line,
                    text: text[start..i].to_string(),
                });
            }
            '"' => {
                i = skip_string(b, i, &mut line).ok_or(ParseError {
                    line,
                    msg: "unterminated string literal".into(),
                })?;
                tokens.push(Token { tok: Tok::Lit, line });
            }
            'r' | 'b' if starts_raw_or_byte_literal(b, i) => {
                let start_line = line;
                i = skip_raw_or_byte_literal(b, i, &mut line).ok_or(ParseError {
                    line: start_line,
                    msg: "unterminated raw/byte literal".into(),
                })?;
                tokens.push(Token {
                    tok: Tok::Lit,
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if is_char_literal(b, i) {
                    i = skip_char_literal(b, i).ok_or(ParseError {
                        line,
                        msg: "unterminated char literal".into(),
                    })?;
                    tokens.push(Token { tok: Tok::Lit, line });
                } else {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || (b[i] as char).is_alphanumeric()) {
                        i += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                // Numbers (including 0x…, 1_000, 1.5e3, type suffixes).
                // `1.max(2)` must not swallow `.max` — only consume a `.`
                // if a digit follows.
                while i < b.len() {
                    let d = b[i] as char;
                    let frac_dot =
                        d == '.' && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit();
                    if d.is_ascii_alphanumeric() || d == '_' || frac_dot {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token { tok: Tok::Lit, line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || (b[i] as char).is_alphanumeric()) {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(text[start..i].to_string()),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    Ok(LexOutput { tokens, comments })
}

/// Skips a `"…"` literal starting at `i`; returns the index past the
/// closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> Option<usize> {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return Some(i + 1),
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Whether position `i` (at `r` or `b`) starts a raw string, byte string,
/// raw byte string, or byte char literal — as opposed to an identifier
/// like `region` or `buf`.
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    // Reject when preceded by an ident char (then `r`/`b` is mid-ident —
    // the caller only reaches us at ident starts, but be safe).
    if i > 0 && (b[i - 1] == b'_' || (b[i - 1] as char).is_alphanumeric()) {
        return false;
    }
    let rest = &b[i..];
    let forms: [&[u8]; 7] = [
        b"r\"", b"r#", b"b\"", b"b'", b"br\"", b"br#", b"rb\"",
    ];
    forms.iter().any(|f| rest.starts_with(f))
}

fn skip_raw_or_byte_literal(b: &[u8], mut i: usize, line: &mut u32) -> Option<usize> {
    // Consume the prefix letters.
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        // Byte char `b'x'`.
        return skip_char_literal(b, i);
    }
    // Count `#`s for raw strings.
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return None;
    }
    if hashes == 0 {
        return skip_string(b, i, line);
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        }
        if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
        {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    None
}

/// Whether the `'` at `i` opens a char literal rather than a lifetime.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,                       // '\n', '\''
        Some(&b'\'') => false, // '' is not valid; treat as lifetime-ish
        Some(&c) => b.get(i + 2) == Some(&b'\'') || !(c == b'_' || (c as char).is_alphabetic()),
        None => false,
    }
}

fn skip_char_literal(b: &[u8], mut i: usize) -> Option<usize> {
    i += 1; // opening quote
    if i < b.len() && b[i] == b'\\' {
        i += 2;
    } else {
        i += 1;
    }
    // Unicode escapes ('\u{1F4A9}') span further; scan to the quote.
    while i < b.len() && b[i] != b'\'' {
        i += 1;
    }
    if i < b.len() {
        Some(i + 1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        fn walk(trees: &[Tree], out: &mut Vec<String>) {
            for t in trees {
                match t {
                    Tree::Leaf(Token { tok: Tok::Ident(s), .. }) => out.push(s.clone()),
                    Tree::Group(g) => walk(&g.children, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&parse(src).unwrap().trees, &mut out);
        out
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        // The classic regex-lint failure: tokens inside strings/comments.
        let src = "let a = \"self.writer.lock()\"; // self.backend.read()\n";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a"]);
        let f = parse(src).unwrap();
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("backend"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nlet esc = '\\'';\n";
        let f = parse(src).unwrap();
        let lifetimes = count_kind(&f.trees, |t| matches!(t, Tok::Lifetime));
        assert_eq!(lifetimes, 2, "two uses of 'a");
        // 'x' and '\'' are literals, not lifetimes.
        let lits = count_kind(&f.trees, |t| matches!(t, Tok::Lit));
        assert_eq!(lits, 2);
    }

    fn count_kind(trees: &[Tree], pred: fn(&Tok) -> bool) -> usize {
        trees
            .iter()
            .map(|t| match t {
                Tree::Leaf(tok) => usize::from(pred(&tok.tok)),
                Tree::Group(g) => count_kind(&g.children, pred),
            })
            .sum()
    }

    #[test]
    fn raw_strings_skip_embedded_quotes() {
        let src = "let r = r#\"a \" b\"#; let b = b\"bytes\"; let done = 1;\n";
        let ids = idents(src);
        assert!(ids.contains(&"done".to_string()), "{ids:?}");
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ fn f() {}\n";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f"]);
    }

    #[test]
    fn groups_match_and_carry_lines() {
        let src = "fn f() {\n    g(1, [2]);\n}\n";
        let f = parse(src).unwrap();
        // fn f () { … }
        let Tree::Group(body) = &f.trees[3] else {
            panic!("expected body group, got {:?}", f.trees[3]);
        };
        assert_eq!(body.delim, '{');
        assert_eq!(body.open_line, 1);
        assert_eq!(body.close_line, 3);
    }

    #[test]
    fn unbalanced_input_is_an_error() {
        assert!(parse("fn f() {").is_err());
        assert!(parse("}").is_err());
        assert!(parse("fn f(] {}").is_err());
    }

    #[test]
    fn annotation_lookback_window() {
        let src = "// relaxed-ok: statistic\nlet a = 1;\nlet b = 2;\n";
        let f = parse(src).unwrap();
        assert!(f.annotated(2, 4, "relaxed-ok:"));
        assert!(f.annotated(1, 0, "relaxed-ok:"));
        assert!(!f.annotated(7, 4, "relaxed-ok:"));
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        let ids = idents("let x = 1.max(2) + 0x1f + 1_000e3;\n");
        assert!(ids.contains(&"max".to_string()), "{ids:?}");
    }
}
