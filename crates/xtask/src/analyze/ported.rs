//! Rules ported from the retired string-matching linter, reimplemented
//! over the token model so there is exactly one engine:
//!
//! * **zns-state-authority** — inside `crates/zns/src/` (except
//!   `state_machine.rs`), nothing assigns `.state` directly; all
//!   transitions route through `state_machine::step` so the transition
//!   table stays the single authority. Token-level now, so string
//!   literals and comments can no longer false-positive.
//! * **no-panic-paths** — the engine hot path (`crates/core/src/engine.rs`)
//!   must not contain `.unwrap()`, `.expect(…)`, or panicking macros in
//!   non-test code: a cache miss is an error value, never a crash.
//! * **no-unwrap-in-recovery** — recovery, scrub, and cleaning code in
//!   `crates/core/src/` and `crates/f2fs-lite/src/` must tolerate torn
//!   state; panicking there turns a survivable crash into an unmountable
//!   device.

use super::model::{build, FnItem};
use super::parse::{SourceFile, Tok, Token, Tree};
use super::{push, Violation};

const RECOVERY_FNS: &[&str] = &[
    "recover",
    "recover_or_scan",
    "scan_rebuild",
    "scan_region",
    "scrub",
    "scrub_region",
    "retire_region",
    "clean_one",
    "clean_pass",
];

/// Idents that panic when invoked as `.ident(` (method position).
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Idents that panic when invoked as `ident!` (macro position).
const PANIC_MACROS: &[&str] = &["unreachable", "panic", "todo", "unimplemented"];

/// Runs all ported rules over one file.
pub fn analyze(file: &str, sf: &SourceFile, out: &mut Vec<Violation>) {
    if file.starts_with("crates/zns/src/") && !file.ends_with("state_machine.rs") {
        state_authority(file, sf, out);
    }
    if file == "crates/core/src/engine.rs" {
        panic_scan(file, sf, out, "no-panic-paths", &|_| true);
    }
    if file.starts_with("crates/core/src/") || file.starts_with("crates/f2fs-lite/src/") {
        if file.ends_with("recovery.rs") {
            panic_scan(file, sf, out, "no-unwrap-in-recovery", &|_| true);
        } else {
            panic_scan(file, sf, out, "no-unwrap-in-recovery", &|f| {
                RECOVERY_FNS.contains(&f.name.as_str())
            });
        }
    }
}

/// Flags `.state = …` assignments (but not `==` comparisons or `=>` arms).
fn state_authority(file: &str, sf: &SourceFile, out: &mut Vec<Violation>) {
    let mut leaves = Vec::new();
    flatten(&sf.trees, &mut leaves);
    for i in 0..leaves.len() {
        if leaves[i].tok != Tok::Punct('.') {
            continue;
        }
        let Some(Tok::Ident(id)) = leaves.get(i + 1).map(|t| &t.tok) else {
            continue;
        };
        if id != "state" {
            continue;
        }
        let Some(next) = leaves.get(i + 2) else { continue };
        if next.tok != Tok::Punct('=') {
            continue;
        }
        if let Some(after) = leaves.get(i + 3) {
            if after.tok == Tok::Punct('=') || after.tok == Tok::Punct('>') {
                continue;
            }
        }
        push(
            out,
            "zns-state-authority",
            file,
            next.line,
            "direct `.state` assignment; route the transition through \
             `state_machine::step` so the transition table stays authoritative"
                .to_string(),
        );
    }
}

/// Scans non-test function bodies selected by `select` for panic sites.
fn panic_scan(
    file: &str,
    sf: &SourceFile,
    out: &mut Vec<Violation>,
    rule: &'static str,
    select: &dyn Fn(&FnItem<'_>) -> bool,
) {
    let m = build(sf);
    let mut seen = Vec::new();
    for f in &m.fns {
        if f.is_test || !select(f) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let mut leaves = Vec::new();
        flatten(&body.children, &mut leaves);
        for i in 0..leaves.len() {
            let Tok::Ident(id) = &leaves[i].tok else { continue };
            let line = leaves[i].line;
            let hit = (PANIC_METHODS.contains(&id.as_str())
                && i > 0
                && leaves[i - 1].tok == Tok::Punct('.'))
                || (PANIC_MACROS.contains(&id.as_str())
                    && leaves.get(i + 1).is_some_and(|t| t.tok == Tok::Punct('!')));
            // Nested fns appear in both their own and the outer walk;
            // dedup by site.
            if hit && !seen.contains(&(line, id.clone())) {
                seen.push((line, id.clone()));
                push(
                    out,
                    rule,
                    file,
                    line,
                    format!(
                        "`{id}` in `{}`: this path must degrade to an error value, \
                         not a panic",
                        f.name
                    ),
                );
            }
        }
    }
}

fn flatten<'a>(trees: &'a [Tree], out: &mut Vec<&'a Token>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => out.push(tok),
            Tree::Group(g) => flatten(&g.children, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse::parse;

    fn run(file: &str, src: &str) -> Vec<Violation> {
        let sf = parse(src).unwrap();
        let mut out = Vec::new();
        analyze(file, &sf, &mut out);
        out
    }

    #[test]
    fn direct_state_assignment_in_zns_is_flagged() {
        let src = "fn force(z: &mut Zone) {\n    z.state = ZoneState::Full;\n}\n";
        let v = run("crates/zns/src/zone.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "zns-state-authority");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn comparisons_arms_and_string_mentions_do_not_trip_state_authority() {
        let src = "fn check(z: &Zone) -> bool {\n    \
                   let s = \"z.state = Full\";\n    \
                   match z.kind {\n        Kind::A => true,\n        _ => z.state == ZoneState::Full,\n    }\n}\n";
        let v = run("crates/zns/src/zone.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn state_machine_rs_is_the_authority_and_may_assign() {
        let src = "fn step(z: &mut Zone) {\n    z.state = ZoneState::Open;\n}\n";
        let v = run("crates/zns/src/state_machine.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_and_panic_macros_in_engine_are_flagged() {
        let src = "impl Engine {\n    fn get(&self, k: u64) -> Option<u64> {\n        \
                   let v = self.index.get(&k).unwrap();\n        \
                   if v == 0 { panic!(\"zero\"); }\n        Some(v)\n    }\n}\n";
        let v = run("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "no-panic-paths"));
    }

    #[test]
    fn engine_test_module_may_unwrap() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   engine().get(1).unwrap();\n    }\n}\n";
        let v = run("crates/core/src/engine.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn recovery_file_is_covered_entirely() {
        let src = "fn helper(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n";
        let v = run("crates/core/src/recovery.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-unwrap-in-recovery");
    }

    #[test]
    fn recovery_named_fns_are_covered_elsewhere_but_others_are_not() {
        let src = "impl Maint {\n    fn clean_one(&mut self) {\n        \
                   self.pick().expect(\"victim\");\n    }\n    \
                   fn stats(&self) -> u64 {\n        self.n.checked_mul(2).unwrap()\n    }\n}\n";
        let v = run("crates/core/src/maintainer.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("clean_one"), "{v:?}");
    }

    #[test]
    fn identifier_named_state_without_field_access_is_ignored() {
        let src = "fn f() {\n    let state = 3;\n    let _ = state;\n}\n";
        let v = run("crates/zns/src/zone.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }
}
