//! I/O-ticket obligation checking: linear-resource tracking for async
//! submissions.
//!
//! The async core hands out obligations: an `IoHandle::submit` buffers a
//! completion that must be reaped (`try_complete`/`complete_all`), and a
//! `seal_detach`/`submit_flush` produces `FlushTicket`s that must be
//! resolved (`resolve_ticket`/`wait_done`). Dropping one on the floor is
//! the debris/quarantine class of bug PR 7 fixed by hand: device state
//! already mutated, but nobody ever observes the completion — or the
//! error it carried.
//!
//! The analysis walks each function linearly. A *producer* statement
//! opens an obligation keyed by the receiver (for `.submit(…)`) or the
//! `let` binding (for `seal_detach`/`submit_flush` results). The
//! obligation closes when a later statement mentions that variable —
//! ownership has moved: it was reaped, resolved, returned, or explicitly
//! aborted. Two findings:
//!
//! * **ticket-leak-on-exit** — a statement with an early-exit edge (`?`,
//!   `return`, `break`, `continue`, anywhere in its sub-blocks) runs
//!   while an obligation is open and does not mention the obligated
//!   variable: if that exit is taken, the ticket leaks. This is the case
//!   the old regex `submit-to-complete` rule provably missed — it only
//!   ever looked at single lines. Statements where the structure
//!   guarantees safety (e.g. "no job ⇒ no tickets") carry
//!   `// ticket-ok: why`.
//! * **ticket-never-resolved** — the function ends with the obligation
//!   still open and the variable never mentioned again.

use super::model::{build, stmts, Stmt};
use super::parse::{SourceFile, Tok};
use super::{push, Violation};

/// Method calls that open an obligation on their receiver.
const PRODUCER_METHODS: &[&str] = &["submit"];

/// Calls whose `let`-bound result is an obligation.
const PRODUCER_FNS: &[&str] = &["seal_detach", "submit_flush"];

/// Consumer idents: a producer statement that also contains one of these
/// is self-contained (submit-and-reap loops) and opens nothing.
const CONSUMERS: &[&str] = &[
    "try_complete",
    "complete_all",
    "resolve_ticket",
    "wait_done",
    "complete",
    "abort",
];

struct Obligation {
    var: String,
    line: u32,
    what: &'static str,
}

/// Runs the analysis over one file.
pub fn analyze(file: &str, sf: &SourceFile, out: &mut Vec<Violation>) {
    if !file.contains("/src/") {
        return;
    }
    let m = build(sf);
    for func in &m.fns {
        if func.is_test {
            continue;
        }
        let Some(body) = func.body else { continue };
        let open = walk(&stmts(body), sf, file, out);
        for o in open {
            push(
                out,
                "ticket-never-resolved",
                file,
                o.line,
                format!(
                    "the {} obligation `{}` is never resolved, reaped, aborted, or \
                     returned on any path out of `{}`",
                    o.what, o.var, func.name
                ),
            );
        }
    }
}

/// Walks one block scope linearly; obligations still open at block end
/// escape to the parent scope (the value it is stored in, or the
/// receiver field, may be reaped further down the enclosing function).
fn walk(
    units: &[Stmt<'_>],
    sf: &SourceFile,
    file: &str,
    out: &mut Vec<Violation>,
) -> Vec<Obligation> {
    let mut open: Vec<Obligation> = Vec::new();
    for st in units {
        // Close: any mention of the obligated variable (anywhere in the
        // statement, sub-blocks included) moves it.
        open.retain(|o| !mentions_rec(st, &o.var));

        // Leak check: an exit edge while obligations are open.
        if !open.is_empty()
            && has_exit_rec(st)
            && !sf.annotated(st.first_line, 4, "ticket-ok:")
        {
            for o in &open {
                push(
                    out,
                    "ticket-leak-on-exit",
                    file,
                    st.first_line,
                    format!(
                        "early exit while the {} obligation `{}` (opened at line \
                         {}) is unresolved; resolve, reap, or abort it on this \
                         path, or annotate `// ticket-ok: why`",
                        o.what, o.var, o.line
                    ),
                );
            }
        }

        // Sub-blocks are scopes of their own (loop bodies, if arms);
        // whatever they leave unresolved becomes this scope's problem.
        for b in &st.blocks {
            open.extend(walk(&stmts(b), sf, file, out));
        }

        // Open new obligations — unless the statement also consumes at
        // leaf level (submit-and-reap chained in one expression).
        if contains_consumer_leaf(st) {
            continue;
        }
        for (var, line, what) in producers(st) {
            open.retain(|o| o.var != var);
            open.push(Obligation { var, line, what });
        }
    }
    open
}

/// Producer sites at this statement's leaf level (sub-blocks are handled
/// by the recursive scope walk): the receiver var of a `.submit(…)` call,
/// or the `let` binding of a `seal_detach`/`submit_flush` result.
fn producers(st: &Stmt<'_>) -> Vec<(String, u32, &'static str)> {
    let mut out = Vec::new();
    let leaves = st.leaves();
    for (i, t) in leaves.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        if !PRODUCER_METHODS.contains(&id.as_str()) {
            continue;
        }
        // `<recv>.submit` — key on the ident right before the dot.
        if i >= 2 && leaves[i - 1].tok == Tok::Punct('.') {
            if let Tok::Ident(recv) = &leaves[i - 2].tok {
                out.push((recv.clone(), t.line, "submission"));
            }
        }
    }
    // Binding-keyed: `let (job, tickets) = self.seal_detach(…)`.
    let produced_fn = leaves.iter().enumerate().any(|(i, t)| {
        matches!(&t.tok, Tok::Ident(id) if PRODUCER_FNS.contains(&id.as_str()))
            && leaves
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.tok == Tok::Punct('.'))
    });
    if produced_fn {
        let binds = st.let_bindings();
        let ticket_binds: Vec<&String> =
            binds.iter().filter(|b| b.contains("ticket")).collect();
        if let Some(b) = ticket_binds.first() {
            out.push(((*b).clone(), st.first_line, "flush-ticket"));
        } else if binds.len() == 1 {
            out.push((binds[0].clone(), st.first_line, "flush-ticket"));
        }
    }
    out
}

/// Whether the statement (or its sub-blocks) mention `name`.
fn mentions_rec(st: &Stmt<'_>, name: &str) -> bool {
    if st.mentions(name) {
        return true;
    }
    st.blocks
        .iter()
        .any(|b| stmts(b).iter().any(|sub| mentions_rec(sub, name)))
}

/// Whether the statement (or its sub-blocks) contain an early-exit edge.
fn has_exit_rec(st: &Stmt<'_>) -> bool {
    if st.has_early_exit() {
        return true;
    }
    st.blocks
        .iter()
        .any(|b| stmts(b).iter().any(|sub| has_exit_rec(sub)))
}

fn contains_consumer_leaf(st: &Stmt<'_>) -> bool {
    st.leaves()
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(id) if CONSUMERS.contains(&id.as_str())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse::parse;

    fn run(file: &str, src: &str) -> Vec<Violation> {
        let sf = parse(src).unwrap();
        let mut out = Vec::new();
        analyze(file, &sf, &mut out);
        out
    }

    #[test]
    fn early_exit_between_submit_and_reap_leaks() {
        // The case the old single-line regex provably missed: the submit
        // and the `?` exit are statements apart.
        let src = "impl Fs {\n    fn flush(&mut self) -> Result<(), E> {\n        \
                   let id = self.io.submit(now, op);\n        \
                   self.write_meta()?;\n        \
                   self.io.complete_all(now)?;\n        Ok(())\n    }\n}\n";
        let v = run("crates/f2fs-lite/src/fs.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ticket-leak-on-exit");
        assert_eq!(v[0].line, 4);
        assert!(v[0].msg.contains("`io`"));
    }

    #[test]
    fn straight_line_submit_then_reap_is_clean() {
        let src = "impl Fs {\n    fn flush(&mut self) -> Result<(), E> {\n        \
                   let id = self.io.submit(now, op);\n        \
                   self.io.complete_all(now)?;\n        Ok(())\n    }\n}\n";
        let v = run("crates/f2fs-lite/src/fs.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn submission_never_reaped_is_flagged_at_fn_end() {
        let src = "impl Fs {\n    fn fire_and_forget(&mut self) {\n        \
                   let id = self.io.submit(now, op);\n        \
                   self.counter += 1;\n    }\n}\n";
        let v = run("crates/f2fs-lite/src/fs.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ticket-never-resolved");
        assert!(v[0].msg.contains("fire_and_forget"));
    }

    #[test]
    fn returning_the_handle_transfers_the_obligation() {
        let src = "impl Fs {\n    fn start(&mut self) -> IoHandle {\n        \
                   let mut io = self.pool.handle();\n        \
                   io.submit(now, op);\n        io\n    }\n}\n";
        let v = run("crates/f2fs-lite/src/fs.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn exit_hidden_inside_a_sub_block_is_still_an_exit() {
        // `let … else { continue }` / `if x { return }` style exits are
        // invisible to leaf-level scans; the recursive walk sees them.
        let src = "impl Engine {\n    fn roll(&self) -> Result<u64, E> {\n        \
                   let (job, tickets) = self.seal_detach(&mut w);\n        \
                   if job.is_none() {\n            return Err(E::NoJob);\n        }\n        \
                   for t in tickets {\n            self.resolve_ticket(t, now);\n        }\n        \
                   Ok(0)\n    }\n}\n";
        let v = run("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ticket-leak-on-exit");
        assert!(v[0].msg.contains("`tickets`"), "{v:?}");
    }

    #[test]
    fn ticket_ok_annotation_waives_a_structurally_safe_exit() {
        let src = "impl Engine {\n    fn roll(&self) -> Result<u64, E> {\n        \
                   let (job, tickets) = self.seal_detach(&mut w);\n        \
                   // ticket-ok: seal_detach returns no tickets without a job.\n        \
                   if job.is_none() {\n            return Err(E::NoJob);\n        }\n        \
                   for t in tickets {\n            self.resolve_ticket(t, now);\n        }\n        \
                   Ok(0)\n    }\n}\n";
        let v = run("crates/core/src/engine.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn submit_and_reap_in_one_loop_statement_is_self_contained() {
        let src = "impl Fs {\n    fn pump(&mut self) -> Result<(), E> {\n        \
                   while self.more() {\n            \
                   self.io.submit(now, op);\n            \
                   self.io.try_complete();\n        }\n        \
                   self.sync()?;\n        Ok(())\n    }\n}\n";
        let v = run("crates/f2fs-lite/src/fs.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   let id = io.submit(now, op);\n    }\n}\n";
        let v = run("crates/sim/src/aio.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }
}
