//! Workspace task runner (`cargo xtask <task>`).
//!
//! The main task is `analyze`: the AST-based workspace analyzer described
//! in DESIGN.md §9. It parses every first-party source file into token
//! trees (no syn, no compiler plumbing — the parse layer is vendored in
//! [`analyze::parse`]) and runs four structural analyses: the lock-order
//! graph, I/O-ticket obligation checking, the atomic-ordering inventory,
//! and the unsafe inventory, plus the rules ported from the old
//! string-matching linter. `analyze --write` regenerates ANALYSIS.md;
//! plain `analyze` fails if the checked-in inventory has drifted.
//!
//! `lint` is kept as an alias so existing scripts and muscle memory keep
//! working.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod analyze;

const USAGE: &str = "usage: cargo xtask analyze [--write] | lint";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") | Some("lint") => {
            run_analyze(args.iter().any(|a| a == "--write"))
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_analyze(write: bool) -> ExitCode {
    let root = workspace_root();
    let files = analyze::load_workspace(&root);
    let report = analyze::run(&files);
    for v in &report.violations {
        eprintln!("{v}");
    }

    let rendered = analyze::render_analysis_md(&report);
    let md_path = root.join("ANALYSIS.md");
    let mut drift = false;
    if write {
        if std::fs::write(&md_path, &rendered).is_err() {
            eprintln!("xtask analyze: cannot write {}", md_path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask analyze: wrote ANALYSIS.md");
    } else {
        let on_disk = std::fs::read_to_string(&md_path).unwrap_or_default();
        if on_disk != rendered {
            eprintln!(
                "ANALYSIS.md is out of date; run `cargo xtask analyze --write` \
                 and commit the result"
            );
            drift = true;
        }
    }

    if report.violations.is_empty() && !drift {
        println!(
            "xtask analyze: OK ({} files, {} lock nodes, {} atomic sites, {} unsafe sites)",
            files.len(),
            report
                .lock_graphs
                .iter()
                .map(|(_, g)| g.nodes.len())
                .sum::<usize>(),
            report.atomic_sites.len(),
            report.unsafe_sites.len(),
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask analyze: {} violation(s){}",
            report.violations.len(),
            if drift { " + ANALYSIS.md drift" } else { "" }
        );
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace itself must analyze clean — this makes `cargo test`
    /// enforce the same discipline CI does via `cargo xtask analyze`.
    #[test]
    fn workspace_sources_analyze_clean() {
        let root = workspace_root();
        let files = analyze::load_workspace(&root);
        assert!(
            files.len() > 30,
            "walker found only {} files; workspace root misdetected?",
            files.len()
        );
        let report = analyze::run(&files);
        assert!(
            report.violations.is_empty(),
            "workspace analyze violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The analyzer sees the workspace's real structure: the engine's
    /// locks and the core atomic sites must all be present. Guards
    /// against the analyses silently matching nothing.
    #[test]
    fn analyzer_sees_the_live_workspace_structure() {
        let root = workspace_root();
        let files = analyze::load_workspace(&root);
        let report = analyze::run(&files);
        let core = report
            .lock_graphs
            .iter()
            .find(|(c, _)| c == "core")
            .map(|(_, g)| g);
        let core = core.expect("core crate must have a lock graph");
        assert!(
            core.nodes.keys().any(|n| n.contains("writer")),
            "engine writer lock missing from the core lock graph: {:?}",
            core.nodes.keys().collect::<Vec<_>>()
        );
        assert!(
            !report.atomic_sites.is_empty(),
            "atomic inventory is empty — the Ordering scan is broken"
        );
    }
}
