//! Workspace task runner (`cargo xtask <task>`).
//!
//! The only task today is `lint`: the concurrency-discipline static pass
//! described in DESIGN.md §9. It enforces rules the type system cannot
//! express — memory-ordering justification, the zone state-machine
//! authority, and the engine's no-I/O-under-lock discipline — with plain
//! text analysis over the workspace tree. No dependencies and no compiler
//! plumbing, so it runs in CI and pre-commit in milliseconds.
//!
//! The rules themselves live in [`lint`]; each is unit-tested against
//! seeded violations so a rule that silently stops firing fails the test
//! suite.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod lint;

const USAGE: &str = "usage: cargo xtask lint";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    let (violations, files) = lint_workspace();
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        println!("xtask lint: OK ({files} files)");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Lints every workspace source file; returns the violations and the
/// number of files checked.
fn lint_workspace() -> (Vec<lint::Violation>, usize) {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut violations = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // The linter's own sources hold seeded-violation test fixtures
        // (raw `Ordering::Relaxed` strings and the like); linting them
        // would flag the fixtures.
        if rel.starts_with("crates/xtask/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        checked += 1;
        lint::check_file(&rel, &text, &mut violations);
    }
    (violations, checked)
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace itself must be lint-clean — this makes `cargo test`
    /// enforce the same discipline CI does via `cargo xtask lint`.
    #[test]
    fn workspace_sources_pass_the_lint() {
        let (violations, files) = lint_workspace();
        assert!(
            files > 30,
            "walker found only {files} files; workspace root misdetected?"
        );
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
