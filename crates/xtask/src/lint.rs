//! Concurrency-discipline lint rules (see DESIGN.md §9).
//!
//! Each rule is a pure function over `(relative path, file text)` so it
//! can be unit-tested against seeded violations below. The rules:
//!
//! * `relaxed-needs-justification` — every `Ordering::Relaxed` in crate
//!   sources carries a `// relaxed-ok: …` comment on the same line or
//!   within the four preceding lines, or the file declares a blanket
//!   `relaxed-ok(file): …` waiver (pure-statistics modules).
//! * `core-protocol-orderings` — `crates/core/src/protocol/` must not
//!   use `Ordering::Relaxed` at all, annotated or not: those orderings
//!   are the ones the loom suite model-checks, and every one is
//!   load-bearing.
//! * `zns-state-authority` — no `.state =` assignment anywhere under
//!   `crates/zns/src/` except `state_machine.rs`; zone state changes go
//!   through `state_machine::step`, the single transition authority.
//! * `lock-across-io` — in `crates/core/src/engine.rs`, the read-side
//!   entry points (`get`, `try_get`, `delete`) never take the writer
//!   lock, and no statement creates a lock/read guard in the same
//!   expression that calls into `self.backend` (device I/O must happen
//!   with all shard locks released). The same rule covers
//!   `crates/f2fs-lite/src/` (no statement acquires a lock guard in the
//!   expression that performs `.dev.` I/O — holding the filesystem's
//!   `inner` lock across NAND latency was the File-Cache multi-thread
//!   collapse mode) and `crates/core/src/maintainer.rs` (no maintenance
//!   pass started in a statement that takes a lock: the poll lock exists
//!   only for the stop condvar, and a pass under it would serialize
//!   `stop()` behind a full eviction's device I/O).
//! * `submit-to-complete` — in `crates/core/src/engine.rs` and
//!   `crates/core/src/maintainer.rs`, no statement acquires a lock/read
//!   guard in the same expression that submits a detached flush
//!   (`submit_flush(`) or waits on one (`.wait_done(`,
//!   `resolve_ticket(`). The async I/O core's contract is that the
//!   submit-to-complete interval runs with every shard lock released —
//!   holding one across it re-serializes the pipeline on device latency,
//!   which is exactly what the seal-detach refactor removed.
//! * `no-panic-paths` — `engine.rs` code above its `#[cfg(test)]` module
//!   contains no `unwrap`/`expect`/`unreachable!`/`panic!` reachable
//!   from the public API; failures surface as typed `CacheError`s.
//! * `no-unwrap-in-recovery` — code that runs while the cache is
//!   degraded or rebuilding (all of `recovery.rs`, plus the scrubber,
//!   salvage, and cleaner functions wherever they live under
//!   `crates/core/src/` or `crates/f2fs-lite/src/`) never panics: a
//!   crash *during* crash recovery or media salvage is the one failure
//!   mode the robustness layer exists to prevent, so these paths must
//!   return typed errors for every contingency.

use std::fmt;

/// One rule hit at one source line.
#[derive(Debug)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Runs every rule against one file. `path` is workspace-relative with
/// forward slashes (e.g. `crates/core/src/engine.rs`).
pub fn check_file(path: &str, text: &str, out: &mut Vec<Violation>) {
    relaxed_needs_justification(path, text, out);
    core_protocol_orderings(path, text, out);
    zns_state_authority(path, text, out);
    lock_across_io(path, text, out);
    submit_to_complete(path, text, out);
    no_panic_paths(path, text, out);
    no_unwrap_in_recovery(path, text, out);
}

fn push(
    out: &mut Vec<Violation>,
    rule: &'static str,
    path: &str,
    line: usize,
    msg: impl Into<String>,
) {
    out.push(Violation { rule, file: path.to_string(), line, msg: msg.into() });
}

// ---------------------------------------------------------------------
// Rule 1: relaxed-needs-justification
// ---------------------------------------------------------------------

/// How many lines above an `Ordering::Relaxed` use the justifying
/// comment may sit (multi-line calls put the annotation above the
/// statement).
const RELAXED_LOOKBACK: usize = 4;

fn relaxed_needs_justification(path: &str, text: &str, out: &mut Vec<Violation>) {
    // Crate sources only: test directories may deliberately use Relaxed
    // to demonstrate bugs (the loom negative twins do).
    if !path.contains("/src/") {
        return;
    }
    if text.contains("relaxed-ok(file):") {
        return;
    }
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if !line.contains("Ordering::Relaxed") {
            continue;
        }
        let justified = line.contains("relaxed-ok:")
            || (1..=RELAXED_LOOKBACK).any(|back| {
                i.checked_sub(back)
                    .and_then(|j| lines.get(j))
                    .is_some_and(|prev| prev.contains("relaxed-ok:"))
            });
        if !justified {
            push(
                out,
                "relaxed-needs-justification",
                path,
                i + 1,
                "Ordering::Relaxed without a `// relaxed-ok:` justification \
                 on this line or the preceding comment",
            );
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: core-protocol-orderings
// ---------------------------------------------------------------------

fn core_protocol_orderings(path: &str, text: &str, out: &mut Vec<Violation>) {
    if !path.starts_with("crates/core/src/protocol") {
        return;
    }
    for (i, line) in text.lines().enumerate() {
        if line.contains("Ordering::Relaxed") {
            push(
                out,
                "core-protocol-orderings",
                path,
                i + 1,
                "protocol modules are model-checked with these exact \
                 orderings; Relaxed is forbidden here even with a \
                 relaxed-ok comment",
            );
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: zns-state-authority
// ---------------------------------------------------------------------

fn zns_state_authority(path: &str, text: &str, out: &mut Vec<Violation>) {
    if !path.starts_with("crates/zns/src/") || path.ends_with("state_machine.rs") {
        return;
    }
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("//") {
            continue;
        }
        for (pos, _) in line.match_indices(".state") {
            let rest = line[pos + ".state".len()..].trim_start();
            // An assignment, not a comparison (`==`) or match arm (`=>`).
            if rest.starts_with('=') && !rest.starts_with("==") && !rest.starts_with("=>") {
                push(
                    out,
                    "zns-state-authority",
                    path,
                    i + 1,
                    "zone state assigned outside state_machine.rs; \
                     route the transition through state_machine::step",
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: lock-across-io
// ---------------------------------------------------------------------

/// Engine entry points that must stay off the writer mutex: the whole
/// point of the sharded read path is that gets and deletes never contend
/// with the append path.
const READ_PATH_FNS: &[&str] = &["get", "try_get", "delete"];

fn lock_across_io(path: &str, text: &str, out: &mut Vec<Violation>) {
    if path == "crates/core/src/engine.rs" {
        for name in READ_PATH_FNS {
            for (start_line, body) in fn_bodies(text, name) {
                for (off, line) in body.lines().enumerate() {
                    if line.contains("writer.lock()") {
                        push(
                            out,
                            "lock-across-io",
                            path,
                            start_line + off,
                            format!("read-path entry `{name}` takes the writer lock"),
                        );
                    }
                }
            }
        }
        // A guard created in the same statement as a backend call is held
        // across the device I/O. (Guards the engine *means* to hold are
        // bound with `let` on their own line and dropped before I/O.)
        for (i, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("//") || !line.contains("self.backend.") {
                continue;
            }
            if line.contains(".lock()") || line.contains("active_ro.read()") {
                push(
                    out,
                    "lock-across-io",
                    path,
                    i + 1,
                    "lock/read guard acquired in the same statement as device \
                     I/O; release all shard locks before calling the backend",
                );
            }
        }
    }
    // f2fs-lite: the filesystem's discipline is "stage under the lock,
    // issue device I/O after release". A `.dev.` call in the same
    // statement as a `.lock()` chains NAND latency onto the guard.
    if path.starts_with("crates/f2fs-lite/src/") {
        for (i, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("//") {
                continue;
            }
            if line.contains(".dev.") && line.contains(".lock()") {
                push(
                    out,
                    "lock-across-io",
                    path,
                    i + 1,
                    "filesystem lock guard acquired in the same statement \
                     as device I/O; stage under the lock, issue the I/O \
                     after release",
                );
            }
        }
    }
    // Maintainer: a maintenance pass performs eviction I/O; starting one
    // while acquiring a lock in the same statement holds that lock for
    // the whole pass (and `stop()` then waits out the device).
    if path == "crates/core/src/maintainer.rs" {
        for (i, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("//") {
                continue;
            }
            if (line.contains(".maintain(") || line.contains(".run_once("))
                && line.contains(".lock()")
            {
                push(
                    out,
                    "lock-across-io",
                    path,
                    i + 1,
                    "maintenance pass started in the same statement as a \
                     lock acquisition; the pass does device I/O and must \
                     run with the lock released",
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: submit-to-complete
// ---------------------------------------------------------------------

/// Calls that bound the async flush pipeline: submission detaches the
/// sealed buffer for device I/O, the wait side blocks until that I/O
/// completes. Neither may share a statement with a guard acquisition.
const SUBMIT_COMPLETE_TOKENS: &[&str] = &["submit_flush(", ".wait_done(", "resolve_ticket("];

fn submit_to_complete(path: &str, text: &str, out: &mut Vec<Violation>) {
    if path != "crates/core/src/engine.rs" && path != "crates/core/src/maintainer.rs" {
        return;
    }
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("//") {
            continue;
        }
        let touches_pipeline = SUBMIT_COMPLETE_TOKENS.iter().any(|t| line.contains(t));
        if touches_pipeline && (line.contains(".lock()") || line.contains("active_ro.read()")) {
            push(
                out,
                "submit-to-complete",
                path,
                i + 1,
                "lock/read guard acquired in the same statement as a flush \
                 submit/wait; the submit-to-complete interval must run with \
                 all shard locks released",
            );
        }
    }
}

/// Finds every `fn <name>(` in `text` and returns `(line of the opening
/// brace, body text including braces)` for each. Brace matching is
/// textual — good enough for this codebase, and the unit tests plus the
/// clean-workspace test in `main.rs` keep it honest.
fn fn_bodies<'a>(text: &'a str, name: &str) -> Vec<(usize, &'a str)> {
    let needle = format!("fn {name}(");
    let mut found = Vec::new();
    let mut search = 0;
    while let Some(pos) = text[search..].find(&needle) {
        let sig = search + pos;
        let Some(brace_rel) = text[sig..].find('{') else {
            break;
        };
        let open = sig + brace_rel;
        let mut depth = 0usize;
        let mut end = open;
        for (i, c) in text[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        found.push((text[..open].lines().count(), &text[open..=end]));
        search = end;
    }
    found
}

// ---------------------------------------------------------------------
// Rule 5: no-panic-paths
// ---------------------------------------------------------------------

const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "unreachable!", "panic!(", "todo!(", "unimplemented!("];

fn no_panic_paths(path: &str, text: &str, out: &mut Vec<Violation>) {
    if path != "crates/core/src/engine.rs" {
        return;
    }
    for (i, line) in text.lines().enumerate() {
        // The in-file test module may unwrap freely.
        if line.contains("#[cfg(test)]") {
            break;
        }
        if line.trim_start().starts_with("//") {
            continue;
        }
        for token in PANIC_TOKENS {
            if line.contains(token) {
                push(
                    out,
                    "no-panic-paths",
                    path,
                    i + 1,
                    format!(
                        "`{token}` reachable from the public engine API; \
                         surface the failure as a CacheError instead"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 6: no-unwrap-in-recovery
// ---------------------------------------------------------------------

/// Functions that run while the cache is degraded or rebuilding. A panic
/// in one of these turns recoverable media trouble into a crash, so their
/// bodies are held to the no-panic standard wherever they appear in the
/// covered crates.
const RECOVERY_FNS: &[&str] = &[
    "recover",
    "recover_or_scan",
    "scan_rebuild",
    "scan_region",
    "scrub",
    "scrub_region",
    "retire_region",
    "clean_one",
    "clean_pass",
];

fn no_unwrap_in_recovery(path: &str, text: &str, out: &mut Vec<Violation>) {
    if !path.starts_with("crates/core/src/") && !path.starts_with("crates/f2fs-lite/src/") {
        return;
    }
    // The in-file test module may unwrap freely.
    let cut = text.find("#[cfg(test)]").unwrap_or(text.len());
    let code = &text[..cut];
    // recovery.rs is a recovery path in its entirety.
    if path == "crates/core/src/recovery.rs" {
        scan_panic_tokens(code, 1, path, out);
        return;
    }
    for name in RECOVERY_FNS {
        for (start_line, body) in fn_bodies(code, name) {
            scan_panic_tokens(body, start_line, path, out);
        }
    }
}

/// Flags every panic token in `body`; `base` is the 1-based source line
/// of `body`'s first line.
fn scan_panic_tokens(body: &str, base: usize, path: &str, out: &mut Vec<Violation>) {
    for (off, line) in body.lines().enumerate() {
        if line.trim_start().starts_with("//") {
            continue;
        }
        for token in PANIC_TOKENS {
            if line.contains(token) {
                push(
                    out,
                    "no-unwrap-in-recovery",
                    path,
                    base + off,
                    format!(
                        "`{token}` on a recovery/scrub/salvage path; a panic \
                         here crashes the cache exactly when it is trying to \
                         survive — return a typed error instead"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Seeded-violation tests: each rule must demonstrably fire.
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, text: &str) -> Vec<Violation> {
        let mut v = Vec::new();
        check_file(path, text, &mut v);
        v
    }

    #[test]
    fn unjustified_relaxed_is_flagged() {
        let src = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n}\n";
        let v = run("crates/sim/src/thing.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "relaxed-needs-justification");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn same_line_and_preceding_comment_justifications_pass() {
        let same = "a.load(Ordering::Relaxed); // relaxed-ok: statistic\n";
        assert!(run("crates/sim/src/thing.rs", same).is_empty());
        let above = "// relaxed-ok: monotone counter, no payload published.\n\
                     let _ = a.fetch_update(\n    Ordering::Relaxed,\n    Ordering::Relaxed,\n    |v| Some(v + 1));\n";
        assert!(run("crates/sim/src/thing.rs", above).is_empty());
    }

    #[test]
    fn relaxed_lookback_window_is_bounded() {
        // An annotation five lines above no longer covers the use.
        let src = "// relaxed-ok: too far away\n\n\n\n\n a.load(Ordering::Relaxed);\n";
        let v = run("crates/sim/src/thing.rs", src);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn file_waiver_and_test_dirs_are_exempt() {
        let src = "// relaxed-ok(file): pure statistics counters.\n\
                   a.load(Ordering::Relaxed);\nb.load(Ordering::Relaxed);\n";
        assert!(run("crates/sim/src/histogram.rs", src).is_empty());
        // tests/ trees may use Relaxed to *demonstrate* races.
        let twin = "a.load(Ordering::Relaxed);\n";
        assert!(run("crates/core/tests/loom.rs", twin).is_empty());
    }

    #[test]
    fn protocol_modules_reject_relaxed_even_when_annotated() {
        let src = "self.committed.load(Ordering::Relaxed) // relaxed-ok: no\n";
        let v = run("crates/core/src/protocol/commit.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "core-protocol-orderings");
    }

    #[test]
    fn zone_state_assignment_outside_the_machine_is_flagged() {
        let src = "fn close(meta: &mut ZoneMeta) {\n    meta.state = ZoneState::Closed;\n}\n";
        let v = run("crates/zns/src/device.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "zns-state-authority");
        assert_eq!(v[0].line, 2);
        // The authority itself may assign.
        assert!(run("crates/zns/src/state_machine.rs", src).is_empty());
        // Comparisons and match arms are not assignments.
        let cmp = "if meta.state == ZoneState::Full {}\nmatch m { S { .state => 1 } }\n";
        assert!(run("crates/zns/src/device.rs", cmp).is_empty());
    }

    #[test]
    fn read_path_taking_the_writer_lock_is_flagged() {
        let src = "impl Engine {\n    pub fn try_get(&self) {\n        let w = self.writer.lock();\n    }\n    pub fn set(&self) {\n        let w = self.writer.lock();\n    }\n}\n";
        let v = run("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 1, "set may lock the writer, try_get may not: {v:?}");
        assert_eq!(v[0].rule, "lock-across-io");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn f2fs_device_io_under_lock_is_flagged() {
        // Seeded violation: the guard from `inner.lock()` lives for the
        // whole statement, so the NAND write happens under it.
        let bad = "let t = self.inner.lock().alloc.dev.write(zone, data, now)?;\n";
        let v = run("crates/f2fs-lite/src/fs.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-across-io");
        assert_eq!(v[0].line, 1);
        // The disciplined shape: stage under the lock, I/O after release.
        let good = "let zone = self.inner.lock().cur_zone;\n\
                    let t = self.dev.write(zone, data, now)?;\n";
        assert!(run("crates/f2fs-lite/src/fs.rs", good).is_empty());
        // The rule is scoped: the same line elsewhere is not flagged.
        assert!(run("crates/sim/src/thing.rs", bad).is_empty());
    }

    #[test]
    fn maintainer_pass_under_lock_is_flagged() {
        let bad =
            "let _ = signal.lock.lock().map(|_g| self.cache.maintain(now));\n";
        let v = run("crates/core/src/maintainer.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-across-io");
        // The real loop's shape — pass first, lock only for the condvar
        // wait — is clean.
        let good = "let _ = self.cache.maintain(now);\n\
                    let guard = signal.lock.lock().expect(\"poisoned\");\n";
        assert!(run("crates/core/src/maintainer.rs", good).is_empty());
    }

    #[test]
    fn guard_held_across_backend_io_is_flagged() {
        let src = "let loc = self.slots[i].meta.lock().location;\n\
                   self.backend.read_at(self.slots[i].meta.lock().location)?;\n";
        let v = run("crates/core/src/engine.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-across-io");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn flush_submit_or_wait_under_lock_is_flagged() {
        // Seeded violations: a submit issued while the statement holds the
        // writer guard, and a wait chained onto a freshly taken meta lock.
        let bad_submit = "let t = self.writer.lock().map(|_| self.submit_flush(job, now))?;\n";
        let v = run("crates/core/src/engine.rs", bad_submit);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "submit-to-complete");
        let bad_wait =
            "let done = self.slots[i].meta.lock().ticket.cell.wait_done();\n";
        let v = run("crates/core/src/engine.rs", bad_wait);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "submit-to-complete");
        // The disciplined shape: detach under the lock, submit after.
        let good = "let job = { let mut w = self.writer.lock(); w.detach() };\n\
                    let t = self.submit_flush(job, now)?;\n\
                    let done = ticket.cell.wait_done();\n";
        assert!(run("crates/core/src/engine.rs", good).is_empty());
        // Scoped: other files may compose these names freely.
        assert!(run("crates/sim/src/thing.rs", bad_submit).is_empty());
    }

    #[test]
    fn panic_tokens_above_the_test_module_are_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn g(y: Option<u32>) { y.unwrap(); }\n}\n";
        // `.unwrap()` appears twice but only the pre-test one fires.
        let v: Vec<_> =
            run("crates/core/src/engine.rs", src).into_iter().filter(|v| v.rule == "no-panic-paths").collect();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_on_recovery_paths_is_flagged() {
        // recovery.rs is covered wall to wall.
        let whole = "pub fn snapshot() -> u32 {\n    compute().unwrap()\n}\n";
        let v = run("crates/core/src/recovery.rs", whole);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-unwrap-in-recovery");
        assert_eq!(v[0].line, 2);
        // Elsewhere, only the named recovery/scrub/cleaner fns are scanned.
        let src = "fn clean_one(&self) {\n    self.pick().expect(\"victim\");\n}\n\
                   fn other(&self) {\n    self.pick().expect(\"fine here\");\n}\n";
        let v: Vec<_> = run("crates/f2fs-lite/src/fs.rs", src)
            .into_iter()
            .filter(|v| v.rule == "no-unwrap-in-recovery")
            .collect();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        // Test modules and uncovered crates are exempt.
        let tested = "#[cfg(test)]\nmod tests {\n    fn scrub() { x.unwrap(); }\n}\n";
        assert!(run("crates/core/src/recovery.rs", tested).is_empty());
        assert!(run("crates/sim/src/thing.rs", whole).is_empty());
    }

    #[test]
    fn fn_bodies_matches_braces_and_reports_lines() {
        let src = "struct S;\nimpl S {\n    fn get(&self) {\n        if true { let _ = 1; }\n    }\n    fn get_at(&self) {}\n}\n";
        let bodies = fn_bodies(src, "get");
        assert_eq!(bodies.len(), 1, "`fn get_at(` must not match `fn get(`");
        assert_eq!(bodies[0].0, 3);
        assert!(bodies[0].1.contains("let _ = 1"));
    }
}
