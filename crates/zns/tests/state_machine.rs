//! Exhaustive table-driven check of the zone state machine.
//!
//! Every (state, op, wp) combination is enumerated; each must map to
//! exactly the `Ok(next)` or typed `IllegalTransition` the table says —
//! and never panic. The table is written out literally (no clever
//! generation) so a change to the machine is a visible diff here.

use zns::state_machine::{transition, IllegalTransition, ZoneOp};
use zns::ZoneState;

use ZoneState::{Closed, Empty, ExplicitOpen, Full, ImplicitOpen, Offline, ReadOnly};

const WRITE: ZoneOp = ZoneOp::Write { fills: false };
const FILL: ZoneOp = ZoneOp::Write { fills: true };
const DEGRADE_RO: ZoneOp = ZoneOp::DegradeReadOnly;
const DEGRADE_OFF: ZoneOp = ZoneOp::DegradeOffline;

/// `Ok(next)` rows of the machine. Anything not listed is illegal.
/// Columns: from-state, op, wp-at-zero?, expected next state.
/// `wp_zero: None` means the pointer position must not matter.
struct Row {
    from: ZoneState,
    op: ZoneOp,
    wp_zero: Option<bool>,
    next: ZoneState,
}

const LEGAL: &[Row] = &[
    // Write (non-filling): implicitly opens, except explicit stays put.
    Row { from: Empty,        op: WRITE, wp_zero: None,        next: ImplicitOpen },
    Row { from: ImplicitOpen, op: WRITE, wp_zero: None,        next: ImplicitOpen },
    Row { from: ExplicitOpen, op: WRITE, wp_zero: None,        next: ExplicitOpen },
    Row { from: Closed,       op: WRITE, wp_zero: None,        next: ImplicitOpen },
    // Write that fills the zone: Full, regardless of open flavor.
    Row { from: Empty,        op: FILL,  wp_zero: None,        next: Full },
    Row { from: ImplicitOpen, op: FILL,  wp_zero: None,        next: Full },
    Row { from: ExplicitOpen, op: FILL,  wp_zero: None,        next: Full },
    Row { from: Closed,       op: FILL,  wp_zero: None,        next: Full },
    // Explicit open: legal from every non-Full state.
    Row { from: Empty,        op: ZoneOp::Open,   wp_zero: None,        next: ExplicitOpen },
    Row { from: ImplicitOpen, op: ZoneOp::Open,   wp_zero: None,        next: ExplicitOpen },
    Row { from: ExplicitOpen, op: ZoneOp::Open,   wp_zero: None,        next: ExplicitOpen },
    Row { from: Closed,       op: ZoneOp::Open,   wp_zero: None,        next: ExplicitOpen },
    // Close: open zones only; an untouched pointer returns to Empty.
    Row { from: ImplicitOpen, op: ZoneOp::Close,  wp_zero: Some(true),  next: Empty },
    Row { from: ImplicitOpen, op: ZoneOp::Close,  wp_zero: Some(false), next: Closed },
    Row { from: ExplicitOpen, op: ZoneOp::Close,  wp_zero: Some(true),  next: Empty },
    Row { from: ExplicitOpen, op: ZoneOp::Close,  wp_zero: Some(false), next: Closed },
    // Finish: everything but Full lands in Full.
    Row { from: Empty,        op: ZoneOp::Finish, wp_zero: None,        next: Full },
    Row { from: ImplicitOpen, op: ZoneOp::Finish, wp_zero: None,        next: Full },
    Row { from: ExplicitOpen, op: ZoneOp::Finish, wp_zero: None,        next: Full },
    Row { from: Closed,       op: ZoneOp::Finish, wp_zero: None,        next: Full },
    // Reset: legal from every healthy state, always Empty. Degraded
    // zones cannot be erased back into service.
    Row { from: Empty,        op: ZoneOp::Reset,  wp_zero: None,        next: Empty },
    Row { from: ImplicitOpen, op: ZoneOp::Reset,  wp_zero: None,        next: Empty },
    Row { from: ExplicitOpen, op: ZoneOp::Reset,  wp_zero: None,        next: Empty },
    Row { from: Closed,       op: ZoneOp::Reset,  wp_zero: None,        next: Empty },
    Row { from: Full,         op: ZoneOp::Reset,  wp_zero: None,        next: Empty },
    // Degrade to Read-Only: any healthy state; terminal thereafter.
    Row { from: Empty,        op: DEGRADE_RO,     wp_zero: None,        next: ReadOnly },
    Row { from: ImplicitOpen, op: DEGRADE_RO,     wp_zero: None,        next: ReadOnly },
    Row { from: ExplicitOpen, op: DEGRADE_RO,     wp_zero: None,        next: ReadOnly },
    Row { from: Closed,       op: DEGRADE_RO,     wp_zero: None,        next: ReadOnly },
    Row { from: Full,         op: DEGRADE_RO,     wp_zero: None,        next: ReadOnly },
    // Degrade to Offline: anything not already dead, Read-Only included.
    Row { from: Empty,        op: DEGRADE_OFF,    wp_zero: None,        next: Offline },
    Row { from: ImplicitOpen, op: DEGRADE_OFF,    wp_zero: None,        next: Offline },
    Row { from: ExplicitOpen, op: DEGRADE_OFF,    wp_zero: None,        next: Offline },
    Row { from: Closed,       op: DEGRADE_OFF,    wp_zero: None,        next: Offline },
    Row { from: Full,         op: DEGRADE_OFF,    wp_zero: None,        next: Offline },
    Row { from: ReadOnly,     op: DEGRADE_OFF,    wp_zero: None,        next: Offline },
];

const STATES: [ZoneState; 7] =
    [Empty, ImplicitOpen, ExplicitOpen, Closed, Full, ReadOnly, Offline];
const OPS: [ZoneOp; 8] = [
    WRITE,
    FILL,
    ZoneOp::Open,
    ZoneOp::Close,
    ZoneOp::Finish,
    ZoneOp::Reset,
    DEGRADE_RO,
    DEGRADE_OFF,
];

fn expected(from: ZoneState, op: ZoneOp, wp_zero: bool) -> Option<ZoneState> {
    LEGAL
        .iter()
        .find(|r| r.from == from && r.op == op && r.wp_zero.is_none_or(|w| w == wp_zero))
        .map(|r| r.next)
}

#[test]
fn every_state_op_pair_matches_the_table_and_never_panics() {
    let mut checked = 0;
    for &from in &STATES {
        for &op in &OPS {
            for wp_zero in [true, false] {
                let got = transition(from, op, wp_zero);
                match expected(from, op, wp_zero) {
                    Some(next) => assert_eq!(
                        got,
                        Ok(next),
                        "({from:?}, {op:?}, wp_zero={wp_zero}) must be legal"
                    ),
                    None => assert_eq!(
                        got,
                        Err(IllegalTransition { from, op }),
                        "({from:?}, {op:?}, wp_zero={wp_zero}) must be illegal"
                    ),
                }
                checked += 1;
            }
        }
    }
    // 7 states x 8 ops x 2 pointer positions: full coverage, no panics.
    assert_eq!(checked, 112);
}

#[test]
fn illegal_pairs_are_exactly_the_full_closed_and_degraded_corners() {
    // The complement of the table, spelled out: a reviewer can audit the
    // forbidden set directly.
    let illegal: Vec<(ZoneState, ZoneOp)> = STATES
        .iter()
        .flat_map(|&s| OPS.iter().map(move |&op| (s, op)))
        .filter(|&(s, op)| {
            transition(s, op, true).is_err() && transition(s, op, false).is_err()
        })
        .collect();
    assert_eq!(
        illegal,
        vec![
            (Empty, ZoneOp::Close),
            (Closed, ZoneOp::Close),
            (Full, WRITE),
            (Full, FILL),
            (Full, ZoneOp::Open),
            (Full, ZoneOp::Close),
            (Full, ZoneOp::Finish),
            // Read-Only: every host op is rejected; only a further fall
            // to Offline remains.
            (ReadOnly, WRITE),
            (ReadOnly, FILL),
            (ReadOnly, ZoneOp::Open),
            (ReadOnly, ZoneOp::Close),
            (ReadOnly, ZoneOp::Finish),
            (ReadOnly, ZoneOp::Reset),
            (ReadOnly, DEGRADE_RO),
            // Offline: fully terminal.
            (Offline, WRITE),
            (Offline, FILL),
            (Offline, ZoneOp::Open),
            (Offline, ZoneOp::Close),
            (Offline, ZoneOp::Finish),
            (Offline, ZoneOp::Reset),
            (Offline, DEGRADE_RO),
            (Offline, DEGRADE_OFF),
        ]
    );
}

#[test]
fn typed_error_carries_the_offending_pair() {
    let err = transition(Full, WRITE, false).unwrap_err();
    assert_eq!(err.from, Full);
    assert_eq!(err.op, WRITE);
    assert_eq!(err.to_string(), "cannot write a zone in state full");
}
