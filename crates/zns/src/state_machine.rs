//! The zone state machine: the single transition authority.
//!
//! NVMe ZNS zones move through a small, fully enumerable state machine
//! (Empty → ImplicitOpen/ExplicitOpen → Closed/Full → Empty, plus the
//! one-way degradations into ReadOnly and Offline that a wearing device
//! takes on its own initiative). The device
//! emulator used to scatter `meta.state = …` assignments across its
//! command handlers; this module centralizes them so that
//!
//! * every transition is decided by one pure, exhaustively testable
//!   function ([`transition`]),
//! * every *applied* transition goes through [`step`], the only code in
//!   the crate allowed to assign a zone's state field (`cargo xtask
//!   lint` rule `zns-state-authority` rejects `.state =` assignments
//!   anywhere else under `crates/zns/src`), and
//! * illegal (state, op) pairs surface as a typed
//!   [`IllegalTransition`] — never a panic, and never a silent
//!   pointer/state mismatch.
//!
//! Resource limits (max open / max active zones) are deliberately *not*
//! judged here: they depend on device-wide counts, and the spec treats
//! them as a separate failure (`TooManyActiveZones`) from transition
//! legality. The device checks them between planning a transition
//! ([`transition`]) and committing it ([`step`]).
//!
//! The full (state × op) table is pinned by
//! `crates/zns/tests/state_machine.rs`.

use crate::zone::{ZoneId, ZoneState};
use crate::ZnsError;
use core::fmt;

/// A zone-level command, as seen by the state machine.
///
/// `Write` covers both regular writes and zone appends (identical state
/// semantics); `fills` says whether this write advances the pointer to
/// the zone capacity, which moves the zone to `Full` instead of leaving
/// it open.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ZoneOp {
    /// Write or append at the write pointer.
    Write {
        /// The write pointer reaches the zone capacity.
        fills: bool,
    },
    /// Explicit open command.
    Open,
    /// Close command (also the controller's auto-close of the oldest
    /// implicitly open zone when open resources run out).
    Close,
    /// Finish command: jump the pointer to the end, drop all resources.
    Finish,
    /// Reset command: rewind the pointer, erase, drop all resources.
    Reset,
    /// Controller-initiated degradation to Read-Only (wear-out, failed
    /// erase): data below the pointer stays readable, everything else is
    /// rejected. Not a host command — the device emulator applies it when
    /// a degradation fault fires.
    DegradeReadOnly,
    /// Controller-initiated degradation to Offline: the zone serves
    /// nothing. Terminal; legal from every state but Offline itself.
    DegradeOffline,
}

impl ZoneOp {
    /// The command name used in error messages (matches the historical
    /// `ZnsError::InvalidState { op }` strings).
    pub fn name(self) -> &'static str {
        match self {
            ZoneOp::Write { .. } => "write",
            ZoneOp::Open => "open",
            ZoneOp::Close => "close",
            ZoneOp::Finish => "finish",
            ZoneOp::Reset => "reset",
            ZoneOp::DegradeReadOnly => "degrade-read-only",
            ZoneOp::DegradeOffline => "degrade-offline",
        }
    }
}

/// A (state, op) pair the zone state machine forbids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The zone's state when the command arrived.
    pub from: ZoneState,
    /// The rejected command.
    pub op: ZoneOp,
}

impl IllegalTransition {
    /// Converts into the device-level error for `zone`.
    pub fn into_zns(self, zone: ZoneId) -> ZnsError {
        ZnsError::InvalidState {
            zone,
            state: self.from,
            op: self.op.name(),
        }
    }
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot {} a zone in state {}", self.op.name(), self.from)
    }
}

impl std::error::Error for IllegalTransition {}

/// The pure legality function: the state a zone in `from` enters when
/// `op` succeeds, or [`IllegalTransition`].
///
/// `wp_zero` reports whether the write pointer is at the zone start; it
/// only matters for `Close`, which returns an untouched zone to `Empty`
/// (per spec) and a written one to `Closed`.
///
/// Never panics — every (state, op) pair maps to `Ok` or `Err`, which
/// the table test enumerates exhaustively.
pub fn transition(from: ZoneState, op: ZoneOp, wp_zero: bool) -> Result<ZoneState, IllegalTransition> {
    use ZoneState::*;
    let illegal = Err(IllegalTransition { from, op });
    match op {
        ZoneOp::Write { fills } => match from {
            // A filling write lands in Full regardless of how the zone
            // was opened; otherwise writes implicitly open the zone —
            // except an explicitly opened zone, which keeps its
            // explicit resources (NVMe: writes do not demote
            // Explicitly Opened to Implicitly Opened).
            Empty | ImplicitOpen | Closed => Ok(if fills { Full } else { ImplicitOpen }),
            ExplicitOpen => Ok(if fills { Full } else { ExplicitOpen }),
            Full | ReadOnly | Offline => illegal,
        },
        ZoneOp::Open => match from {
            Empty | ImplicitOpen | ExplicitOpen | Closed => Ok(ExplicitOpen),
            Full | ReadOnly | Offline => illegal,
        },
        ZoneOp::Close => match from {
            // Closing a zone whose pointer never moved returns it to
            // Empty (it holds no data to keep active).
            ImplicitOpen | ExplicitOpen => Ok(if wp_zero { Empty } else { Closed }),
            Empty | Closed | Full | ReadOnly | Offline => illegal,
        },
        ZoneOp::Finish => match from {
            Empty | ImplicitOpen | ExplicitOpen | Closed => Ok(Full),
            Full | ReadOnly | Offline => illegal,
        },
        // Reset is legal from every healthy state, including Empty (a
        // no-op rewind) and Full (the usual reclaim path) — but a
        // degraded zone cannot be erased back into service.
        ZoneOp::Reset => match from {
            Empty | ImplicitOpen | ExplicitOpen | Closed | Full => Ok(Empty),
            ReadOnly | Offline => illegal,
        },
        // Degradation is controller-initiated and terminal: any healthy
        // zone can go Read-Only; anything not already dead can go
        // Offline. Re-degrading to the same state is rejected so the
        // device never double-counts a dying zone.
        ZoneOp::DegradeReadOnly => match from {
            Empty | ImplicitOpen | ExplicitOpen | Closed | Full => Ok(ReadOnly),
            ReadOnly | Offline => illegal,
        },
        ZoneOp::DegradeOffline => match from {
            Empty | ImplicitOpen | ExplicitOpen | Closed | Full | ReadOnly => Ok(Offline),
            Offline => illegal,
        },
    }
}

/// Plans and *applies* a transition: the only sanctioned way to mutate a
/// zone's state field.
///
/// Returns the new state. On an illegal pair the slot is left untouched.
pub fn step(
    slot: &mut ZoneState,
    op: ZoneOp,
    wp_zero: bool,
) -> Result<ZoneState, IllegalTransition> {
    let next = transition(*slot, op, wp_zero)?;
    *slot = next;
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_applies_only_legal_transitions() {
        let mut s = ZoneState::Empty;
        assert_eq!(step(&mut s, ZoneOp::Write { fills: false }, true), Ok(ZoneState::ImplicitOpen));
        assert_eq!(s, ZoneState::ImplicitOpen);
        assert_eq!(step(&mut s, ZoneOp::Finish, false), Ok(ZoneState::Full));
        // Illegal: the slot must be left untouched.
        let err = step(&mut s, ZoneOp::Write { fills: false }, false).unwrap_err();
        assert_eq!(err.from, ZoneState::Full);
        assert_eq!(s, ZoneState::Full);
        assert_eq!(step(&mut s, ZoneOp::Reset, true), Ok(ZoneState::Empty));
    }

    #[test]
    fn illegal_transition_maps_to_typed_device_error() {
        let err = transition(ZoneState::Full, ZoneOp::Open, false).unwrap_err();
        match err.into_zns(ZoneId(3)) {
            ZnsError::InvalidState { zone, state, op } => {
                assert_eq!(zone, ZoneId(3));
                assert_eq!(state, ZoneState::Full);
                assert_eq!(op, "open");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }
}
