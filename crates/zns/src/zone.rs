//! Zone identifiers, states, and per-zone bookkeeping.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A zone index within the device.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ZoneId(pub u32);

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone:{}", self.0)
    }
}

/// NVMe ZNS zone states, including the two degraded terminal states a
/// wearing device reaches (ZSRO / ZSO in the spec).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZoneState {
    /// No data; write pointer at zone start.
    Empty,
    /// Opened by a write without an explicit open command.
    ImplicitOpen,
    /// Opened by an explicit open command.
    ExplicitOpen,
    /// Has data and an intact write pointer but holds no open resources.
    Closed,
    /// Write pointer is invalid; the zone must be reset before rewriting.
    Full,
    /// Degraded: data below the write pointer stays readable, but the
    /// zone accepts no writes and cannot be reset. Terminal except for a
    /// further degradation to [`ZoneState::Offline`].
    ReadOnly,
    /// Dead: the zone serves nothing — reads, writes, and resets all
    /// fail. Terminal.
    Offline,
}

impl ZoneState {
    /// Whether the zone holds an open resource.
    pub fn is_open(self) -> bool {
        matches!(self, ZoneState::ImplicitOpen | ZoneState::ExplicitOpen)
    }

    /// Whether the zone holds an active resource (open or closed).
    pub fn is_active(self) -> bool {
        self.is_open() || self == ZoneState::Closed
    }

    /// Whether the zone accepts writes at its write pointer.
    pub fn is_writable(self) -> bool {
        matches!(
            self,
            ZoneState::Empty | ZoneState::ImplicitOpen | ZoneState::ExplicitOpen | ZoneState::Closed
        )
    }

    /// Whether the zone has degraded (read-only or offline). Degraded
    /// zones never return to service; capacity accounting must drop them.
    pub fn is_degraded(self) -> bool {
        matches!(self, ZoneState::ReadOnly | ZoneState::Offline)
    }

    /// Whether reads below the write pointer still succeed. Everything
    /// but [`ZoneState::Offline`] serves its persisted data.
    pub fn is_readable(self) -> bool {
        self != ZoneState::Offline
    }
}

impl fmt::Display for ZoneState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ZoneState::Empty => "empty",
            ZoneState::ImplicitOpen => "implicit-open",
            ZoneState::ExplicitOpen => "explicit-open",
            ZoneState::Closed => "closed",
            ZoneState::Full => "full",
            ZoneState::ReadOnly => "read-only",
            ZoneState::Offline => "offline",
        };
        f.write_str(s)
    }
}

/// A report-zones style description of one zone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneInfo {
    /// The zone.
    pub id: ZoneId,
    /// Current state.
    pub state: ZoneState,
    /// Write pointer, in 4 KiB blocks from zone start.
    pub write_pointer: u64,
    /// Writable capacity in 4 KiB blocks (`cap`, ≤ zone size).
    pub capacity: u64,
    /// Times this zone has been reset (wear/lifetime signal).
    pub reset_count: u64,
}

impl ZoneInfo {
    /// Blocks still writable before the zone is full.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.write_pointer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(ZoneState::ImplicitOpen.is_open());
        assert!(ZoneState::ExplicitOpen.is_open());
        assert!(!ZoneState::Closed.is_open());
        assert!(ZoneState::Closed.is_active());
        assert!(!ZoneState::Empty.is_active());
        assert!(!ZoneState::Full.is_writable());
        assert!(ZoneState::Empty.is_writable());
    }

    #[test]
    fn degraded_states_hold_no_resources() {
        for s in [ZoneState::ReadOnly, ZoneState::Offline] {
            assert!(!s.is_open());
            assert!(!s.is_active());
            assert!(!s.is_writable());
            assert!(s.is_degraded());
        }
        assert!(ZoneState::ReadOnly.is_readable());
        assert!(!ZoneState::Offline.is_readable());
        assert!(!ZoneState::Full.is_degraded());
        assert!(ZoneState::Full.is_readable());
    }

    #[test]
    fn info_remaining() {
        let info = ZoneInfo {
            id: ZoneId(1),
            state: ZoneState::ImplicitOpen,
            write_pointer: 10,
            capacity: 64,
            reset_count: 2,
        };
        assert_eq!(info.remaining(), 54);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ZoneId(4).to_string(), "zone:4");
        assert_eq!(ZoneState::Full.to_string(), "full");
    }
}
