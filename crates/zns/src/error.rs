//! Typed errors for zoned-device constraint violations.

use core::fmt;

use crate::zone::{ZoneId, ZoneState};

/// Errors returned by [`crate::ZnsDevice`].
///
/// These mirror NVMe ZNS status codes: they describe host protocol
/// violations (writing away from the write pointer, exceeding resource
/// limits) rather than media failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZnsError {
    /// Zone index beyond the device.
    NoSuchZone {
        /// Offending zone.
        zone: u32,
        /// Number of zones on the device.
        zones: u32,
    },
    /// Write did not land on the write pointer.
    NotAtWritePointer {
        /// Zone written.
        zone: ZoneId,
        /// Current write pointer (blocks).
        write_pointer: u64,
        /// Offset the host attempted (blocks).
        attempted: u64,
    },
    /// Write would cross the zone's writable capacity.
    ZoneBoundary {
        /// Zone written.
        zone: ZoneId,
        /// Blocks remaining.
        remaining: u64,
        /// Blocks attempted.
        attempted: u64,
    },
    /// Operation invalid in the zone's current state.
    InvalidState {
        /// Zone in question.
        zone: ZoneId,
        /// Its state.
        state: ZoneState,
        /// The operation attempted, e.g. `"write"`.
        op: &'static str,
    },
    /// Read at or beyond the write pointer.
    ReadBeyondWritePointer {
        /// Zone read.
        zone: ZoneId,
        /// Current write pointer (blocks).
        write_pointer: u64,
        /// First block the host tried to read.
        attempted: u64,
    },
    /// Too many active zones (open + closed).
    TooManyActiveZones {
        /// Device limit.
        limit: u32,
    },
    /// Buffer length is zero or not 4 KiB-aligned.
    Misaligned {
        /// Offending byte length.
        len: usize,
    },
    /// The zone has entered a degraded terminal state: `ReadOnly` still
    /// serves reads below the write pointer, `Offline` serves nothing.
    /// Unlike [`ZnsError::InvalidState`], this is a media condition the
    /// host must route around, not a protocol mistake it can correct.
    ZoneDegraded {
        /// Zone in question.
        zone: ZoneId,
        /// The degraded state it now occupies.
        state: ZoneState,
    },
    /// Error propagated from the flash array; always a bug in this crate.
    Nand(String),
    /// Failure injected by a [`sim::fault::FaultInjector`] attached to the
    /// device; models media/firmware failures rather than protocol errors.
    Injected(String),
}

impl fmt::Display for ZnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZnsError::NoSuchZone { zone, zones } => {
                write!(f, "zone {zone} out of range ({zones} zones)")
            }
            ZnsError::NotAtWritePointer {
                zone,
                write_pointer,
                attempted,
            } => write!(
                f,
                "{zone}: write at block {attempted} but write pointer is {write_pointer}"
            ),
            ZnsError::ZoneBoundary {
                zone,
                remaining,
                attempted,
            } => write!(
                f,
                "{zone}: write of {attempted} blocks exceeds remaining capacity {remaining}"
            ),
            ZnsError::InvalidState { zone, state, op } => {
                write!(f, "{zone}: cannot {op} in state {state}")
            }
            ZnsError::ReadBeyondWritePointer {
                zone,
                write_pointer,
                attempted,
            } => write!(
                f,
                "{zone}: read at block {attempted} beyond write pointer {write_pointer}"
            ),
            ZnsError::TooManyActiveZones { limit } => {
                write!(f, "active zone limit {limit} exceeded")
            }
            ZnsError::Misaligned { len } => {
                write!(f, "buffer length {len} is zero or not 4096-aligned")
            }
            ZnsError::ZoneDegraded { zone, state } => {
                write!(f, "{zone}: degraded to {state}")
            }
            ZnsError::Nand(msg) => write!(f, "flash error: {msg}"),
            ZnsError::Injected(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl std::error::Error for ZnsError {}

impl From<ZnsError> for sim::IoError {
    fn from(err: ZnsError) -> Self {
        match err {
            // Injected faults map to Device so they look identical to
            // faults injected at the block layer (`FaultyDevice`).
            ZnsError::Injected(msg) => sim::IoError::Device(format!("injected fault: {msg}")),
            other => sim::IoError::Zoned(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let e = ZnsError::NotAtWritePointer {
            zone: ZoneId(3),
            write_pointer: 8,
            attempted: 4,
        };
        let s = e.to_string();
        assert!(s.contains("zone:3") && s.contains('8') && s.contains('4'));
        let io: sim::IoError = e.into();
        assert!(io.to_string().contains("zone:3"));
    }
}
