//! Zoned Namespace SSD emulator.
//!
//! Implements the NVMe ZNS host model the paper relies on (§2.2): the flash
//! is divided into zones; each zone reads randomly but writes only
//! sequentially at its write pointer; the pointer is rewound by *reset*,
//! jumped to the end by *finish*, and zones pass through the
//! empty → open → closed/full state machine with device-enforced limits on
//! concurrently open and active zones.
//!
//! Because the host performs all cleaning, the device never moves data
//! internally: **device-level write amplification is exactly 1.0 by
//! construction**, which is the property the paper's Zone-Cache and
//! Region-Cache schemes exploit.
//!
//! Zones stripe across a configurable number of dies, so larger zones enjoy
//! more internal parallelism — the effect behind the paper's remark that
//! small-zone devices have lower per-zone throughput (§3.2).
//!
//! # Example
//!
//! ```
//! use zns::{ZnsConfig, ZnsDevice, ZoneId};
//! use sim::Nanos;
//!
//! let dev = ZnsDevice::new(ZnsConfig::small_test());
//! let block = vec![7u8; 4096];
//! let done = dev.write(ZoneId(0), &block, Nanos::ZERO).unwrap();
//! let mut out = vec![0u8; 4096];
//! dev.read(ZoneId(0), 0, &mut out, done).unwrap();
//! assert_eq!(out, block);
//! assert_eq!(dev.zone_state(ZoneId(0)).unwrap(), zns::ZoneState::ImplicitOpen);
//! ```

pub mod device;
pub mod error;
pub mod mapping;
pub mod state_machine;
pub mod zone;

pub use device::{DieService, ZnsConfig, ZnsDevice, ZnsStatsSnapshot};
pub use error::ZnsError;
pub use state_machine::{IllegalTransition, ZoneOp};
pub use mapping::ZoneLayout;
pub use zone::{ZoneId, ZoneInfo, ZoneState};
