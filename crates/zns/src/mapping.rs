//! Zone-to-flash address mapping.
//!
//! A zone occupies `zone_blocks` erase blocks spread over `stripe_dies`
//! dies of one *die group*; consecutive zone offsets round-robin across the
//! stripe so that a large sequential zone write keeps several dies busy at
//! once. The stripe width is the knob behind the paper's observation that
//! devices with smaller zones deliver less per-zone throughput (§3.2): a
//! zone can never stripe wider than the blocks it is made of.

use nand::{Geometry, PageAddr};
use serde::{Deserialize, Serialize};

use crate::zone::ZoneId;

/// Immutable description of how zones map onto the flash array.
///
/// # Example
///
/// ```
/// use nand::Geometry;
/// use zns::ZoneLayout;
///
/// // 4 dies, 8 blocks each, 8 pages per block.
/// let g = Geometry::new(2, 2, 8, 8);
/// // Zones of 4 blocks striped over 2 dies.
/// let layout = ZoneLayout::new(g, 4, 2).unwrap();
/// assert_eq!(layout.num_zones(), 8);
/// assert_eq!(layout.zone_size_blocks(), 4 * 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneLayout {
    geometry: Geometry,
    zone_blocks: u32,
    stripe_dies: u32,
    die_groups: u32,
    blocks_per_die_per_zone: u32,
    zones_per_group: u32,
    zones: u32,
}

/// Errors constructing a [`ZoneLayout`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// `stripe_dies` must divide the total die count.
    StripeDoesNotDivideDies {
        /// Requested stripe width.
        stripe_dies: u32,
        /// Dies in the array.
        total_dies: u32,
    },
    /// `zone_blocks` must be a multiple of `stripe_dies`.
    ZoneNotStripeMultiple {
        /// Requested blocks per zone.
        zone_blocks: u32,
        /// Requested stripe width.
        stripe_dies: u32,
    },
    /// The geometry is too small to hold even one zone.
    NoZonesFit,
}

impl core::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LayoutError::StripeDoesNotDivideDies {
                stripe_dies,
                total_dies,
            } => write!(f, "stripe width {stripe_dies} does not divide {total_dies} dies"),
            LayoutError::ZoneNotStripeMultiple {
                zone_blocks,
                stripe_dies,
            } => write!(
                f,
                "zone of {zone_blocks} blocks is not a multiple of stripe width {stripe_dies}"
            ),
            LayoutError::NoZonesFit => f.write_str("geometry too small for a single zone"),
        }
    }
}

impl std::error::Error for LayoutError {}

impl ZoneLayout {
    /// Builds a layout of zones of `zone_blocks` erase blocks striped over
    /// `stripe_dies` dies.
    ///
    /// # Errors
    ///
    /// See [`LayoutError`] for each divisibility requirement.
    pub fn new(geometry: Geometry, zone_blocks: u32, stripe_dies: u32) -> Result<Self, LayoutError> {
        let total_dies = geometry.total_dies();
        if stripe_dies == 0 || !total_dies.is_multiple_of(stripe_dies) {
            return Err(LayoutError::StripeDoesNotDivideDies {
                stripe_dies,
                total_dies,
            });
        }
        if zone_blocks == 0 || !zone_blocks.is_multiple_of(stripe_dies) {
            return Err(LayoutError::ZoneNotStripeMultiple {
                zone_blocks,
                stripe_dies,
            });
        }
        let blocks_per_die_per_zone = zone_blocks / stripe_dies;
        let die_groups = total_dies / stripe_dies;
        let zones_per_group = geometry.blocks_per_die / blocks_per_die_per_zone;
        let zones = zones_per_group * die_groups;
        if zones == 0 {
            return Err(LayoutError::NoZonesFit);
        }
        Ok(ZoneLayout {
            geometry,
            zone_blocks,
            stripe_dies,
            die_groups,
            blocks_per_die_per_zone,
            zones_per_group,
            zones,
        })
    }

    /// Number of zones on the device.
    pub fn num_zones(&self) -> u32 {
        self.zones
    }

    /// Zone size in 4 KiB blocks (== flash pages).
    pub fn zone_size_blocks(&self) -> u64 {
        self.zone_blocks as u64 * self.geometry.pages_per_block as u64
    }

    /// Zone size in bytes.
    pub fn zone_size_bytes(&self) -> u64 {
        self.zone_size_blocks() * self.geometry.page_size() as u64
    }

    /// Stripe width in dies.
    pub fn stripe_dies(&self) -> u32 {
        self.stripe_dies
    }

    /// Erase blocks per zone.
    pub fn zone_blocks(&self) -> u32 {
        self.zone_blocks
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Maps a zone-relative 4 KiB block offset to a physical page.
    ///
    /// # Panics
    ///
    /// Panics if `zone` or `offset` is out of range; callers validate
    /// against [`Self::num_zones`] / [`Self::zone_size_blocks`] first.
    pub fn page_of(&self, zone: ZoneId, offset: u64) -> PageAddr {
        assert!(zone.0 < self.zones, "zone {zone} out of range");
        assert!(
            offset < self.zone_size_blocks(),
            "offset {offset} outside zone of {} blocks",
            self.zone_size_blocks()
        );
        let group = zone.0 % self.die_groups;
        let k = zone.0 / self.die_groups;
        let stripe = self.stripe_dies as u64;
        let ppb = self.geometry.pages_per_block as u64;

        let die_in_group = offset % stripe;
        let q = offset / stripe;
        let die = (group * self.stripe_dies) as u64 + die_in_group;
        let local_block = q / ppb;
        let page_in_block = q % ppb;
        let die_block = k as u64 * self.blocks_per_die_per_zone as u64 + local_block;
        let block = die * self.geometry.blocks_per_die as u64 + die_block;
        PageAddr(block * ppb + page_in_block)
    }

    /// The erase blocks making up a zone, for reset.
    pub fn blocks_of(&self, zone: ZoneId) -> Vec<nand::BlockAddr> {
        assert!(zone.0 < self.zones, "zone {zone} out of range");
        let group = zone.0 % self.die_groups;
        let k = zone.0 / self.die_groups;
        let mut out = Vec::with_capacity(self.zone_blocks as usize);
        for s in 0..self.stripe_dies {
            let die = (group * self.stripe_dies + s) as u64;
            for b in 0..self.blocks_per_die_per_zone {
                let die_block = k as u64 * self.blocks_per_die_per_zone as u64 + b as u64;
                out.push(nand::BlockAddr(
                    die * self.geometry.blocks_per_die as u64 + die_block,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn layout() -> ZoneLayout {
        // 4 dies × 8 blocks × 8 pages; zones of 4 blocks over 2 dies.
        ZoneLayout::new(Geometry::new(2, 2, 8, 8), 4, 2).unwrap()
    }

    #[test]
    fn construction_validates() {
        let g = Geometry::new(2, 2, 8, 8);
        assert!(matches!(
            ZoneLayout::new(g, 4, 3),
            Err(LayoutError::StripeDoesNotDivideDies { .. })
        ));
        assert!(matches!(
            ZoneLayout::new(g, 3, 2),
            Err(LayoutError::ZoneNotStripeMultiple { .. })
        ));
        assert!(matches!(
            ZoneLayout::new(Geometry::new(1, 1, 1, 8), 2, 1),
            Err(LayoutError::NoZonesFit)
        ));
    }

    #[test]
    fn every_zone_offset_maps_to_unique_page() {
        let l = layout();
        let mut seen = HashSet::new();
        for z in 0..l.num_zones() {
            for off in 0..l.zone_size_blocks() {
                let p = l.page_of(ZoneId(z), off);
                assert!(l.geometry().contains_page(p), "page {p:?} out of array");
                assert!(seen.insert(p.0), "page {p:?} mapped twice");
            }
        }
        // All zones together cover the whole array exactly when divisible.
        assert_eq!(seen.len() as u64, l.geometry().total_pages());
    }

    #[test]
    fn sequential_offsets_program_in_order_per_block() {
        let l = layout();
        // For each physical block touched, in-block page indices must
        // appear in increasing order as the zone offset increases.
        let mut next: std::collections::HashMap<u64, u64> = Default::default();
        for off in 0..l.zone_size_blocks() {
            let p = l.page_of(ZoneId(1), off);
            let block = l.geometry().block_of_page(p);
            let pib = l.geometry().page_in_block(p) as u64;
            let expect = next.entry(block.0).or_insert(0);
            assert_eq!(pib, *expect, "offset {off} lands out of order");
            *expect += 1;
        }
    }

    #[test]
    fn stripe_spreads_consecutive_offsets_across_dies() {
        let l = layout();
        let g = *l.geometry();
        let d0 = g.die_of_block(g.block_of_page(l.page_of(ZoneId(0), 0)));
        let d1 = g.die_of_block(g.block_of_page(l.page_of(ZoneId(0), 1)));
        assert_ne!(d0, d1, "consecutive offsets should hit different dies");
    }

    #[test]
    fn blocks_of_covers_zone_exactly() {
        let l = layout();
        for z in 0..l.num_zones() {
            let blocks = l.blocks_of(ZoneId(z));
            assert_eq!(blocks.len(), l.zone_blocks() as usize);
            let set: HashSet<u64> = blocks.iter().map(|b| b.0).collect();
            // Every page of the zone belongs to one of the returned blocks.
            for off in 0..l.zone_size_blocks() {
                let p = l.page_of(ZoneId(z), off);
                assert!(set.contains(&l.geometry().block_of_page(p).0));
            }
        }
    }

    #[test]
    fn zone_sizes() {
        let l = layout();
        assert_eq!(l.zone_size_blocks(), 32);
        assert_eq!(l.zone_size_bytes(), 32 * 4096);
        assert_eq!(l.num_zones(), 8);
    }
}
