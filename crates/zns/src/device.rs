//! The ZNS device: zone state machine over the flash array.

use core::fmt;
use std::collections::VecDeque;
use std::sync::Arc;

use nand::{NandArray, NandConfig};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim::fault::{flip_bit, FaultInjector, FaultOp, Injection};
use sim::{Counter, Nanos, BLOCK_SIZE};

use crate::error::ZnsError;
use crate::mapping::ZoneLayout;
use crate::state_machine::{self, ZoneOp};
use crate::zone::{ZoneId, ZoneInfo, ZoneState};

/// Configuration for a [`ZnsDevice`].
#[derive(Clone, Debug)]
pub struct ZnsConfig {
    /// Underlying flash array.
    pub nand: NandConfig,
    /// Erase blocks per zone.
    pub zone_blocks: u32,
    /// Dies each zone stripes across.
    pub stripe_dies: u32,
    /// Maximum concurrently open zones (implicit + explicit).
    pub max_open_zones: u32,
    /// Maximum concurrently active zones (open + closed).
    pub max_active_zones: u32,
    /// Writable blocks per zone (`zone capacity`); `None` means the full
    /// zone size. Real devices commonly expose cap < size (e.g. the WD
    /// ZN540's 1077 MiB cap).
    pub zone_cap_blocks: Option<u64>,
}

impl ZnsConfig {
    /// Tiny device for unit tests: 8 zones of 32 blocks (4 KiB each).
    pub fn small_test() -> Self {
        ZnsConfig {
            nand: NandConfig::small_test(),
            zone_blocks: 4,
            stripe_dies: 2,
            max_open_zones: 4,
            max_active_zones: 6,
            zone_cap_blocks: None,
        }
    }
}

/// Service interval of one die during a zone append: the window in which
/// that die was busy programming pages of the command. Appends stripe
/// across dies, so a multi-die command reports one interval per die and
/// the intervals overlap in sim time — the parallelism evidence the event
/// trace surfaces during a region flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DieService {
    /// Flat die index in the array.
    pub die: u32,
    /// When the die started programming the first page of this command.
    pub start: Nanos,
    /// When the die finished programming its last page of this command.
    pub end: Nanos,
}

/// Point-in-time device statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ZnsStatsSnapshot {
    /// 4 KiB blocks written by the host.
    pub host_blocks_written: u64,
    /// 4 KiB blocks read by the host.
    pub host_blocks_read: u64,
    /// Zone resets issued.
    pub zone_resets: u64,
    /// Zone finish commands issued.
    pub zone_finishes: u64,
    /// Bytes physically programmed on the media.
    pub media_bytes_written: u64,
}

impl ZnsStatsSnapshot {
    /// Device-level write amplification. For a ZNS device this is 1.0
    /// whenever the host has written anything, by construction.
    pub fn write_amplification(&self) -> f64 {
        sim::stats::write_amplification(
            self.host_blocks_written * BLOCK_SIZE as u64,
            self.media_bytes_written,
        )
    }
}

#[derive(Clone, Copy, Debug)]
struct ZoneMeta {
    state: ZoneState,
    wp: u64,
    reset_count: u64,
}

struct DevState {
    zones: Vec<ZoneMeta>,
    /// Implicitly-open zones in open order; the front is auto-closed when
    /// open resources run out, as NVMe ZNS controllers do.
    implicit_lru: VecDeque<u32>,
    open_count: u32,
    active_count: u32,
}

/// An emulated Zoned Namespace SSD.
///
/// Shared via [`Arc`]; all methods take `&self`. See the
/// [crate docs](crate) for an example.
pub struct ZnsDevice {
    array: Arc<NandArray>,
    layout: ZoneLayout,
    cap_blocks: u64,
    max_open: u32,
    max_active: u32,
    state: Mutex<DevState>,
    host_blocks_written: Counter,
    host_blocks_read: Counter,
    zone_resets: Counter,
    zone_finishes: Counter,
    injector: Option<Arc<FaultInjector>>,
}

impl fmt::Debug for ZnsDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ZnsDevice")
            .field("zones", &self.layout.num_zones())
            .field("zone_size_blocks", &self.layout.zone_size_blocks())
            .field("cap_blocks", &self.cap_blocks)
            .finish()
    }
}

impl ZnsDevice {
    /// Builds the device.
    ///
    /// # Panics
    ///
    /// Panics if the zone layout does not fit the flash geometry or if the
    /// configured zone capacity exceeds the zone size; both are
    /// configuration bugs caught at startup.
    pub fn new(config: ZnsConfig) -> Self {
        let geometry = config.nand.geometry;
        let array = Arc::new(NandArray::new(config.nand));
        let layout = ZoneLayout::new(geometry, config.zone_blocks, config.stripe_dies)
            .expect("zone layout must fit the flash geometry");
        let cap_blocks = config.zone_cap_blocks.unwrap_or(layout.zone_size_blocks());
        assert!(
            cap_blocks > 0 && cap_blocks <= layout.zone_size_blocks(),
            "zone capacity {cap_blocks} outside (0, {}]",
            layout.zone_size_blocks()
        );
        let zones = vec![
            ZoneMeta {
                state: ZoneState::Empty,
                wp: 0,
                reset_count: 0,
            };
            layout.num_zones() as usize
        ];
        ZnsDevice {
            array,
            layout,
            cap_blocks,
            max_open: config.max_open_zones.max(1),
            max_active: config.max_active_zones.max(1),
            state: Mutex::new(DevState {
                zones,
                implicit_lru: VecDeque::new(),
                open_count: 0,
                active_count: 0,
            }),
            host_blocks_written: Counter::new(),
            host_blocks_read: Counter::new(),
            zone_resets: Counter::new(),
            zone_finishes: Counter::new(),
            injector: None,
        }
    }

    /// Attaches a fault plan consulted on every zone write, append, read,
    /// reset, and finish — the zoned counterpart of wrapping a block device
    /// in `sim::fault::FaultyDevice`. Torn zone writes persist a prefix of
    /// the payload and advance the write pointer only that far, exactly what
    /// a power loss mid-program leaves behind on real zoned hardware.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    fn decide(&self, op: FaultOp, payload_len: usize, now: Nanos) -> Injection {
        self.injector
            .as_ref()
            .map_or(Injection::None, |inj| inj.decide_at(op, payload_len, now))
    }

    /// Number of zones.
    pub fn num_zones(&self) -> u32 {
        self.layout.num_zones()
    }

    /// Zone size in 4 KiB blocks.
    pub fn zone_size_blocks(&self) -> u64 {
        self.layout.zone_size_blocks()
    }

    /// Writable capacity per zone in 4 KiB blocks.
    pub fn zone_cap_blocks(&self) -> u64 {
        self.cap_blocks
    }

    /// Writable capacity per zone in bytes.
    pub fn zone_cap_bytes(&self) -> u64 {
        self.cap_blocks * BLOCK_SIZE as u64
    }

    /// Total writable capacity in bytes (all zones).
    pub fn capacity_bytes(&self) -> u64 {
        self.zone_cap_bytes() * self.num_zones() as u64
    }

    /// Maximum concurrently open zones.
    pub fn max_open_zones(&self) -> u32 {
        self.max_open
    }

    /// Maximum concurrently active zones.
    pub fn max_active_zones(&self) -> u32 {
        self.max_active
    }

    /// The zone → flash layout.
    pub fn layout(&self) -> &ZoneLayout {
        &self.layout
    }

    /// The underlying flash array (shared with nothing else).
    pub fn nand(&self) -> &NandArray {
        &self.array
    }

    /// Device statistics.
    pub fn stats(&self) -> ZnsStatsSnapshot {
        ZnsStatsSnapshot {
            host_blocks_written: self.host_blocks_written.get(),
            host_blocks_read: self.host_blocks_read.get(),
            zone_resets: self.zone_resets.get(),
            zone_finishes: self.zone_finishes.get(),
            media_bytes_written: self.array.stats().bytes_programmed(),
        }
    }

    fn check_zone(&self, zone: ZoneId) -> Result<(), ZnsError> {
        if zone.0 >= self.layout.num_zones() {
            Err(ZnsError::NoSuchZone {
                zone: zone.0,
                zones: self.layout.num_zones(),
            })
        } else {
            Ok(())
        }
    }

    /// Current state of a zone.
    ///
    /// # Errors
    ///
    /// [`ZnsError::NoSuchZone`] for an invalid index.
    pub fn zone_state(&self, zone: ZoneId) -> Result<ZoneState, ZnsError> {
        self.check_zone(zone)?;
        Ok(self.state.lock().zones[zone.0 as usize].state)
    }

    /// Report-zones information for one zone.
    ///
    /// # Errors
    ///
    /// [`ZnsError::NoSuchZone`] for an invalid index.
    pub fn zone_info(&self, zone: ZoneId) -> Result<ZoneInfo, ZnsError> {
        self.check_zone(zone)?;
        let meta = self.state.lock().zones[zone.0 as usize];
        Ok(ZoneInfo {
            id: zone,
            state: meta.state,
            write_pointer: meta.wp,
            capacity: self.cap_blocks,
            reset_count: meta.reset_count,
        })
    }

    /// Report-zones for the whole device.
    pub fn report_zones(&self) -> Vec<ZoneInfo> {
        let state = self.state.lock();
        state
            .zones
            .iter()
            .enumerate()
            .map(|(i, meta)| ZoneInfo {
                id: ZoneId(i as u32),
                state: meta.state,
                write_pointer: meta.wp,
                capacity: self.cap_blocks,
                reset_count: meta.reset_count,
            })
            .collect()
    }

    /// Zones currently in [`ZoneState::Empty`].
    pub fn empty_zones(&self) -> u32 {
        self.state
            .lock()
            .zones
            .iter()
            .filter(|z| z.state == ZoneState::Empty)
            .count() as u32
    }

    /// Zones degraded to [`ZoneState::ReadOnly`].
    pub fn readonly_zones(&self) -> u32 {
        self.state
            .lock()
            .zones
            .iter()
            .filter(|z| z.state == ZoneState::ReadOnly)
            .count() as u32
    }

    /// Zones degraded to [`ZoneState::Offline`].
    pub fn offline_zones(&self) -> u32 {
        self.state
            .lock()
            .zones
            .iter()
            .filter(|z| z.state == ZoneState::Offline)
            .count() as u32
    }

    /// Writable capacity in bytes counting only non-degraded zones —
    /// the number eviction watermarks must track as the device dies.
    pub fn usable_capacity_bytes(&self) -> u64 {
        let dead = self
            .state
            .lock()
            .zones
            .iter()
            .filter(|z| z.state.is_degraded())
            .count() as u64;
        self.zone_cap_bytes() * (self.num_zones() as u64 - dead)
    }

    /// Acquires open/active resources so `zone` can accept writes.
    ///
    /// Holding the device lock, applies an *opening* op (`Write` or
    /// `Open`) through the [`crate::state_machine`] authority,
    /// auto-closing the oldest implicitly-open zone when open resources
    /// are exhausted — the behaviour NVMe mandates for implicit opens.
    fn acquire_open(
        state: &mut DevState,
        zone: ZoneId,
        op: ZoneOp,
        max_open: u32,
        max_active: u32,
    ) -> Result<(), ZnsError> {
        let meta = state.zones[zone.0 as usize];
        let cur = meta.state;
        let wp_zero = meta.wp == 0;
        // Plan the transition first: an illegal pair is a typed error
        // before any resource accounting is touched.
        let target = state_machine::transition(cur, op, wp_zero).map_err(|e| e.into_zns(zone))?;
        debug_assert!(target.is_open(), "acquire_open only serves opening ops");
        if cur == target {
            return Ok(());
        }
        if cur.is_open() {
            // Implicit → explicit keeps the same resources.
            if cur == ZoneState::ImplicitOpen {
                state.implicit_lru.retain(|&z| z != zone.0);
            }
            let next = state_machine::step(&mut state.zones[zone.0 as usize].state, op, wp_zero)
                .map_err(|e| e.into_zns(zone))?;
            if next == ZoneState::ImplicitOpen {
                state.implicit_lru.push_back(zone.0);
            }
            return Ok(());
        }
        // Need an active slot for Empty zones.
        if cur == ZoneState::Empty && state.active_count >= max_active {
            return Err(ZnsError::TooManyActiveZones { limit: max_active });
        }
        // Need an open slot; auto-close the oldest implicit-open if full.
        if state.open_count >= max_open {
            match state.implicit_lru.pop_front() {
                Some(victim) => {
                    let vm = &mut state.zones[victim as usize];
                    debug_assert_eq!(vm.state, ZoneState::ImplicitOpen);
                    let vm_wp_zero = vm.wp == 0;
                    let closed = state_machine::step(&mut vm.state, ZoneOp::Close, vm_wp_zero)
                        .map_err(|e| e.into_zns(ZoneId(victim)))?;
                    if closed == ZoneState::Empty {
                        state.active_count -= 1;
                    }
                    state.open_count -= 1;
                }
                None => {
                    // All opens are explicit; the host must close one.
                    return Err(ZnsError::TooManyActiveZones { limit: max_open });
                }
            }
        }
        if cur == ZoneState::Empty {
            state.active_count += 1;
        }
        state.open_count += 1;
        let next = state_machine::step(&mut state.zones[zone.0 as usize].state, op, wp_zero)
            .map_err(|e| e.into_zns(zone))?;
        if next == ZoneState::ImplicitOpen {
            state.implicit_lru.push_back(zone.0);
        }
        Ok(())
    }

    /// Applies a resource-releasing op (`Close`, `Finish`, `Reset`, or a
    /// zone-filling `Write`) through the state-machine authority and
    /// updates the open/active accounting. Returns the new state.
    fn release_zone(state: &mut DevState, zone: ZoneId, op: ZoneOp) -> Result<ZoneState, ZnsError> {
        let was = state.zones[zone.0 as usize].state;
        let wp_zero = state.zones[zone.0 as usize].wp == 0;
        let to = state_machine::step(&mut state.zones[zone.0 as usize].state, op, wp_zero)
            .map_err(|e| e.into_zns(zone))?;
        if was.is_open() {
            state.open_count -= 1;
            if was == ZoneState::ImplicitOpen {
                state.implicit_lru.retain(|&z| z != zone.0);
            }
        }
        if was.is_active() && !to.is_active() {
            state.active_count -= 1;
        } else if !was.is_active() && to.is_active() {
            state.active_count += 1;
        }
        Ok(to)
    }

    /// Applies a controller-initiated degradation through the state
    /// machine, fixing up resource accounting and emitting the matching
    /// trace event. Data below the write pointer is preserved: a
    /// Read-Only zone keeps serving reads at its frozen pointer.
    fn degrade_locked(
        &self,
        state: &mut DevState,
        zone: ZoneId,
        offline: bool,
        now: Nanos,
    ) -> Result<ZoneState, ZnsError> {
        let op = if offline {
            ZoneOp::DegradeOffline
        } else {
            ZoneOp::DegradeReadOnly
        };
        let resets = state.zones[zone.0 as usize].reset_count;
        let to = Self::release_zone(state, zone, op)?;
        let kind = if offline {
            sim::trace::EventKind::ZoneOffline
        } else {
            sim::trace::EventKind::ZoneReadOnly
        };
        sim::trace::emit(kind, now, zone.0 as u64, if offline { 0 } else { resets });
        #[cfg(debug_assertions)]
        self.debug_validate(state);
        Ok(to)
    }

    /// The error a command reports after its target zone degrades under
    /// it. If the zone was already at (or past) the requested state, the
    /// current state is reported instead — degradation never un-happens.
    fn degrade_error(
        &self,
        state: &mut DevState,
        zone: ZoneId,
        offline: bool,
        now: Nanos,
    ) -> ZnsError {
        match self.degrade_locked(state, zone, offline, now) {
            Ok(to) => ZnsError::ZoneDegraded { zone, state: to },
            Err(_) => ZnsError::ZoneDegraded {
                zone,
                state: state.zones[zone.0 as usize].state,
            },
        }
    }

    /// Forces a zone into a degraded terminal state (Read-Only, or
    /// Offline when `offline`), as wear-out scenarios and tests do
    /// directly. Returns the new state.
    ///
    /// # Errors
    ///
    /// [`ZnsError::NoSuchZone`]; [`ZnsError::InvalidState`] when the zone
    /// is already at or past the requested state.
    pub fn degrade(&self, zone: ZoneId, offline: bool, now: Nanos) -> Result<ZoneState, ZnsError> {
        self.check_zone(zone)?;
        let mut state = self.state.lock();
        self.degrade_locked(&mut state, zone, offline, now)
    }

    /// Debug-build invariant sweep over the whole device state:
    ///
    /// * `open_count` / `active_count` match a recount of zone states and
    ///   respect the configured limits;
    /// * every write pointer is within zone capacity, and `Empty` zones
    ///   sit exactly at zero (write-pointer monotonicity is asserted at
    ///   the write site, where the previous pointer is in hand);
    /// * the implicit-open LRU contains exactly the implicitly-open
    ///   zones, each once.
    ///
    /// Called after every state-mutating command; compiled out of
    /// release builds.
    #[cfg(debug_assertions)]
    fn debug_validate(&self, state: &DevState) {
        let open = state.zones.iter().filter(|z| z.state.is_open()).count() as u32;
        let active = state.zones.iter().filter(|z| z.state.is_active()).count() as u32;
        debug_assert_eq!(open, state.open_count, "open_count out of sync with zone states");
        debug_assert_eq!(active, state.active_count, "active_count out of sync with zone states");
        debug_assert!(open <= self.max_open, "open-zone limit violated: {open} > {}", self.max_open);
        debug_assert!(
            active <= self.max_active,
            "active-zone limit violated: {active} > {}",
            self.max_active
        );
        for (i, z) in state.zones.iter().enumerate() {
            debug_assert!(
                z.wp <= self.cap_blocks,
                "zone {i}: write pointer {} beyond capacity {}",
                z.wp,
                self.cap_blocks
            );
            if z.state == ZoneState::Empty {
                debug_assert_eq!(z.wp, 0, "zone {i}: Empty with an advanced write pointer");
            }
        }
        let mut lru: Vec<u32> = state.implicit_lru.iter().copied().collect();
        lru.sort_unstable();
        lru.dedup();
        debug_assert_eq!(lru.len(), state.implicit_lru.len(), "implicit LRU holds duplicates");
        for &z in &state.implicit_lru {
            debug_assert_eq!(
                state.zones[z as usize].state,
                ZoneState::ImplicitOpen,
                "implicit LRU holds zone {z} which is not implicitly open"
            );
        }
    }

    /// Writes `data` at the zone's write pointer, implicitly opening it.
    ///
    /// Returns the completion time.
    ///
    /// # Errors
    ///
    /// [`ZnsError::Misaligned`], [`ZnsError::InvalidState`] (full zone),
    /// [`ZnsError::ZoneBoundary`], [`ZnsError::TooManyActiveZones`].
    pub fn write(&self, zone: ZoneId, data: &[u8], now: Nanos) -> Result<Nanos, ZnsError> {
        let wp = {
            self.check_zone(zone)?;
            self.state.lock().zones[zone.0 as usize].wp
        };
        self.write_at(zone, wp, data, now)
    }

    /// Writes `data` at an explicit zone offset, which must equal the write
    /// pointer — the check that distinguishes zoned from block devices.
    ///
    /// # Errors
    ///
    /// As [`Self::write`], plus [`ZnsError::NotAtWritePointer`].
    pub fn write_at(
        &self,
        zone: ZoneId,
        offset_blocks: u64,
        data: &[u8],
        now: Nanos,
    ) -> Result<Nanos, ZnsError> {
        // A positioned write is a monolithic burst: the controller cannot
        // suspend it at page granularity, so reads landing on its dies pay
        // the full `read_suspend` fee (queued = false).
        self.write_at_inner(zone, offset_blocks, data, now, false, None)
    }

    fn write_at_inner(
        &self,
        zone: ZoneId,
        offset_blocks: u64,
        data: &[u8],
        now: Nanos,
        queued: bool,
        mut service: Option<&mut Vec<DieService>>,
    ) -> Result<Nanos, ZnsError> {
        self.check_zone(zone)?;
        if data.is_empty() || !data.len().is_multiple_of(BLOCK_SIZE) {
            return Err(ZnsError::Misaligned { len: data.len() });
        }
        let nblocks = (data.len() / BLOCK_SIZE) as u64;

        let start_offset;
        // Injected faults fire only after every protocol check passes:
        // a rejected command never reaches the media, so it must not
        // consume a fault credit either.
        let injection;
        let mut persist_blocks = nblocks;
        {
            let mut state = self.state.lock();
            let meta = state.zones[zone.0 as usize];
            if !meta.state.is_writable() {
                // A degraded zone is a media condition the host routes
                // around, not a protocol mistake it can correct.
                if meta.state.is_degraded() {
                    return Err(ZnsError::ZoneDegraded {
                        zone,
                        state: meta.state,
                    });
                }
                return Err(ZnsError::InvalidState {
                    zone,
                    state: meta.state,
                    op: "write",
                });
            }
            if offset_blocks != meta.wp {
                return Err(ZnsError::NotAtWritePointer {
                    zone,
                    write_pointer: meta.wp,
                    attempted: offset_blocks,
                });
            }
            if meta.wp + nblocks > self.cap_blocks {
                return Err(ZnsError::ZoneBoundary {
                    zone,
                    remaining: self.cap_blocks - meta.wp,
                    attempted: nblocks,
                });
            }
            injection = self.decide(FaultOp::Write, data.len(), now);
            match injection {
                Injection::Fail => {
                    return Err(ZnsError::Injected(format!(
                        "zone write fault at {zone} offset {offset_blocks}"
                    )))
                }
                // A torn write programs a prefix and leaves the pointer
                // there; keep_blocks < nblocks, so the zone cannot fill.
                Injection::Torn { keep_blocks } => persist_blocks = keep_blocks,
                // The program failed so hard the controller retired the
                // zone: nothing persists, existing data stays readable
                // (Read-Only) or is gone with the zone (Offline).
                Injection::DegradeReadOnly => {
                    return Err(self.degrade_error(&mut state, zone, false, now))
                }
                Injection::DegradeOffline => {
                    return Err(self.degrade_error(&mut state, zone, true, now))
                }
                Injection::None | Injection::BitFlip { .. } => {}
            }
            Self::acquire_open(
                &mut state,
                zone,
                ZoneOp::Write { fills: false },
                self.max_open,
                self.max_active,
            )?;
            start_offset = meta.wp;
            state.zones[zone.0 as usize].wp += persist_blocks;
            let new_wp = state.zones[zone.0 as usize].wp;
            // Write-pointer monotonicity: a write may only advance the
            // pointer, and never past the zone capacity.
            debug_assert!(
                new_wp >= start_offset && new_wp <= self.cap_blocks,
                "{zone}: write pointer moved {start_offset} -> {new_wp} (cap {})",
                self.cap_blocks
            );
            if new_wp == self.cap_blocks {
                // NVMe full zones hold no open/active resources.
                Self::release_zone(&mut state, zone, ZoneOp::Write { fills: true })?;
            }
            #[cfg(debug_assertions)]
            self.debug_validate(&state);
        }

        let mut corrupted;
        let payload = match injection {
            Injection::BitFlip { bit } => {
                corrupted = data.to_vec();
                flip_bit(&mut corrupted, bit);
                &corrupted[..]
            }
            _ => data,
        };

        // Program the pages; completion is the slowest page. Queued
        // (append-path) programs register page-granular suspend points on
        // their dies and report per-die service windows.
        let mut done = now;
        for i in 0..persist_blocks {
            let page = self.layout.page_of(zone, start_offset + i);
            let chunk = &payload[(i as usize) * BLOCK_SIZE..(i as usize + 1) * BLOCK_SIZE];
            let (start, t) = if queued {
                self.array
                    .program_page_queued(page, chunk, now)
                    .map_err(|e| ZnsError::Nand(e.to_string()))?
            } else {
                let t = self
                    .array
                    .program_page(page, chunk, now)
                    .map_err(|e| ZnsError::Nand(e.to_string()))?;
                (now, t)
            };
            done = done.max(t);
            if let Some(service) = service.as_deref_mut() {
                let g = self.array.geometry();
                let die = g.die_of_block(g.block_of_page(page)).0;
                match service.iter_mut().find(|s| s.die == die) {
                    Some(s) => {
                        s.start = s.start.min(start);
                        s.end = s.end.max(t);
                    }
                    None => service.push(DieService {
                        die,
                        start,
                        end: t,
                    }),
                }
            }
        }
        self.host_blocks_written.add(persist_blocks);
        if let Injection::Torn { keep_blocks } = injection {
            return Err(ZnsError::Injected(format!(
                "torn zone write at {zone}: {keep_blocks} of {nblocks} blocks persisted"
            )));
        }
        Ok(done)
    }

    /// Zone append: writes at the pointer and returns the assigned offset
    /// (in 4 KiB blocks from zone start) along with the completion time.
    ///
    /// # Errors
    ///
    /// As [`Self::write`].
    pub fn append(
        &self,
        zone: ZoneId,
        data: &[u8],
        now: Nanos,
    ) -> Result<(u64, Nanos), ZnsError> {
        self.check_zone(zone)?;
        let wp = self.state.lock().zones[zone.0 as usize].wp;
        // Appends are issued as queued page programs: the controller can
        // suspend them at every page boundary, so reads on the same dies
        // pay the cheap `program_suspend` fee instead of `read_suspend`.
        let done = self.write_at_inner(zone, wp, data, now, true, None)?;
        Ok((wp, done))
    }

    /// Zone append that also reports the per-die service intervals the
    /// command occupied — the raw material for the overlapped-per-die
    /// trace evidence during a region flush.
    ///
    /// # Errors
    ///
    /// As [`Self::write`].
    pub fn append_with_service(
        &self,
        zone: ZoneId,
        data: &[u8],
        now: Nanos,
    ) -> Result<(u64, Nanos, Vec<DieService>), ZnsError> {
        self.check_zone(zone)?;
        let wp = self.state.lock().zones[zone.0 as usize].wp;
        let mut service = Vec::new();
        let done = self.write_at_inner(zone, wp, data, now, true, Some(&mut service))?;
        Ok((wp, done, service))
    }

    /// Reads `buf.len() / 4096` blocks starting at `offset_blocks`.
    ///
    /// # Errors
    ///
    /// [`ZnsError::ReadBeyondWritePointer`] when reading unwritten space,
    /// plus alignment/range errors.
    pub fn read(
        &self,
        zone: ZoneId,
        offset_blocks: u64,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, ZnsError> {
        self.check_zone(zone)?;
        if buf.is_empty() || !buf.len().is_multiple_of(BLOCK_SIZE) {
            return Err(ZnsError::Misaligned { len: buf.len() });
        }
        let nblocks = (buf.len() / BLOCK_SIZE) as u64;
        {
            let state = self.state.lock();
            let meta = state.zones[zone.0 as usize];
            // Offline zones serve nothing; Read-Only (and every healthy
            // state) keeps serving data below the frozen pointer.
            if !meta.state.is_readable() {
                return Err(ZnsError::ZoneDegraded {
                    zone,
                    state: meta.state,
                });
            }
            if offset_blocks + nblocks > meta.wp {
                return Err(ZnsError::ReadBeyondWritePointer {
                    zone,
                    write_pointer: meta.wp,
                    attempted: offset_blocks,
                });
            }
        }
        let injection = self.decide(FaultOp::Read, buf.len(), now);
        match injection {
            Injection::Fail | Injection::Torn { .. } => {
                return Err(ZnsError::Injected(format!(
                    "zone read fault at {zone} offset {offset_blocks}"
                )));
            }
            // The controller retired the zone on a failing read (read
            // disturb): this read fails, but a Read-Only zone still
            // serves the retry.
            Injection::DegradeReadOnly => {
                let mut state = self.state.lock();
                return Err(self.degrade_error(&mut state, zone, false, now));
            }
            Injection::DegradeOffline => {
                let mut state = self.state.lock();
                return Err(self.degrade_error(&mut state, zone, true, now));
            }
            Injection::None | Injection::BitFlip { .. } => {}
        }
        let mut done = now;
        for i in 0..nblocks {
            let page = self.layout.page_of(zone, offset_blocks + i);
            let chunk = &mut buf[(i as usize) * BLOCK_SIZE..(i as usize + 1) * BLOCK_SIZE];
            let t = self
                .array
                .read_page(page, chunk, now)
                .map_err(|e| ZnsError::Nand(e.to_string()))?;
            done = done.max(t);
        }
        if let Injection::BitFlip { bit } = injection {
            // Media kept the data; the host's copy comes back corrupted.
            flip_bit(buf, bit);
        }
        self.host_blocks_read.add(nblocks);
        Ok(done)
    }

    /// Resets a zone: erases its blocks, rewinds the pointer, state Empty.
    ///
    /// Returns the completion time of the slowest erase.
    ///
    /// # Errors
    ///
    /// [`ZnsError::NoSuchZone`].
    pub fn reset(&self, zone: ZoneId, now: Nanos) -> Result<Nanos, ZnsError> {
        self.check_zone(zone)?;
        match self.decide(FaultOp::Trim, 0, now) {
            Injection::None => {}
            // The erase failed permanently: wear-out. The zone keeps its
            // data and pointer but leaves service.
            Injection::DegradeReadOnly => {
                let mut state = self.state.lock();
                return Err(self.degrade_error(&mut state, zone, false, now));
            }
            Injection::DegradeOffline => {
                let mut state = self.state.lock();
                return Err(self.degrade_error(&mut state, zone, true, now));
            }
            _ => return Err(ZnsError::Injected(format!("zone reset fault at {zone}"))),
        }
        {
            let mut state = self.state.lock();
            let meta = state.zones[zone.0 as usize];
            if meta.state.is_degraded() {
                return Err(ZnsError::ZoneDegraded {
                    zone,
                    state: meta.state,
                });
            }
            Self::release_zone(&mut state, zone, ZoneOp::Reset)?;
            let meta = &mut state.zones[zone.0 as usize];
            meta.wp = 0;
            meta.reset_count += 1;
            #[cfg(debug_assertions)]
            self.debug_validate(&state);
        }
        let mut done = now;
        for block in self.layout.blocks_of(zone) {
            let t = self
                .array
                .erase_block(block, now)
                .map_err(|e| ZnsError::Nand(e.to_string()))?;
            done = done.max(t);
        }
        self.zone_resets.incr();
        sim::trace::emit(sim::trace::EventKind::ZoneReset, done, zone.0 as u64, 0);
        Ok(done)
    }

    /// Finishes a zone: marks it Full so it holds no resources and accepts
    /// no further writes until reset.
    ///
    /// # Errors
    ///
    /// [`ZnsError::InvalidState`] if the zone is already Full.
    pub fn finish(&self, zone: ZoneId, now: Nanos) -> Result<Nanos, ZnsError> {
        self.check_zone(zone)?;
        match self.decide(FaultOp::Trim, 0, now) {
            Injection::None => {}
            Injection::DegradeReadOnly => {
                let mut state = self.state.lock();
                return Err(self.degrade_error(&mut state, zone, false, now));
            }
            Injection::DegradeOffline => {
                let mut state = self.state.lock();
                return Err(self.degrade_error(&mut state, zone, true, now));
            }
            _ => return Err(ZnsError::Injected(format!("zone finish fault at {zone}"))),
        }
        let mut state = self.state.lock();
        {
            let meta = state.zones[zone.0 as usize];
            if meta.state.is_degraded() {
                return Err(ZnsError::ZoneDegraded {
                    zone,
                    state: meta.state,
                });
            }
        }
        // The state machine rejects finishing a Full zone with the same
        // typed error the manual check used to produce.
        Self::release_zone(&mut state, zone, ZoneOp::Finish)?;
        #[cfg(debug_assertions)]
        self.debug_validate(&state);
        drop(state);
        self.zone_finishes.incr();
        sim::trace::emit(sim::trace::EventKind::ZoneFinish, now, zone.0 as u64, 0);
        Ok(now)
    }

    /// Explicitly opens a zone, reserving open resources for the host.
    ///
    /// # Errors
    ///
    /// [`ZnsError::InvalidState`] on Full zones,
    /// [`ZnsError::TooManyActiveZones`] when resources are exhausted.
    pub fn open(&self, zone: ZoneId, _now: Nanos) -> Result<(), ZnsError> {
        self.check_zone(zone)?;
        let mut state = self.state.lock();
        // The state machine rejects opening a Full zone with the same
        // typed error the manual check used to produce.
        Self::acquire_open(&mut state, zone, ZoneOp::Open, self.max_open, self.max_active)?;
        #[cfg(debug_assertions)]
        self.debug_validate(&state);
        Ok(())
    }

    /// Closes an open zone, releasing its open (but not active) resources.
    ///
    /// A closed zone with an untouched pointer returns to Empty, per spec.
    ///
    /// # Errors
    ///
    /// [`ZnsError::InvalidState`] unless the zone is open.
    pub fn close(&self, zone: ZoneId, _now: Nanos) -> Result<(), ZnsError> {
        self.check_zone(zone)?;
        let mut state = self.state.lock();
        // Close is only legal from an open state, and lands in Empty or
        // Closed depending on the pointer — all encoded in the machine.
        Self::release_zone(&mut state, zone, ZoneOp::Close)?;
        #[cfg(debug_assertions)]
        self.debug_validate(&state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> ZnsDevice {
        ZnsDevice::new(ZnsConfig::small_test())
    }

    fn blocks(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n * BLOCK_SIZE]
    }

    #[test]
    fn sequential_write_read_round_trip() {
        let d = dev();
        let t1 = d.write(ZoneId(0), &blocks(2, 0xaa), Nanos::ZERO).unwrap();
        let t2 = d.write(ZoneId(0), &blocks(1, 0xbb), t1).unwrap();
        let mut buf = blocks(3, 0);
        d.read(ZoneId(0), 0, &mut buf, t2).unwrap();
        assert!(buf[..2 * BLOCK_SIZE].iter().all(|&b| b == 0xaa));
        assert!(buf[2 * BLOCK_SIZE..].iter().all(|&b| b == 0xbb));
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().write_pointer, 3);
    }

    #[test]
    fn write_off_pointer_rejected() {
        let d = dev();
        d.write(ZoneId(0), &blocks(1, 1), Nanos::ZERO).unwrap();
        let err = d
            .write_at(ZoneId(0), 5, &blocks(1, 1), Nanos::ZERO)
            .unwrap_err();
        assert!(matches!(err, ZnsError::NotAtWritePointer { write_pointer: 1, attempted: 5, .. }));
    }

    #[test]
    fn read_beyond_wp_rejected() {
        let d = dev();
        d.write(ZoneId(0), &blocks(1, 1), Nanos::ZERO).unwrap();
        let mut buf = blocks(2, 0);
        assert!(matches!(
            d.read(ZoneId(0), 0, &mut buf, Nanos::ZERO),
            Err(ZnsError::ReadBeyondWritePointer { .. })
        ));
    }

    #[test]
    fn zone_fills_to_full_and_rejects_then_reset_reopens() {
        let d = dev();
        let cap = d.zone_cap_blocks() as usize;
        let t = d.write(ZoneId(1), &blocks(cap, 3), Nanos::ZERO).unwrap();
        assert_eq!(d.zone_state(ZoneId(1)).unwrap(), ZoneState::Full);
        assert!(matches!(
            d.write(ZoneId(1), &blocks(1, 3), t),
            Err(ZnsError::InvalidState { op: "write", .. })
        ));
        let t = d.reset(ZoneId(1), t).unwrap();
        assert_eq!(d.zone_state(ZoneId(1)).unwrap(), ZoneState::Empty);
        assert_eq!(d.zone_info(ZoneId(1)).unwrap().reset_count, 1);
        d.write(ZoneId(1), &blocks(1, 4), t).unwrap();
        // Reset wiped the old data: reading block 0 now returns new data.
        let mut buf = blocks(1, 0);
        d.read(ZoneId(1), 0, &mut buf, t).unwrap();
        assert!(buf.iter().all(|&b| b == 4));
    }

    #[test]
    fn boundary_crossing_write_rejected_whole() {
        let d = dev();
        let cap = d.zone_cap_blocks() as usize;
        d.write(ZoneId(0), &blocks(cap - 1, 1), Nanos::ZERO).unwrap();
        let err = d.write(ZoneId(0), &blocks(2, 1), Nanos::ZERO).unwrap_err();
        assert!(matches!(err, ZnsError::ZoneBoundary { remaining: 1, attempted: 2, .. }));
        // Nothing was written.
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().write_pointer, (cap - 1) as u64);
    }

    #[test]
    fn append_returns_assigned_offsets() {
        let d = dev();
        let (o1, t1) = d.append(ZoneId(2), &blocks(2, 7), Nanos::ZERO).unwrap();
        let (o2, _) = d.append(ZoneId(2), &blocks(1, 8), t1).unwrap();
        assert_eq!((o1, o2), (0, 2));
    }

    #[test]
    fn append_service_intervals_overlap_across_dies() {
        let d = dev(); // small_test stripes each zone over 2 dies
        let (off, done, service) = d
            .append_with_service(ZoneId(0), &blocks(2, 5), Nanos::ZERO)
            .unwrap();
        assert_eq!(off, 0);
        assert_eq!(service.len(), 2, "one interval per striped die");
        assert_ne!(service[0].die, service[1].die);
        for s in &service {
            assert!(s.start < s.end && s.end <= done);
        }
        // The dies program concurrently: each starts before the other ends.
        let (a, b) = (&service[0], &service[1]);
        assert!(
            a.start < b.end && b.start < a.end,
            "per-die service intervals must overlap: {a:?} vs {b:?}"
        );
    }

    #[test]
    fn implicit_open_limit_autocloses_oldest() {
        let d = dev(); // max_open = 4
        for z in 0..5 {
            d.write(ZoneId(z), &blocks(1, z as u8 + 1), Nanos::ZERO).unwrap();
        }
        // Zone 0 (oldest implicit open) was auto-closed.
        assert_eq!(d.zone_state(ZoneId(0)).unwrap(), ZoneState::Closed);
        assert_eq!(d.zone_state(ZoneId(4)).unwrap(), ZoneState::ImplicitOpen);
        // Closed zones can still be written at their pointer.
        d.write(ZoneId(0), &blocks(1, 9), Nanos::ZERO).unwrap();
        assert_eq!(d.zone_state(ZoneId(0)).unwrap(), ZoneState::ImplicitOpen);
    }

    #[test]
    fn active_zone_limit_enforced() {
        let d = dev(); // max_active = 6
        for z in 0..6 {
            d.write(ZoneId(z), &blocks(1, 1), Nanos::ZERO).unwrap();
        }
        let err = d.write(ZoneId(6), &blocks(1, 1), Nanos::ZERO).unwrap_err();
        assert!(matches!(err, ZnsError::TooManyActiveZones { .. }));
        // Finishing a zone frees an active slot.
        d.finish(ZoneId(0), Nanos::ZERO).unwrap();
        d.write(ZoneId(6), &blocks(1, 1), Nanos::ZERO).unwrap();
    }

    #[test]
    fn explicit_open_close_transitions() {
        let d = dev();
        d.open(ZoneId(3), Nanos::ZERO).unwrap();
        assert_eq!(d.zone_state(ZoneId(3)).unwrap(), ZoneState::ExplicitOpen);
        // Close with wp == 0 returns to Empty.
        d.close(ZoneId(3), Nanos::ZERO).unwrap();
        assert_eq!(d.zone_state(ZoneId(3)).unwrap(), ZoneState::Empty);
        // Open, write, close → Closed.
        d.open(ZoneId(3), Nanos::ZERO).unwrap();
        d.write(ZoneId(3), &blocks(1, 1), Nanos::ZERO).unwrap();
        d.close(ZoneId(3), Nanos::ZERO).unwrap();
        assert_eq!(d.zone_state(ZoneId(3)).unwrap(), ZoneState::Closed);
        assert!(matches!(
            d.close(ZoneId(3), Nanos::ZERO),
            Err(ZnsError::InvalidState { op: "close", .. })
        ));
    }

    #[test]
    fn finish_releases_resources_and_blocks_writes() {
        let d = dev();
        d.write(ZoneId(0), &blocks(1, 1), Nanos::ZERO).unwrap();
        d.finish(ZoneId(0), Nanos::ZERO).unwrap();
        assert_eq!(d.zone_state(ZoneId(0)).unwrap(), ZoneState::Full);
        assert!(d.write(ZoneId(0), &blocks(1, 1), Nanos::ZERO).is_err());
        assert!(matches!(
            d.finish(ZoneId(0), Nanos::ZERO),
            Err(ZnsError::InvalidState { op: "finish", .. })
        ));
        // Reads below the pointer still work on a finished zone.
        let mut buf = blocks(1, 0);
        d.read(ZoneId(0), 0, &mut buf, Nanos::ZERO).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
    }

    #[test]
    fn device_wa_is_exactly_one() {
        let d = dev();
        let cap = d.zone_cap_blocks() as usize;
        let mut t = Nanos::ZERO;
        for z in 0..3 {
            t = d.write(ZoneId(z), &blocks(cap, 1), t).unwrap();
            t = d.reset(ZoneId(z), t).unwrap();
            t = d.write(ZoneId(z), &blocks(cap / 2, 2), t).unwrap();
        }
        let s = d.stats();
        assert_eq!(s.write_amplification(), 1.0);
        assert_eq!(s.zone_resets, 3);
        assert_eq!(
            s.media_bytes_written,
            s.host_blocks_written * BLOCK_SIZE as u64
        );
    }

    #[test]
    fn misaligned_and_out_of_range_rejected() {
        let d = dev();
        assert!(matches!(
            d.write(ZoneId(0), &[0u8; 100], Nanos::ZERO),
            Err(ZnsError::Misaligned { len: 100 })
        ));
        assert!(matches!(
            d.write(ZoneId(99), &blocks(1, 1), Nanos::ZERO),
            Err(ZnsError::NoSuchZone { .. })
        ));
        let mut buf = [0u8; 0];
        assert!(d.read(ZoneId(0), 0, &mut buf, Nanos::ZERO).is_err());
    }

    #[test]
    fn empty_zone_count_tracks_state() {
        let d = dev();
        let all = d.num_zones();
        assert_eq!(d.empty_zones(), all);
        d.write(ZoneId(0), &blocks(1, 1), Nanos::ZERO).unwrap();
        assert_eq!(d.empty_zones(), all - 1);
        d.reset(ZoneId(0), Nanos::ZERO).unwrap();
        assert_eq!(d.empty_zones(), all);
    }

    #[test]
    fn injected_write_fault_leaves_zone_untouched() {
        let inj = Arc::new(FaultInjector::default());
        let d = dev().with_fault_injector(Arc::clone(&inj));
        inj.push(sim::fault::FaultSpec::fail_writes(1));
        let err = d.write(ZoneId(0), &blocks(2, 1), Nanos::ZERO).unwrap_err();
        assert!(matches!(err, ZnsError::Injected(_)));
        // Nothing persisted: wp still 0, zone still Empty, credit consumed.
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().write_pointer, 0);
        assert_eq!(d.zone_state(ZoneId(0)).unwrap(), ZoneState::Empty);
        d.write(ZoneId(0), &blocks(2, 1), Nanos::ZERO).unwrap();
    }

    #[test]
    fn torn_zone_write_persists_prefix_and_parks_wp() {
        let inj = Arc::new(FaultInjector::default());
        let d = dev().with_fault_injector(Arc::clone(&inj));
        inj.push(sim::fault::FaultSpec::torn_writes(1, 0.5));
        let err = d.write(ZoneId(0), &blocks(4, 0xcd), Nanos::ZERO).unwrap_err();
        assert!(matches!(err, ZnsError::Injected(_)), "{err}");
        // Half of the 4-block payload landed; the pointer sits after it.
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().write_pointer, 2);
        let mut buf = blocks(2, 0);
        d.read(ZoneId(0), 0, &mut buf, Nanos::ZERO).unwrap();
        assert!(buf.iter().all(|&b| b == 0xcd));
        // The zone keeps accepting writes at the torn pointer.
        d.write(ZoneId(0), &blocks(1, 0xee), Nanos::ZERO).unwrap();
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().write_pointer, 3);
    }

    #[test]
    fn injected_read_fault_then_recovers() {
        let inj = Arc::new(FaultInjector::default());
        let d = dev().with_fault_injector(Arc::clone(&inj));
        d.write(ZoneId(0), &blocks(1, 7), Nanos::ZERO).unwrap();
        inj.push(sim::fault::FaultSpec::fail_reads(1));
        let mut buf = blocks(1, 0);
        assert!(matches!(
            d.read(ZoneId(0), 0, &mut buf, Nanos::ZERO),
            Err(ZnsError::Injected(_))
        ));
        d.read(ZoneId(0), 0, &mut buf, Nanos::ZERO).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn corrupt_write_flips_one_bit_on_media() {
        let inj = Arc::new(FaultInjector::with_seed(9));
        let d = dev().with_fault_injector(Arc::clone(&inj));
        inj.push(sim::fault::FaultSpec::corrupt_writes(1));
        // The write itself succeeds — silent corruption.
        d.write(ZoneId(0), &blocks(2, 0xaa), Nanos::ZERO).unwrap();
        let mut buf = blocks(2, 0);
        d.read(ZoneId(0), 0, &mut buf, Nanos::ZERO).unwrap();
        let wrong = buf.iter().filter(|&&b| b != 0xaa).count();
        assert_eq!(wrong, 1, "exactly one byte should differ");
    }

    #[test]
    fn reset_and_finish_consume_trim_faults() {
        let inj = Arc::new(FaultInjector::default());
        let d = dev().with_fault_injector(Arc::clone(&inj));
        d.write(ZoneId(0), &blocks(1, 1), Nanos::ZERO).unwrap();
        inj.push(sim::fault::FaultSpec::fail_trims(2));
        assert!(matches!(
            d.reset(ZoneId(0), Nanos::ZERO),
            Err(ZnsError::Injected(_))
        ));
        // Failed reset left the zone's data and pointer intact.
        assert_eq!(d.zone_info(ZoneId(0)).unwrap().write_pointer, 1);
        assert!(matches!(
            d.finish(ZoneId(0), Nanos::ZERO),
            Err(ZnsError::Injected(_))
        ));
        assert_ne!(d.zone_state(ZoneId(0)).unwrap(), ZoneState::Full);
        // Credits spent; both ops succeed now.
        d.finish(ZoneId(0), Nanos::ZERO).unwrap();
        d.reset(ZoneId(0), Nanos::ZERO).unwrap();
    }

    #[test]
    fn protocol_errors_do_not_consume_fault_credits() {
        let inj = Arc::new(FaultInjector::default());
        let d = dev().with_fault_injector(Arc::clone(&inj));
        inj.push(sim::fault::FaultSpec::fail_writes(1));
        // Misaligned + off-pointer writes are rejected before injection.
        assert!(matches!(
            d.write(ZoneId(0), &[0u8; 10], Nanos::ZERO),
            Err(ZnsError::Misaligned { .. })
        ));
        assert!(matches!(
            d.write_at(ZoneId(0), 5, &blocks(1, 1), Nanos::ZERO),
            Err(ZnsError::NotAtWritePointer { .. })
        ));
        assert_eq!(inj.injected(), 0);
        // The credit is still armed and fires on a valid write.
        assert!(d.write(ZoneId(0), &blocks(1, 1), Nanos::ZERO).is_err());
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn degrade_read_only_keeps_data_readable_blocks_writes_and_resets() {
        let d = dev();
        let t = d.write(ZoneId(0), &blocks(2, 0x5a), Nanos::ZERO).unwrap();
        d.degrade(ZoneId(0), false, t).unwrap();
        assert_eq!(d.zone_state(ZoneId(0)).unwrap(), ZoneState::ReadOnly);
        // Reads below the frozen pointer still work.
        let mut buf = blocks(2, 0);
        d.read(ZoneId(0), 0, &mut buf, t).unwrap();
        assert!(buf.iter().all(|&b| b == 0x5a));
        // Writes and resets are media errors now, not protocol errors.
        assert!(matches!(
            d.write(ZoneId(0), &blocks(1, 1), t),
            Err(ZnsError::ZoneDegraded { .. })
        ));
        assert!(matches!(d.reset(ZoneId(0), t), Err(ZnsError::ZoneDegraded { .. })));
        assert!(matches!(d.finish(ZoneId(0), t), Err(ZnsError::ZoneDegraded { .. })));
        assert_eq!(d.readonly_zones(), 1);
        assert_eq!(
            d.usable_capacity_bytes(),
            d.capacity_bytes() - d.zone_cap_bytes()
        );
    }

    #[test]
    fn offline_zone_serves_nothing_and_is_terminal() {
        let d = dev();
        let t = d.write(ZoneId(1), &blocks(1, 9), Nanos::ZERO).unwrap();
        d.degrade(ZoneId(1), true, t).unwrap();
        assert_eq!(d.zone_state(ZoneId(1)).unwrap(), ZoneState::Offline);
        let mut buf = blocks(1, 0);
        assert!(matches!(
            d.read(ZoneId(1), 0, &mut buf, t),
            Err(ZnsError::ZoneDegraded { .. })
        ));
        assert!(matches!(
            d.write(ZoneId(1), &blocks(1, 1), t),
            Err(ZnsError::ZoneDegraded { .. })
        ));
        assert_eq!(d.offline_zones(), 1);
        // Offline never un-happens — not even to Read-Only.
        assert!(d.degrade(ZoneId(1), false, t).is_err());
        assert!(d.degrade(ZoneId(1), true, t).is_err());
        // Read-Only can still fall further, to Offline.
        d.degrade(ZoneId(2), false, t).unwrap();
        d.degrade(ZoneId(2), true, t).unwrap();
        assert_eq!(d.zone_state(ZoneId(2)).unwrap(), ZoneState::Offline);
    }

    #[test]
    fn wear_out_fault_degrades_zone_on_reset_preserving_data() {
        let inj = Arc::new(FaultInjector::default());
        let d = dev().with_fault_injector(Arc::clone(&inj));
        inj.push(sim::fault::FaultSpec::wear_out_after(2));
        let mut t = Nanos::ZERO;
        // Two grace resets succeed.
        for z in 0..2u32 {
            t = d.write(ZoneId(z), &blocks(1, 1), t).unwrap();
            t = d.reset(ZoneId(z), t).unwrap();
        }
        // The third reset wears its zone out; data survives read-only.
        t = d.write(ZoneId(2), &blocks(1, 7), t).unwrap();
        let err = d.reset(ZoneId(2), t).unwrap_err();
        assert!(
            matches!(
                err,
                ZnsError::ZoneDegraded {
                    state: ZoneState::ReadOnly,
                    ..
                }
            ),
            "{err}"
        );
        let mut buf = blocks(1, 0);
        d.read(ZoneId(2), 0, &mut buf, t).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        assert_eq!(d.zone_info(ZoneId(2)).unwrap().write_pointer, 1);
    }

    #[test]
    fn injected_write_degradation_retires_zone_and_persists_nothing() {
        let inj = Arc::new(FaultInjector::default());
        let d = dev().with_fault_injector(Arc::clone(&inj));
        d.write(ZoneId(0), &blocks(1, 3), Nanos::ZERO).unwrap();
        inj.push(sim::fault::FaultSpec::degrade_offline_writes(1));
        let err = d.write(ZoneId(0), &blocks(1, 4), Nanos::ZERO).unwrap_err();
        assert!(matches!(
            err,
            ZnsError::ZoneDegraded {
                state: ZoneState::Offline,
                ..
            }
        ));
        assert_eq!(d.zone_state(ZoneId(0)).unwrap(), ZoneState::Offline);
        assert_eq!(
            d.zone_info(ZoneId(0)).unwrap().write_pointer,
            1,
            "a failed program persists nothing"
        );
    }

    #[test]
    fn degrading_an_open_zone_releases_its_resources() {
        let d = dev(); // max_open = 4
        d.write(ZoneId(0), &blocks(1, 1), Nanos::ZERO).unwrap();
        assert_eq!(d.zone_state(ZoneId(0)).unwrap(), ZoneState::ImplicitOpen);
        d.degrade(ZoneId(0), false, Nanos::ZERO).unwrap();
        // The open slot came back: four more zones open without auto-close.
        for z in 1..=4u32 {
            d.write(ZoneId(z), &blocks(1, 1), Nanos::ZERO).unwrap();
        }
        assert_eq!(d.zone_state(ZoneId(1)).unwrap(), ZoneState::ImplicitOpen);
    }

    #[test]
    fn report_zones_covers_device() {
        let d = dev();
        d.write(ZoneId(1), &blocks(2, 1), Nanos::ZERO).unwrap();
        let report = d.report_zones();
        assert_eq!(report.len(), d.num_zones() as usize);
        assert_eq!(report[1].write_pointer, 2);
        assert_eq!(report[0].state, ZoneState::Empty);
    }
}
