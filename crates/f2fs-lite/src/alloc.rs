//! Main-area management: log heads, zone allocation, validity (SIT) and
//! block ownership (summary) tracking.
//!
//! The main area is the zoned device. Each [`LogType`] owns at most one
//! open zone and appends 4 KiB blocks into it; a zone whose capacity is
//! exhausted is finished and becomes *sealed* until the cleaner resets it.
//! Validity is tracked per block (the SIT role) and the owner of every live
//! block is recorded (the summary role) so the cleaner can relocate blocks
//! and fix the pointers that reference them.

use std::collections::VecDeque;
use std::sync::Arc;

use sim::{Nanos, BLOCK_SIZE};
use zns::{ZnsDevice, ZoneId, ZoneState};

use crate::types::{FsError, Ino, LogType, Mba};

/// Who a main-area block belongs to, recorded at append time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Owner {
    /// Owning file.
    pub ino: Ino,
    /// For data blocks: file block index. For node blocks: node index.
    pub index: u32,
    /// Whether this is a node (pointer) block.
    pub is_node: bool,
}

/// The zoned main area with per-log write heads.
pub struct MainArea {
    dev: Arc<ZnsDevice>,
    blocks_per_zone: u64,
    zones: u32,
    /// Open zone and next in-zone offset per log.
    heads: [Option<(ZoneId, u64)>; 3],
    free: VecDeque<ZoneId>,
    valid: Vec<bool>,
    valid_per_zone: Vec<u32>,
    summary: Vec<Option<Owner>>,
}

impl MainArea {
    /// Takes ownership of a freshly formatted device.
    ///
    /// # Panics
    ///
    /// Panics if the device cannot host the three log heads concurrently
    /// (needs `max_open_zones >= 3`) — a configuration bug.
    pub fn format(dev: Arc<ZnsDevice>) -> Self {
        assert!(
            dev.max_open_zones() >= 3,
            "f2fs-lite needs at least 3 open zones for its logs"
        );
        let zones = dev.num_zones();
        let blocks_per_zone = dev.zone_cap_blocks();
        let total_blocks = (zones as u64 * blocks_per_zone) as usize;
        MainArea {
            dev,
            blocks_per_zone,
            zones,
            heads: [None, None, None],
            free: (0..zones).map(ZoneId).collect(),
            valid: vec![false; total_blocks],
            valid_per_zone: vec![0; zones as usize],
            summary: vec![None; total_blocks],
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<ZnsDevice> {
        &self.dev
    }

    /// Usable blocks per zone.
    pub fn blocks_per_zone(&self) -> u64 {
        self.blocks_per_zone
    }

    /// Total zones.
    pub fn zones(&self) -> u32 {
        self.zones
    }

    /// Zones ready for allocation.
    pub fn free_zones(&self) -> u32 {
        self.free.len() as u32
    }

    /// Total valid (live) blocks.
    pub fn total_valid(&self) -> u64 {
        self.valid_per_zone.iter().map(|&v| v as u64).sum()
    }

    fn log_slot(log: LogType) -> usize {
        match log {
            LogType::HotData => 0,
            LogType::ColdData => 1,
            LogType::Node => 2,
        }
    }

    /// The zones currently serving as log heads.
    pub fn head_zones(&self) -> Vec<ZoneId> {
        self.heads.iter().flatten().map(|&(z, _)| z).collect()
    }

    fn mba(&self, zone: ZoneId, off: u64) -> Mba {
        Mba((zone.0 as u64 * self.blocks_per_zone + off) as u32)
    }

    /// The zone containing a block.
    pub fn zone_of(&self, mba: Mba) -> ZoneId {
        ZoneId((mba.0 as u64 / self.blocks_per_zone) as u32)
    }

    fn in_zone_offset(&self, mba: Mba) -> u64 {
        mba.0 as u64 % self.blocks_per_zone
    }

    /// Reserves the next block of `log`, marking it valid and owned
    /// *before* the device write happens.
    ///
    /// This is the allocation half of an out-of-lock append: the caller
    /// holds the per-log append lock, reserves under the filesystem lock,
    /// then performs the device write with the filesystem lock released
    /// (the log lock keeps the zone's write pointer in reserve order).
    /// Marking the block valid eagerly means the cleaner can never reset
    /// a zone that still has a reservation in flight: the zone only
    /// becomes a victim candidate once Full, and by then the write that
    /// filled it has completed.
    ///
    /// On device-write failure the caller must roll back with
    /// [`MainArea::unreserve`].
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] when no zone is free for a new head — the
    /// caller must clean first.
    pub fn reserve(&mut self, log: LogType, owner: Owner) -> Result<(ZoneId, u64, Mba), FsError> {
        let slot = Self::log_slot(log);
        if self.heads[slot].is_none() {
            let zone = self.next_free_zone()?;
            self.heads[slot] = Some((zone, 0));
        }
        let (zone, off) = self.heads[slot].expect("head just ensured");
        let mba = self.mba(zone, off);
        self.valid[mba.0 as usize] = true;
        self.valid_per_zone[zone.0 as usize] += 1;
        self.summary[mba.0 as usize] = Some(owner);
        let next = off + 1;
        if next == self.blocks_per_zone {
            // Zone exhausted: the write that lands at `off` seals it.
            self.heads[slot] = None;
        } else {
            self.heads[slot] = Some((zone, next));
        }
        Ok((zone, off, mba))
    }

    /// Pops the next usable zone from the free pool. A pooled zone can
    /// degrade to read-only/offline while parked; such zones are silently
    /// dropped — the pool shrinks with the media.
    fn next_free_zone(&mut self) -> Result<ZoneId, FsError> {
        while let Some(zone) = self.free.pop_front() {
            let state = self.dev.zone_state(zone)?;
            if matches!(state, ZoneState::ReadOnly | ZoneState::Offline) {
                continue;
            }
            debug_assert_eq!(state, ZoneState::Empty, "non-empty zone {zone} in free pool");
            return Ok(zone);
        }
        Err(FsError::NoSpace)
    }

    /// Drops `log`'s head after its zone degraded mid-append. The zone is
    /// *not* returned to the free pool: a read-only zone keeps serving its
    /// already-written blocks until the cleaner salvages them, an offline
    /// zone is simply lost. No-op if the head has already moved on.
    pub fn retire_head(&mut self, log: LogType, zone: ZoneId) {
        let slot = Self::log_slot(log);
        if self.heads[slot].is_some_and(|(z, _)| z == zone) {
            self.heads[slot] = None;
        }
    }

    /// Rolls back a [`MainArea::reserve`] whose device write failed.
    ///
    /// Only valid while the caller still holds the per-log append lock:
    /// the head is restored to point back at the reserved offset.
    pub fn unreserve(&mut self, log: LogType, zone: ZoneId, off: u64) {
        let mba = self.mba(zone, off);
        debug_assert!(self.valid[mba.0 as usize], "unreserve of unreserved {mba:?}");
        self.valid[mba.0 as usize] = false;
        self.summary[mba.0 as usize] = None;
        self.valid_per_zone[zone.0 as usize] -= 1;
        self.heads[Self::log_slot(log)] = Some((zone, off));
    }

    /// Returns a zone to the free pool after the caller reset it on the
    /// device *outside* the filesystem lock.
    ///
    /// # Panics
    ///
    /// Panics if the zone still holds valid blocks.
    pub fn release_reset_zone(&mut self, zone: ZoneId) {
        assert_eq!(
            self.valid_per_zone[zone.0 as usize], 0,
            "releasing {zone} with live blocks"
        );
        self.free.push_back(zone);
    }

    /// Appends one 4 KiB block to `log`, recording its owner.
    ///
    /// Returns the block's address and the completion time.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] when no zone is free for a new head — the
    /// caller must clean first.
    pub fn append(
        &mut self,
        log: LogType,
        data: &[u8],
        owner: Owner,
        now: Nanos,
    ) -> Result<(Mba, Nanos), FsError> {
        debug_assert_eq!(data.len(), BLOCK_SIZE);
        let slot = Self::log_slot(log);
        // Ensure the log has an open zone with room.
        if self.heads[slot].is_none() {
            let zone = self.next_free_zone()?;
            self.heads[slot] = Some((zone, 0));
        }
        let (zone, off) = self.heads[slot].expect("head just ensured");
        let done = self.dev.write(zone, data, now)?;
        let mba = self.mba(zone, off);
        self.valid[mba.0 as usize] = true;
        self.valid_per_zone[zone.0 as usize] += 1;
        self.summary[mba.0 as usize] = Some(owner);

        let next = off + 1;
        if next == self.blocks_per_zone {
            // Zone exhausted: seal it. The device marked it Full already
            // when the write hit capacity.
            self.heads[slot] = None;
        } else {
            self.heads[slot] = Some((zone, next));
        }
        Ok((mba, done))
    }

    /// Reads one 4 KiB block.
    ///
    /// # Errors
    ///
    /// [`FsError::Device`] for reads of never-written space, which would be
    /// a pointer-table bug.
    pub fn read(&self, mba: Mba, buf: &mut [u8], now: Nanos) -> Result<Nanos, FsError> {
        debug_assert_eq!(buf.len(), BLOCK_SIZE);
        let zone = self.zone_of(mba);
        let off = self.in_zone_offset(mba);
        Ok(self.dev.read(zone, off, buf, now)?)
    }

    /// Marks a block dead. Idempotence is a bug: each block must be
    /// invalidated exactly once.
    pub fn invalidate(&mut self, mba: Mba) {
        debug_assert!(self.valid[mba.0 as usize], "double invalidate of {mba:?}");
        self.valid[mba.0 as usize] = false;
        self.summary[mba.0 as usize] = None;
        let zone = self.zone_of(mba);
        self.valid_per_zone[zone.0 as usize] -= 1;
    }

    /// Whether a block is live.
    pub fn is_valid(&self, mba: Mba) -> bool {
        self.valid[mba.0 as usize]
    }

    /// Picks the sealed zone with the fewest valid blocks (greedy policy).
    ///
    /// Head zones and free zones are never candidates. Read-only zones
    /// that still hold live blocks take priority over any sealed zone:
    /// their media is dying and the cleaner should salvage them before
    /// they go offline entirely. Offline zones are never candidates
    /// (their blocks cannot be read back). Returns `None` when nothing
    /// is cleanable.
    pub fn pick_victim(&self) -> Option<ZoneId> {
        let heads: Vec<ZoneId> = self.head_zones();
        let mut best: Option<(u32, ZoneId)> = None;
        for z in 0..self.zones {
            let zone = ZoneId(z);
            if heads.contains(&zone) {
                continue;
            }
            // Sealed = Full state (written to cap or finished).
            match self.dev.zone_state(zone) {
                Ok(ZoneState::Full) => {}
                // A degraded-but-readable zone with live data is the most
                // urgent victim there is.
                Ok(ZoneState::ReadOnly) if self.valid_per_zone[z as usize] > 0 => {
                    return Some(zone);
                }
                _ => continue,
            }
            let v = self.valid_per_zone[z as usize];
            if best.is_none_or(|(bv, _)| v < bv) {
                best = Some((v, zone));
                if v == 0 {
                    break;
                }
            }
        }
        best.map(|(_, z)| z)
    }

    /// Live blocks of a zone with their owners, for migration.
    pub fn live_blocks(&self, zone: ZoneId) -> Vec<(Mba, Owner)> {
        let start = zone.0 as u64 * self.blocks_per_zone;
        (start..start + self.blocks_per_zone)
            .filter_map(|b| {
                let mba = Mba(b as u32);
                if self.valid[b as usize] {
                    Some((mba, self.summary[b as usize].expect("valid block has owner")))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Resets a fully-dead zone and returns it to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if the zone still holds valid blocks — the cleaner must
    /// migrate them first.
    pub fn reset_zone(&mut self, zone: ZoneId, now: Nanos) -> Result<Nanos, FsError> {
        assert_eq!(
            self.valid_per_zone[zone.0 as usize], 0,
            "resetting {zone} with live blocks"
        );
        let done = self.dev.reset(zone, now)?;
        self.free.push_back(zone);
        Ok(done)
    }

    /// Valid-block count of one zone.
    pub fn zone_valid(&self, zone: ZoneId) -> u32 {
        self.valid_per_zone[zone.0 as usize]
    }

    /// Serializes allocator state for checkpointing (excluding device
    /// state, which lives in the device itself).
    pub(crate) fn snapshot(&self) -> MainAreaSnapshot {
        MainAreaSnapshot {
            heads: self.heads,
            free: self.free.iter().copied().collect(),
            valid: self.valid.clone(),
            valid_per_zone: self.valid_per_zone.clone(),
            summary: self.summary.clone(),
        }
    }

    /// Restores allocator state from a checkpoint.
    pub(crate) fn restore(dev: Arc<ZnsDevice>, snap: MainAreaSnapshot) -> Self {
        let zones = dev.num_zones();
        let blocks_per_zone = dev.zone_cap_blocks();
        MainArea {
            dev,
            blocks_per_zone,
            zones,
            heads: snap.heads,
            free: snap.free.into(),
            valid: snap.valid,
            valid_per_zone: snap.valid_per_zone,
            summary: snap.summary,
        }
    }
}

/// Serializable allocator state (internal to checkpointing).
pub(crate) struct MainAreaSnapshot {
    pub heads: [Option<(ZoneId, u64)>; 3],
    pub free: Vec<ZoneId>,
    pub valid: Vec<bool>,
    pub valid_per_zone: Vec<u32>,
    pub summary: Vec<Option<Owner>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use zns::ZnsConfig;

    fn area() -> MainArea {
        MainArea::format(Arc::new(ZnsDevice::new(ZnsConfig::small_test())))
    }

    fn owner(i: u32) -> Owner {
        Owner {
            ino: Ino(1),
            index: i,
            is_node: false,
        }
    }

    fn block(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn append_assigns_sequential_mbas_per_log() {
        let mut a = area();
        let (m1, t) = a
            .append(LogType::HotData, &block(1), owner(0), Nanos::ZERO)
            .unwrap();
        let (m2, _) = a.append(LogType::HotData, &block(2), owner(1), t).unwrap();
        assert_eq!(m2.0, m1.0 + 1);
        assert!(a.is_valid(m1) && a.is_valid(m2));
        assert_eq!(a.total_valid(), 2);
    }

    #[test]
    fn logs_use_distinct_zones() {
        let mut a = area();
        let (m1, _) = a
            .append(LogType::HotData, &block(1), owner(0), Nanos::ZERO)
            .unwrap();
        let (m2, _) = a
            .append(LogType::Node, &block(2), owner(0), Nanos::ZERO)
            .unwrap();
        assert_ne!(a.zone_of(m1), a.zone_of(m2));
        assert_eq!(a.head_zones().len(), 2);
    }

    #[test]
    fn read_back_appended_block() {
        let mut a = area();
        let (mba, t) = a
            .append(LogType::ColdData, &block(0x3c), owner(5), Nanos::ZERO)
            .unwrap();
        let mut out = block(0);
        a.read(mba, &mut out, t).unwrap();
        assert!(out.iter().all(|&b| b == 0x3c));
    }

    #[test]
    fn full_zone_seals_and_head_moves_on() {
        let mut a = area();
        let bpz = a.blocks_per_zone();
        let mut t = Nanos::ZERO;
        let mut last = None;
        for i in 0..=bpz {
            let (m, t2) = a
                .append(LogType::HotData, &block(1), owner(i as u32), t)
                .unwrap();
            t = t2;
            if i == bpz {
                // First block of a new zone.
                assert_ne!(a.zone_of(m), a.zone_of(last.unwrap()));
            }
            last = Some(m);
        }
    }

    #[test]
    fn victim_selection_prefers_least_valid_sealed_zone() {
        let mut a = area();
        let bpz = a.blocks_per_zone();
        let mut t = Nanos::ZERO;
        let mut first_zone_blocks = Vec::new();
        // Fill two zones via the hot log.
        for i in 0..2 * bpz {
            let (m, t2) = a
                .append(LogType::HotData, &block(1), owner(i as u32), t)
                .unwrap();
            t = t2;
            if i < bpz {
                first_zone_blocks.push(m);
            }
        }
        // Kill most of zone A.
        for &m in first_zone_blocks.iter().take(bpz as usize - 1) {
            a.invalidate(m);
        }
        let victim = a.pick_victim().expect("two sealed zones exist");
        assert_eq!(victim, a.zone_of(first_zone_blocks[0]));
        assert_eq!(a.zone_valid(victim), 1);
        assert_eq!(a.live_blocks(victim).len(), 1);
    }

    #[test]
    fn reset_returns_zone_to_free_pool() {
        let mut a = area();
        let bpz = a.blocks_per_zone();
        let before = a.free_zones();
        let mut t = Nanos::ZERO;
        let mut blocks = Vec::new();
        for i in 0..bpz {
            let (m, t2) = a.append(LogType::HotData, &block(1), owner(i as u32), t).unwrap();
            blocks.push(m);
            t = t2;
        }
        assert_eq!(a.free_zones(), before - 1);
        for m in blocks {
            a.invalidate(m);
        }
        let zone = a.pick_victim().unwrap();
        a.reset_zone(zone, t).unwrap();
        assert_eq!(a.free_zones(), before);
    }

    #[test]
    #[should_panic(expected = "live blocks")]
    fn reset_with_live_blocks_panics() {
        let mut a = area();
        let bpz = a.blocks_per_zone();
        let mut t = Nanos::ZERO;
        for i in 0..bpz {
            t = a.append(LogType::HotData, &block(1), owner(i as u32), t).unwrap().1;
        }
        let zone = a.pick_victim().unwrap();
        let _ = a.reset_zone(zone, t);
    }

    #[test]
    fn reserve_then_unreserve_restores_the_head() {
        let mut a = area();
        let (z1, o1, m1) = a.reserve(LogType::HotData, owner(0)).unwrap();
        assert!(a.is_valid(m1), "reserved blocks count as valid immediately");
        assert_eq!(a.zone_valid(z1), 1);
        a.unreserve(LogType::HotData, z1, o1);
        assert!(!a.is_valid(m1));
        assert_eq!(a.zone_valid(z1), 0);
        // The next reservation reuses the rolled-back slot.
        let (z2, o2, m2) = a.reserve(LogType::HotData, owner(0)).unwrap();
        assert_eq!((z2, o2, m2), (z1, o1, m1));
    }

    #[test]
    fn reserving_the_last_block_seals_the_head() {
        let mut a = area();
        let bpz = a.blocks_per_zone();
        let mut t = Nanos::ZERO;
        for i in 0..bpz - 1 {
            t = a.append(LogType::HotData, &block(1), owner(i as u32), t).unwrap().1;
        }
        let heads_before = a.head_zones();
        let (zone, off, _) = a.reserve(LogType::HotData, owner(99)).unwrap();
        assert_eq!(off, bpz - 1);
        assert!(a.head_zones().is_empty(), "sealing reservation drops the head");
        // Rolling back the sealing reservation restores the head.
        a.unreserve(LogType::HotData, zone, off);
        assert_eq!(a.head_zones(), heads_before);
    }

    #[test]
    fn release_reset_zone_requires_external_reset() {
        let mut a = area();
        let bpz = a.blocks_per_zone();
        let before = a.free_zones();
        let mut t = Nanos::ZERO;
        let mut blocks = Vec::new();
        for i in 0..bpz {
            let (m, t2) = a.append(LogType::HotData, &block(1), owner(i as u32), t).unwrap();
            blocks.push(m);
            t = t2;
        }
        for m in blocks {
            a.invalidate(m);
        }
        let zone = a.pick_victim().unwrap();
        // Device reset performed by the caller, outside the fs lock.
        a.device().clone().reset(zone, t).unwrap();
        a.release_reset_zone(zone);
        assert_eq!(a.free_zones(), before);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut a = area();
        let (m, _) = a
            .append(LogType::HotData, &block(1), owner(9), Nanos::ZERO)
            .unwrap();
        let dev = a.device().clone();
        let snap = a.snapshot();
        let b = MainArea::restore(dev, snap);
        assert!(b.is_valid(m));
        assert_eq!(b.total_valid(), 1);
        assert_eq!(b.head_zones(), a.head_zones());
    }
}
