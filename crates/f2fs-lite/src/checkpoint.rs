//! Checkpoint serialization.
//!
//! The filesystem's tables — file/NAT/SIT/summary state — are serialized
//! into a byte blob and written to the conventional metadata device using
//! an A/B slot scheme: the superblock (meta block 0) names the latest valid
//! slot by generation number, a checkpoint writes the *other* slot first and
//! flips the superblock last. Mount recovers from the highest-generation
//! valid slot, so a crash mid-checkpoint falls back to the previous one.
//!
//! Encoding is a hand-rolled little-endian format (the offline dependency
//! set has no serde binary backend); every field is length-prefixed so
//! decoding is self-validating.

use bytes::{Buf, BufMut};
use sim::{BlockDevice, Lba, Nanos, RamDisk, BLOCK_SIZE};
use zns::ZoneId;

use crate::alloc::{MainAreaSnapshot, Owner};
use crate::types::{FsError, Ino, Mba};

/// Magic tag identifying an f2fs-lite superblock.
pub const MAGIC: u64 = 0xF2F5_11E0_2024_0704;

const NONE_SENTINEL: u32 = u32::MAX;

/// A file's persisted form.
pub(crate) struct FileRecord {
    pub name: String,
    pub ino: Ino,
    pub size: u64,
    /// Data pointers, `NONE_SENTINEL` for holes.
    pub ptrs: Vec<Option<Mba>>,
    /// Node block addresses and their dirty flags (dirty nodes are flushed
    /// before checkpointing, so flags are always clean here; kept for
    /// format stability).
    pub nodes: Vec<Option<Mba>>,
}

/// Everything a checkpoint captures.
pub(crate) struct CheckpointData {
    pub next_ino: u32,
    pub files: Vec<FileRecord>,
    pub main: MainAreaSnapshot,
}

fn put_opt_mba(buf: &mut Vec<u8>, v: Option<Mba>) {
    buf.put_u32_le(v.map_or(NONE_SENTINEL, |m| m.0));
}

fn get_opt_mba(buf: &mut &[u8]) -> Option<Mba> {
    let v = buf.get_u32_le();
    if v == NONE_SENTINEL {
        None
    } else {
        Some(Mba(v))
    }
}

/// Serializes a checkpoint payload.
pub(crate) fn encode(data: &CheckpointData) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 * 1024);
    buf.put_u32_le(data.next_ino);

    buf.put_u32_le(data.files.len() as u32);
    for f in &data.files {
        buf.put_u32_le(f.ino.0);
        buf.put_u64_le(f.size);
        buf.put_u32_le(f.name.len() as u32);
        buf.put_slice(f.name.as_bytes());
        buf.put_u32_le(f.ptrs.len() as u32);
        for &p in &f.ptrs {
            put_opt_mba(&mut buf, p);
        }
        buf.put_u32_le(f.nodes.len() as u32);
        for &n in &f.nodes {
            put_opt_mba(&mut buf, n);
        }
    }

    // Allocator: heads, free list, validity, summary.
    for head in &data.main.heads {
        match head {
            Some((zone, off)) => {
                buf.put_u8(1);
                buf.put_u32_le(zone.0);
                buf.put_u64_le(*off);
            }
            None => buf.put_u8(0),
        }
    }
    buf.put_u32_le(data.main.free.len() as u32);
    for z in &data.main.free {
        buf.put_u32_le(z.0);
    }
    buf.put_u32_le(data.main.valid.len() as u32);
    for chunk in data.main.valid.chunks(8) {
        let mut byte = 0u8;
        for (i, &v) in chunk.iter().enumerate() {
            if v {
                byte |= 1 << i;
            }
        }
        buf.put_u8(byte);
    }
    buf.put_u32_le(data.main.valid_per_zone.len() as u32);
    for &v in &data.main.valid_per_zone {
        buf.put_u32_le(v);
    }
    debug_assert_eq!(data.main.summary.len(), data.main.valid.len());
    for owner in &data.main.summary {
        match owner {
            Some(o) => {
                buf.put_u8(if o.is_node { 2 } else { 1 });
                buf.put_u32_le(o.ino.0);
                buf.put_u32_le(o.index);
            }
            None => buf.put_u8(0),
        }
    }
    buf
}

/// Decodes a checkpoint payload.
///
/// # Errors
///
/// [`FsError::BadSuperblock`] when the payload is truncated or
/// inconsistent.
pub(crate) fn decode(mut buf: &[u8]) -> Result<CheckpointData, FsError> {
    fn need(buf: &[u8], n: usize) -> Result<(), FsError> {
        if buf.remaining() < n {
            Err(FsError::BadSuperblock(format!(
                "checkpoint truncated: need {n} bytes, have {}",
                buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    need(buf, 8)?;
    let next_ino = buf.get_u32_le();
    let nfiles = buf.get_u32_le() as usize;
    let mut files = Vec::with_capacity(nfiles);
    for _ in 0..nfiles {
        need(buf, 16)?;
        let ino = Ino(buf.get_u32_le());
        let size = buf.get_u64_le();
        let name_len = buf.get_u32_le() as usize;
        need(buf, name_len)?;
        let name = String::from_utf8(buf[..name_len].to_vec())
            .map_err(|e| FsError::BadSuperblock(format!("bad file name: {e}")))?;
        buf.advance(name_len);
        need(buf, 4)?;
        let nptrs = buf.get_u32_le() as usize;
        need(buf, nptrs * 4)?;
        let ptrs = (0..nptrs).map(|_| get_opt_mba(&mut buf)).collect();
        need(buf, 4)?;
        let nnodes = buf.get_u32_le() as usize;
        need(buf, nnodes * 4)?;
        let nodes = (0..nnodes).map(|_| get_opt_mba(&mut buf)).collect();
        files.push(FileRecord {
            name,
            ino,
            size,
            ptrs,
            nodes,
        });
    }

    let mut heads = [None, None, None];
    for head in &mut heads {
        need(buf, 1)?;
        if buf.get_u8() == 1 {
            need(buf, 12)?;
            let zone = ZoneId(buf.get_u32_le());
            let off = buf.get_u64_le();
            *head = Some((zone, off));
        }
    }
    need(buf, 4)?;
    let nfree = buf.get_u32_le() as usize;
    need(buf, nfree * 4)?;
    let free = (0..nfree).map(|_| ZoneId(buf.get_u32_le())).collect();
    need(buf, 4)?;
    let nvalid = buf.get_u32_le() as usize;
    let nbytes = nvalid.div_ceil(8);
    need(buf, nbytes)?;
    let mut valid = Vec::with_capacity(nvalid);
    for &byte in buf.iter().take(nbytes) {
        for bit in 0..8 {
            if valid.len() < nvalid {
                valid.push(byte & (1 << bit) != 0);
            }
        }
    }
    buf.advance(nbytes);
    need(buf, 4)?;
    let nzones = buf.get_u32_le() as usize;
    need(buf, nzones * 4)?;
    let valid_per_zone = (0..nzones).map(|_| buf.get_u32_le()).collect();
    let mut summary = Vec::with_capacity(nvalid);
    for _ in 0..nvalid {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => summary.push(None),
            tag @ (1 | 2) => {
                need(buf, 8)?;
                summary.push(Some(Owner {
                    ino: Ino(buf.get_u32_le()),
                    index: buf.get_u32_le(),
                    is_node: tag == 2,
                }));
            }
            other => {
                return Err(FsError::BadSuperblock(format!(
                    "bad summary tag {other}"
                )))
            }
        }
    }

    Ok(CheckpointData {
        next_ino,
        files,
        main: MainAreaSnapshot {
            heads,
            free,
            valid,
            valid_per_zone,
            summary,
        },
    })
}

/// The metadata-device superblock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct Superblock {
    pub gen_a: u64,
    pub len_a: u64,
    pub gen_b: u64,
    pub len_b: u64,
}

impl Superblock {
    fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        let mut w = &mut buf[..];
        w.put_u64_le(MAGIC);
        w.put_u64_le(self.gen_a);
        w.put_u64_le(self.len_a);
        w.put_u64_le(self.gen_b);
        w.put_u64_le(self.len_b);
        buf
    }

    fn decode(buf: &[u8]) -> Result<Self, FsError> {
        let mut r = buf;
        if r.get_u64_le() != MAGIC {
            return Err(FsError::BadSuperblock("missing magic".into()));
        }
        Ok(Superblock {
            gen_a: r.get_u64_le(),
            len_a: r.get_u64_le(),
            gen_b: r.get_u64_le(),
            len_b: r.get_u64_le(),
        })
    }
}

/// Reads the superblock.
pub(crate) fn read_superblock(meta: &RamDisk, now: Nanos) -> Result<(Superblock, Nanos), FsError> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    let t = meta.read(Lba(0), &mut buf, now)?;
    Ok((Superblock::decode(&buf)?, t))
}

/// Writes a fresh superblock with both slots empty (format time).
pub(crate) fn write_fresh_superblock(meta: &RamDisk, now: Nanos) -> Result<Nanos, FsError> {
    let sb = Superblock::default();
    Ok(meta.write(Lba(0), &sb.encode(), now)?)
}

/// Blocks available per checkpoint slot.
pub(crate) fn slot_blocks(meta: &RamDisk) -> u64 {
    (meta.block_count() - 1) / 2
}

/// Writes `payload` into the inactive slot and flips the superblock.
///
/// Returns the completion time.
///
/// # Errors
///
/// [`FsError::NoSpace`] when the payload exceeds the slot size.
pub(crate) fn write_checkpoint(
    meta: &RamDisk,
    payload: &[u8],
    now: Nanos,
) -> Result<Nanos, FsError> {
    let (mut sb, t) = read_superblock(meta, now)?;
    let slot = slot_blocks(meta);
    let needed = (payload.len() as u64).div_ceil(BLOCK_SIZE as u64);
    if needed > slot {
        return Err(FsError::NoSpace);
    }
    // Choose the older slot.
    let use_a = sb.gen_a <= sb.gen_b;
    let base = if use_a { 1 } else { 1 + slot };
    let mut padded = payload.to_vec();
    padded.resize((needed as usize) * BLOCK_SIZE, 0);
    let t = meta.write(Lba(base), &padded, t)?;
    let next_gen = sb.gen_a.max(sb.gen_b) + 1;
    if use_a {
        sb.gen_a = next_gen;
        sb.len_a = payload.len() as u64;
    } else {
        sb.gen_b = next_gen;
        sb.len_b = payload.len() as u64;
    }
    Ok(meta.write(Lba(0), &sb.encode(), t)?)
}

/// Reads the newest checkpoint payload, if any checkpoint exists.
pub(crate) fn read_checkpoint(
    meta: &RamDisk,
    now: Nanos,
) -> Result<Option<(Vec<u8>, Nanos)>, FsError> {
    let (sb, t) = read_superblock(meta, now)?;
    if sb.gen_a == 0 && sb.gen_b == 0 {
        return Ok(None);
    }
    let slot = slot_blocks(meta);
    let (base, len) = if sb.gen_a >= sb.gen_b {
        (1, sb.len_a)
    } else {
        (1 + slot, sb.len_b)
    };
    let blocks = len.div_ceil(BLOCK_SIZE as u64);
    let mut buf = vec![0u8; (blocks as usize) * BLOCK_SIZE];
    let t = meta.read(Lba(base), &mut buf, t)?;
    buf.truncate(len as usize);
    Ok(Some((buf, t)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        CheckpointData {
            next_ino: 7,
            files: vec![FileRecord {
                name: "cache".into(),
                ino: Ino(3),
                size: 12288,
                ptrs: vec![Some(Mba(5)), None, Some(Mba(9))],
                nodes: vec![Some(Mba(64)), None],
            }],
            main: MainAreaSnapshot {
                heads: [Some((ZoneId(1), 4)), None, Some((ZoneId(2), 0))],
                free: vec![ZoneId(3), ZoneId(4)],
                valid: vec![true, false, true, true, false, false, false, false, true],
                valid_per_zone: vec![4, 0, 0],
                summary: vec![
                    Some(Owner {
                        ino: Ino(3),
                        index: 0,
                        is_node: false,
                    }),
                    None,
                    Some(Owner {
                        ino: Ino(3),
                        index: 1,
                        is_node: true,
                    }),
                    Some(Owner {
                        ino: Ino(3),
                        index: 2,
                        is_node: false,
                    }),
                    None,
                    None,
                    None,
                    None,
                    Some(Owner {
                        ino: Ino(3),
                        index: 8,
                        is_node: false,
                    }),
                ],
            },
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let data = sample();
        let bytes = encode(&data);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.next_ino, 7);
        assert_eq!(back.files.len(), 1);
        let f = &back.files[0];
        assert_eq!(f.name, "cache");
        assert_eq!(f.size, 12288);
        assert_eq!(f.ptrs, vec![Some(Mba(5)), None, Some(Mba(9))]);
        assert_eq!(f.nodes, vec![Some(Mba(64)), None]);
        assert_eq!(back.main.heads, data.main.heads);
        assert_eq!(back.main.free, data.main.free);
        assert_eq!(back.main.valid, data.main.valid);
        assert_eq!(back.main.valid_per_zone, data.main.valid_per_zone);
        assert_eq!(back.main.summary, data.main.summary);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = encode(&sample());
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn superblock_round_trip_and_magic_check() {
        let meta = RamDisk::new(16);
        write_fresh_superblock(&meta, Nanos::ZERO).unwrap();
        let (sb, _) = read_superblock(&meta, Nanos::ZERO).unwrap();
        assert_eq!(sb, Superblock::default());
        // A blank disk has no magic.
        let blank = RamDisk::new(16);
        assert!(read_superblock(&blank, Nanos::ZERO).is_err());
    }

    #[test]
    fn checkpoint_slots_alternate_and_latest_wins() {
        let meta = RamDisk::new(64);
        write_fresh_superblock(&meta, Nanos::ZERO).unwrap();
        assert!(read_checkpoint(&meta, Nanos::ZERO).unwrap().is_none());

        write_checkpoint(&meta, b"first", Nanos::ZERO).unwrap();
        let (got, _) = read_checkpoint(&meta, Nanos::ZERO).unwrap().unwrap();
        assert_eq!(got, b"first");

        write_checkpoint(&meta, b"second", Nanos::ZERO).unwrap();
        let (got, _) = read_checkpoint(&meta, Nanos::ZERO).unwrap().unwrap();
        assert_eq!(got, b"second");

        // Slots alternate: A has gen 1, B has gen 2.
        let (sb, _) = read_superblock(&meta, Nanos::ZERO).unwrap();
        assert_eq!((sb.gen_a, sb.gen_b), (1, 2));
    }

    #[test]
    fn oversized_checkpoint_rejected() {
        let meta = RamDisk::new(5); // slot = 2 blocks
        write_fresh_superblock(&meta, Nanos::ZERO).unwrap();
        let big = vec![0u8; 3 * BLOCK_SIZE];
        assert!(matches!(
            write_checkpoint(&meta, &big, Nanos::ZERO),
            Err(FsError::NoSpace)
        ));
    }
}
