//! The filesystem proper: files, pointer trees, cleaning, checkpoints.
//!
//! # Locking
//!
//! Device I/O is never performed while the filesystem's table lock
//! (`inner`) is held. Every main-area write goes through
//! [`FileSystem::append_block`]: a per-log append lock serializes the
//! zone's write pointer, a brief `inner` acquisition reserves the block
//! (marking it valid so the cleaner cannot reset the zone underneath
//! it), and the device write happens with `inner` released. Reads
//! translate under `inner`, read unlocked, then revalidate the pointer
//! — block addresses are write-once until their zone is reset, and only
//! the (serialized) cleaner resets zones, so an unchanged pointer
//! proves the unlocked read saw current data.
//!
//! Lock order: `cleaner` → `node_flush` → `log_locks[*]` → `inner`.
//! Each path takes a prefix of that chain; none takes them out of
//! order, so the hierarchy is deadlock-free.

use core::fmt;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use bytes::BufMut;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim::trace::{self, EventKind};
use sim::{Nanos, RamDisk, BLOCK_SIZE};
use zns::{ZnsConfig, ZnsDevice, ZnsError, ZoneId, ZoneState};

use crate::alloc::{MainArea, Owner};
use crate::checkpoint::{self, CheckpointData, FileRecord};
use crate::types::{FsError, Ino, LogType, Mba};

/// Configuration for [`FileSystem::format`].
#[derive(Clone, Debug)]
pub struct FsConfig {
    /// The zoned main device.
    pub zns: ZnsConfig,
    /// Size of the conventional metadata device in 4 KiB blocks.
    pub meta_blocks: u64,
    /// Zones reserved for cleaning, invisible to user capacity — F2FS's
    /// over-provisioning (the paper cites ~20% for File-Cache).
    pub reserved_zones: u32,
    /// Foreground cleaning starts when free zones drop below this.
    pub min_free_zones: u32,
    /// Data pointers per node block (1024 fills a 4 KiB block; tests use
    /// small values to exercise multi-node files).
    pub node_fanout: u32,
    /// Dirty node blocks are flushed once this many accumulate.
    pub dirty_node_flush_threshold: u32,
    /// Automatic checkpoint every N data-block writes (0 = manual only).
    pub checkpoint_interval_blocks: u64,
}

impl FsConfig {
    /// Tiny filesystem for unit tests: 16 zones × 32 blocks, 3 reserved.
    pub fn small_test() -> Self {
        FsConfig {
            zns: ZnsConfig::small_test(),
            meta_blocks: 512,
            reserved_zones: 3,
            min_free_zones: 3,
            node_fanout: 8,
            dirty_node_flush_threshold: 4,
            checkpoint_interval_blocks: 0,
        }
    }
}

/// Point-in-time filesystem statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FsStatsSnapshot {
    /// Data blocks written on behalf of the user.
    pub data_blocks_written: u64,
    /// Node (pointer) blocks written.
    pub node_blocks_written: u64,
    /// Data blocks migrated by the cleaner.
    pub gc_data_moved: u64,
    /// Node blocks migrated by the cleaner.
    pub gc_node_moved: u64,
    /// Zones cleaned (migrate + reset cycles).
    pub zones_cleaned: u64,
    /// Zones permanently retired after degrading to read-only/offline:
    /// salvaged (if readable) and removed from circulation, never reset.
    pub zones_retired: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

impl FsStatsSnapshot {
    /// Filesystem-level write amplification: all main-area writes divided
    /// by user data writes. ≥ 1; grows with node churn and cleaning.
    pub fn write_amplification(&self) -> f64 {
        if self.data_blocks_written == 0 {
            return 1.0;
        }
        let total = self.data_blocks_written
            + self.node_blocks_written
            + self.gc_data_moved
            + self.gc_node_moved;
        total as f64 / self.data_blocks_written as f64
    }
}

#[derive(Clone, Debug)]
struct NodeSlot {
    addr: Option<Mba>,
    dirty: bool,
}

struct File {
    name: String,
    size: u64,
    ptrs: Vec<Option<Mba>>,
    nodes: Vec<NodeSlot>,
}

struct Inner {
    main: MainArea,
    files: HashMap<u32, File>,
    names: HashMap<String, u32>,
    next_ino: u32,
    dirty_nodes: BTreeSet<(u32, u32)>,
    data_since_ckpt: u64,
    /// Live user-data blocks (node blocks are carried by the reserve).
    live_data_blocks: u64,
    stats: FsStatsSnapshot,
}

/// A mounted `f2fs-lite` filesystem.
///
/// Internally locked; all methods take `&self`. See the
/// [crate docs](crate) for an example and the [module docs](self) for
/// the locking discipline.
pub struct FileSystem {
    meta: Arc<RamDisk>,
    /// The main device, reachable without taking `inner` so reads and
    /// the device half of appends run lock-free.
    dev: Arc<ZnsDevice>,
    blocks_per_zone: u64,
    node_fanout: u32,
    reserved_zones: u32,
    min_free_zones: u32,
    dirty_flush_threshold: u32,
    checkpoint_interval: u64,
    /// One append lock per log (hot data / cold data / node): holds the
    /// zone write pointer in reservation order across the unlocked
    /// device write.
    log_locks: [Mutex<()>; 3],
    /// Serializes node-block flushes so a claim (take old address) and
    /// its publish (install new address) are atomic against each other.
    node_flush: Mutex<()>,
    /// At most one cleaning pass at a time; foreground writers that hit
    /// the free floor while a pass runs just wait for it.
    cleaner: Mutex<()>,
    inner: Mutex<Inner>,
}

fn log_slot(log: LogType) -> usize {
    match log {
        LogType::HotData => 0,
        LogType::ColdData => 1,
        LogType::Node => 2,
    }
}

impl fmt::Debug for FileSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSystem")
            .field("stats", &self.stats())
            .finish()
    }
}

impl FileSystem {
    /// Formats fresh devices and mounts the filesystem.
    ///
    /// # Panics
    ///
    /// Panics on impossible configurations (reserve exceeding the device,
    /// fanout that cannot fit a node block) — startup bugs.
    pub fn format(config: FsConfig) -> Self {
        let dev = Arc::new(ZnsDevice::new(config.zns.clone()));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        Self::format_on(dev, meta, &config)
    }

    /// Formats onto pre-built devices (shared with test harnesses).
    ///
    /// # Panics
    ///
    /// As [`FileSystem::format`].
    pub fn format_on(dev: Arc<ZnsDevice>, meta: Arc<RamDisk>, config: &FsConfig) -> Self {
        assert!(
            (config.reserved_zones as u64) < dev.num_zones() as u64,
            "reserved zones exceed the device"
        );
        assert!(
            config.node_fanout >= 1 && (config.node_fanout as usize) * 4 <= BLOCK_SIZE,
            "node fanout {} cannot fit one block",
            config.node_fanout
        );
        assert!(config.min_free_zones >= 2, "cleaning needs min_free_zones >= 2");
        checkpoint::write_fresh_superblock(&meta, Nanos::ZERO)
            .expect("fresh metadata device must accept a superblock");
        let blocks_per_zone = dev.zone_cap_blocks();
        let main = MainArea::format(Arc::clone(&dev));
        FileSystem {
            meta,
            dev,
            blocks_per_zone,
            node_fanout: config.node_fanout,
            reserved_zones: config.reserved_zones,
            min_free_zones: config.min_free_zones,
            dirty_flush_threshold: config.dirty_node_flush_threshold.max(1),
            checkpoint_interval: config.checkpoint_interval_blocks,
            log_locks: [Mutex::new(()), Mutex::new(()), Mutex::new(())],
            node_flush: Mutex::new(()),
            cleaner: Mutex::new(()),
            inner: Mutex::new(Inner {
                main,
                files: HashMap::new(),
                names: HashMap::new(),
                next_ino: 1,
                dirty_nodes: BTreeSet::new(),
                data_since_ckpt: 0,
                live_data_blocks: 0,
                stats: FsStatsSnapshot::default(),
            }),
        }
    }

    /// Mounts an existing filesystem from its devices, recovering state
    /// from the newest checkpoint.
    ///
    /// Data written after the last checkpoint is not recovered (f2fs-lite
    /// has no roll-forward log; durability is checkpoint-granular).
    ///
    /// # Errors
    ///
    /// [`FsError::BadSuperblock`] when the metadata device holds no valid
    /// filesystem or no checkpoint.
    pub fn mount(
        dev: Arc<ZnsDevice>,
        meta: Arc<RamDisk>,
        config: &FsConfig,
        now: Nanos,
    ) -> Result<(Self, Nanos), FsError> {
        let (payload, t) = checkpoint::read_checkpoint(&meta, now)?
            .ok_or_else(|| FsError::BadSuperblock("no checkpoint present".into()))?;
        let data = checkpoint::decode(&payload)?;
        let mut files = HashMap::new();
        let mut names = HashMap::new();
        for record in data.files {
            names.insert(record.name.clone(), record.ino.0);
            files.insert(
                record.ino.0,
                File {
                    name: record.name,
                    size: record.size,
                    ptrs: record.ptrs,
                    nodes: record
                        .nodes
                        .into_iter()
                        .map(|addr| NodeSlot { addr, dirty: false })
                        .collect(),
                },
            );
        }
        let live_data_blocks: u64 = files
            .values()
            .map(|f: &File| f.ptrs.iter().flatten().count() as u64)
            .sum();
        let blocks_per_zone = dev.zone_cap_blocks();
        let main = MainArea::restore(Arc::clone(&dev), data.main);
        let fs = FileSystem {
            meta,
            dev,
            blocks_per_zone,
            node_fanout: config.node_fanout,
            reserved_zones: config.reserved_zones,
            min_free_zones: config.min_free_zones,
            dirty_flush_threshold: config.dirty_node_flush_threshold.max(1),
            checkpoint_interval: config.checkpoint_interval_blocks,
            log_locks: [Mutex::new(()), Mutex::new(()), Mutex::new(())],
            node_flush: Mutex::new(()),
            cleaner: Mutex::new(()),
            inner: Mutex::new(Inner {
                main,
                files,
                names,
                next_ino: data.next_ino,
                dirty_nodes: BTreeSet::new(),
                data_since_ckpt: 0,
                live_data_blocks,
                stats: FsStatsSnapshot::default(),
            }),
        };
        Ok((fs, t))
    }

    /// User-visible capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        let zones = inner.main.zones() as u64;
        let usable = zones.saturating_sub(self.reserved_zones as u64);
        usable * inner.main.blocks_per_zone() * BLOCK_SIZE as u64
    }

    /// Filesystem statistics.
    pub fn stats(&self) -> FsStatsSnapshot {
        self.inner.lock().stats
    }

    /// The zoned main device (for device-level WA accounting).
    pub fn device(&self) -> Arc<ZnsDevice> {
        Arc::clone(&self.dev)
    }

    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] for duplicate names.
    pub fn create(&self, name: &str, _now: Nanos) -> Result<Ino, FsError> {
        let mut inner = self.inner.lock();
        if inner.names.contains_key(name) {
            return Err(FsError::Exists { name: name.into() });
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        inner.names.insert(name.to_string(), ino);
        inner.files.insert(
            ino,
            File {
                name: name.to_string(),
                size: 0,
                ptrs: Vec::new(),
                nodes: Vec::new(),
            },
        );
        Ok(Ino(ino))
    }

    /// Looks up a file by name.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn open(&self, name: &str) -> Result<Ino, FsError> {
        self.inner
            .lock()
            .names
            .get(name)
            .map(|&i| Ino(i))
            .ok_or_else(|| FsError::NotFound { what: name.into() })
    }

    /// File size in bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn size(&self, ino: Ino) -> Result<u64, FsError> {
        let inner = self.inner.lock();
        inner
            .files
            .get(&ino.0)
            .map(|f| f.size)
            .ok_or_else(|| FsError::NotFound {
                what: ino.to_string(),
            })
    }

    /// Removes a file, invalidating all its blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn remove(&self, name: &str, _now: Nanos) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        let ino = inner
            .names
            .remove(name)
            .ok_or_else(|| FsError::NotFound { what: name.into() })?;
        let file = inner.files.remove(&ino).expect("name table had the ino");
        for mba in file.ptrs.into_iter().flatten() {
            inner.main.invalidate(mba);
            inner.live_data_blocks -= 1;
        }
        for node in file.nodes {
            if let Some(mba) = node.addr {
                inner.main.invalidate(mba);
            }
        }
        inner.dirty_nodes.retain(|&(i, _)| i != ino);
        Ok(())
    }

    fn user_block_limit(&self, inner: &Inner) -> u64 {
        let usable = inner.main.zones() as u64 - self.reserved_zones as u64;
        usable * inner.main.blocks_per_zone()
    }

    /// Serializes one node block's pointer window into a 4 KiB buffer.
    fn node_payload(&self, file: &File, node_idx: u32) -> Vec<u8> {
        let mut buf = Vec::with_capacity(BLOCK_SIZE);
        let start = (node_idx as usize) * self.node_fanout as usize;
        for i in start..start + self.node_fanout as usize {
            let v = file
                .ptrs
                .get(i)
                .copied()
                .flatten()
                .map_or(u32::MAX, |m| m.0);
            buf.put_u32_le(v);
        }
        buf.resize(BLOCK_SIZE, 0);
        buf
    }

    /// Appends one block to `log` with the table lock released across
    /// the device write (see the [module docs](self)).
    fn append_block(
        &self,
        log: LogType,
        data: &[u8],
        owner: Owner,
        now: Nanos,
    ) -> Result<(Mba, Nanos), FsError> {
        let _log = self.log_locks[log_slot(log)].lock();
        loop {
            let (zone, off, mba) = {
                let mut inner = self.inner.lock();
                inner.main.reserve(log, owner)?
            };
            // lock-ok: the per-head log lock exists precisely to serialize
            // device appends on this head — reservations hand out
            // sequential offsets, and a second writer slipping in between
            // reserve and write would tear the zone's write pointer.
            match self.dev.write(zone, data, now) {
                Ok(done) => return Ok((mba, done)),
                Err(ZnsError::ZoneDegraded { .. }) => {
                    // The head zone died under the append. Roll back the
                    // reservation, retire the head (its already-written
                    // blocks stay readable if the zone is merely
                    // read-only; the cleaner salvages them), and retry
                    // on a fresh zone. Terminates: each pass retires one
                    // zone, and an empty free pool surfaces NoSpace from
                    // the reserve above.
                    let mut inner = self.inner.lock();
                    inner.main.unreserve(log, zone, off);
                    inner.main.retire_head(log, zone);
                    inner.stats.zones_retired += 1;
                }
                Err(e) => {
                    self.inner.lock().main.unreserve(log, zone, off);
                    return Err(e.into());
                }
            }
        }
    }

    /// Reads one main-area block without any filesystem lock. Safe for
    /// callers that revalidate the pointer afterwards (content at an
    /// address is immutable until its zone resets).
    fn dev_read_block(&self, mba: Mba, buf: &mut [u8], now: Nanos) -> Result<Nanos, FsError> {
        let zone = ZoneId((mba.0 as u64 / self.blocks_per_zone) as u32);
        let off = mba.0 as u64 % self.blocks_per_zone;
        Ok(self.dev.read(zone, off, buf, now)?)
    }

    /// Writes out one dirty node block; returns its completion time.
    fn flush_node(&self, ino: u32, node_idx: u32, now: Nanos) -> Result<Nanos, FsError> {
        let _nf = self.node_flush.lock();
        // Claim: drop the dirty mark and the old address under the lock.
        let payload = {
            let mut inner = self.inner.lock();
            inner.dirty_nodes.remove(&(ino, node_idx));
            let Inner { files, main, .. } = &mut *inner;
            let Some(file) = files.get_mut(&ino) else {
                return Ok(now); // removed while queued
            };
            let Some(slot) = file.nodes.get_mut(node_idx as usize) else {
                return Ok(now);
            };
            if !slot.dirty {
                return Ok(now); // a racing flush already handled it
            }
            slot.dirty = false;
            if let Some(old_mba) = slot.addr.take() {
                main.invalidate(old_mba);
            }
            self.node_payload(files.get(&ino).expect("still present"), node_idx)
        };
        let owner = Owner { ino: Ino(ino), index: node_idx, is_node: true };
        // lock-ok: `node_flush` is held across the append on purpose — it
        // is what makes flush-vs-flush races impossible for a node block.
        let (mba, done) = self.append_block(LogType::Node, &payload, owner, now)?;
        // Publish. The file can only have vanished (remove) meanwhile —
        // node_flush excludes competing flushes — so an absent file
        // means the new block is already garbage.
        let mut inner = self.inner.lock();
        inner.stats.node_blocks_written += 1;
        let Inner { files, main, .. } = &mut *inner;
        match files.get_mut(&ino) {
            Some(file) if (node_idx as usize) < file.nodes.len() => {
                file.nodes[node_idx as usize].addr = Some(mba);
            }
            _ => main.invalidate(mba),
        }
        Ok(done)
    }

    /// Flushes every dirty node block.
    fn flush_all_nodes(&self, now: Nanos) -> Result<Nanos, FsError> {
        let dirty: Vec<(u32, u32)> = {
            let mut inner = self.inner.lock();
            let d = inner.dirty_nodes.iter().copied().collect();
            inner.dirty_nodes.clear();
            d
        };
        let mut done = now;
        for (ino, node_idx) in dirty {
            done = done.max(self.flush_node(ino, node_idx, now)?);
        }
        Ok(done)
    }

    /// Migrates one live node block of a victim zone.
    fn migrate_node(&self, mba: Mba, owner: Owner, now: Nanos) -> Result<Nanos, FsError> {
        let _nf = self.node_flush.lock();
        let payload = {
            let inner = self.inner.lock();
            let Some(file) = inner.files.get(&owner.ino.0) else {
                return Ok(now); // file removed; block already dead
            };
            match file.nodes.get(owner.index as usize) {
                Some(slot) if slot.addr == Some(mba) => self.node_payload(file, owner.index),
                _ => return Ok(now), // superseded by a flush meanwhile
            }
        };
        // lock-ok: same `node_flush` exclusion as `flush_node` — the
        // migration is a flush and must not race one.
        let (new_mba, done) = self.append_block(LogType::Node, &payload, owner, now)?;
        let mut inner = self.inner.lock();
        let Inner { files, main, stats, .. } = &mut *inner;
        let current = files
            .get_mut(&owner.ino.0)
            .and_then(|f| f.nodes.get_mut(owner.index as usize))
            .filter(|slot| slot.addr == Some(mba));
        match current {
            Some(slot) => {
                slot.addr = Some(new_mba);
                main.invalidate(mba);
                stats.gc_node_moved += 1;
            }
            // Removed while we wrote the copy: drop the copy instead.
            None => main.invalidate(new_mba),
        }
        Ok(done)
    }

    /// Migrates one live data block of a victim zone: read and copy
    /// outside the table lock, then publish only if the file still
    /// points at the old address (otherwise the copy is dropped).
    fn migrate_data(
        &self,
        mba: Mba,
        owner: Owner,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, FsError> {
        {
            let inner = self.inner.lock();
            if !inner.main.is_valid(mba) {
                return Ok(now); // overwritten/punched since the victim scan
            }
        }
        // Content at `mba` is immutable until its zone resets, and only
        // this (serialized) cleaner resets zones — unlocked read is safe.
        let t_read = self.dev_read_block(mba, buf, now)?;
        let (new_mba, t) = self.append_block(LogType::ColdData, buf, owner, t_read)?;
        let mut inner = self.inner.lock();
        let Inner { files, main, stats, dirty_nodes, .. } = &mut *inner;
        let idx = owner.index as usize;
        let still_live = files
            .get_mut(&owner.ino.0)
            .filter(|f| f.ptrs.get(idx).copied().flatten() == Some(mba));
        match still_live {
            Some(file) => {
                main.invalidate(mba);
                file.ptrs[idx] = Some(new_mba);
                // The covering node must be rewritten to reference the
                // new location — the metadata cascade of filesystem GC.
                let node_idx = owner.index / self.node_fanout;
                file.nodes[node_idx as usize].dirty = true;
                dirty_nodes.insert((owner.ino.0, node_idx));
                stats.gc_data_moved += 1;
            }
            None => main.invalidate(new_mba),
        }
        Ok(t)
    }

    /// Cleans one victim zone: migrates live blocks, resets the zone.
    /// Caller holds the `cleaner` lock.
    ///
    /// `max_valid` caps how full a victim may be: a zone with more valid
    /// blocks than that is not worth cleaning at this urgency and the
    /// pass reports `Ok(None)` instead.
    fn clean_one(&self, max_valid: u64, now: Nanos) -> Result<Option<Nanos>, FsError> {
        let (victim, live) = {
            let inner = self.inner.lock();
            let victim = match inner.main.pick_victim() {
                Some(z) => z,
                None => return Ok(None),
            };
            // A read-only victim is a salvage, not a space reclaim: its
            // media is dying, so the victim-quality gate does not apply —
            // every live block must move off it regardless of occupancy.
            // lock-ok: the victim's health must be read atomically with
            // picking it from the mapping state, or a zone could degrade
            // between selection and the gate below.
            let salvage =
                matches!(self.dev.zone_state(victim), Ok(ZoneState::ReadOnly));
            if !salvage && inner.main.zone_valid(victim) as u64 > max_valid {
                return Ok(None);
            }
            (victim, inner.main.live_blocks(victim))
        };
        trace::emit(EventKind::CleanerVictim, now, victim.0 as u64, live.len() as u64);
        // Submit every migration at the pass start (a deep device queue),
        // not chained on the previous block's completion: block moves are
        // independent I/Os, and the device model already serializes each
        // die's programs. Chaining them serialized a zone's cleaning to
        // ~550us per block — tens of simulated seconds per pass — and
        // that serial tail, not foreground traffic, dominated File-Cache
        // makespans. The `IoHandle` keeps the submit/complete split
        // explicit: all commands go out at `now`, completions are reaped
        // afterwards.
        let mut io = sim::aio::IoPool::<FsError>::new().handle();
        let mut buf = vec![0u8; BLOCK_SIZE];
        for (mba, owner) in live {
            if owner.is_node {
                io.submit(now, |t| self.migrate_node(mba, owner, t));
            } else {
                io.submit(now, |t| self.migrate_data(mba, owner, &mut buf, t));
            }
        }
        let mut done = now;
        let mut victim_died = false;
        while let Some(reaped) = io.try_complete() {
            match reaped {
                Ok(c) => done = done.max(c.done),
                Err((_, FsError::DeadZone { .. })) => {
                    // The victim went offline mid-salvage: its remaining
                    // blocks are unreadable and stay stranded (reads of
                    // them keep surfacing DeadZone). Retire it and report
                    // progress — failing the whole pass would couple an
                    // unrelated dead zone to foreground writes.
                    victim_died = true;
                }
                Err((_, e)) => return Err(e),
            }
        }
        if victim_died {
            self.inner.lock().stats.zones_retired += 1;
            return Ok(Some(done));
        }
        // Every live block was either migrated (old copy invalidated at
        // publish) or invalidated by a racing overwrite/punch/remove, and
        // sealed zones never take new writes — the victim is fully dead.
        debug_assert_eq!(self.inner.lock().main.zone_valid(victim), 0);
        match self.dev.reset(victim, done) {
            Ok(t) => {
                let mut inner = self.inner.lock();
                inner.main.release_reset_zone(victim);
                inner.stats.zones_cleaned += 1;
                Ok(Some(t))
            }
            Err(ZnsError::ZoneDegraded { .. }) => {
                // Degraded zones cannot be reset. Live data was migrated
                // above; retiring the zone (never returning it to the
                // free pool) is all that's left. Still `Some`: the pass
                // made progress, the loop may continue.
                self.inner.lock().stats.zones_retired += 1;
                Ok(Some(done))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Runs cleaning until `target_free` zones are free (or nothing is
    /// cleanable). One pass at a time; a caller arriving while another
    /// pass runs waits, re-checks, and usually finds the work done.
    fn clean_pass(&self, target_free: u32, foreground: bool, now: Nanos) -> Result<Nanos, FsError> {
        let _c = self.cleaner.lock();
        let free = self.inner.lock().main.free_zones();
        if free >= target_free {
            return Ok(now);
        }
        // Victim-quality gate, F2FS's background/foreground GC split. A
        // foreground pass (writer at the free floor) must make progress
        // and accepts any victim that frees at least one block. A
        // background pass refuses victims more than 7/8 valid: cleaning a
        // ~98%-valid zone rewrites a whole zone of data to reclaim a few
        // blocks, and the migrated data itself consumes a fresh zone — a
        // self-feeding spiral that once held measured WA at ~25x. Better
        // to leave free-space slack alone until overwrites have killed
        // enough blocks for cleaning to pay.
        let per_zone = self.inner.lock().main.blocks_per_zone();
        let max_valid = if foreground {
            per_zone - 1
        } else {
            per_zone / 8 * 7
        };
        trace::emit(EventKind::CleanerStart, now, free as u64, foreground as u64);
        let mut done = now;
        let mut cleaned = 0u64;
        while self.inner.lock().main.free_zones() < target_free {
            // lock-ok: the cleaner mutex serializes whole cleaning passes;
            // holding it across the migration I/O is the point — two
            // concurrent cleaners would fight over the same victims.
            match self.clean_one(max_valid, done)? {
                Some(t) => {
                    done = t;
                    cleaned += 1;
                }
                None => break,
            }
        }
        let free = self.inner.lock().main.free_zones();
        trace::emit(EventKind::CleanerStop, done, free as u64, cleaned);
        Ok(done)
    }

    /// Background cleaning entry point: cleans until the free pool sits
    /// one zone *above* the foreground floor, so writers only clean
    /// inline when the background pass has fallen behind.
    ///
    /// # Errors
    ///
    /// Propagates device errors from migration I/O.
    pub fn clean(&self, now: Nanos) -> Result<Nanos, FsError> {
        self.clean_pass(self.min_free_zones + 1, false, now)
    }

    /// Writes `data` at `offset`; both must be 4 KiB-aligned.
    ///
    /// Returns the completion time of the slowest block.
    ///
    /// # Errors
    ///
    /// [`FsError::Misaligned`], [`FsError::NotFound`], [`FsError::NoSpace`].
    pub fn pwrite(&self, ino: Ino, offset: u64, data: &[u8], now: Nanos) -> Result<Nanos, FsError> {
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Misaligned { value: offset });
        }
        if data.is_empty() || !data.len().is_multiple_of(BLOCK_SIZE) {
            return Err(FsError::Misaligned {
                value: data.len() as u64,
            });
        }
        let nblocks = (data.len() / BLOCK_SIZE) as u64;
        let first_fbi = offset / BLOCK_SIZE as u64;

        let mut done = now;
        for i in 0..nblocks {
            let fbi = (first_fbi + i) as usize;
            // Admission: grow tables and check capacity, briefly locked.
            {
                let mut inner = self.inner.lock();
                let limit = self.user_block_limit(&inner);
                let live = inner.live_data_blocks;
                let fanout = self.node_fanout as usize;
                let Some(file) = inner.files.get_mut(&ino.0) else {
                    return Err(FsError::NotFound { what: ino.to_string() });
                };
                if file.ptrs.len() <= fbi {
                    file.ptrs.resize(fbi + 1, None);
                }
                let nodes_needed = fbi / fanout + 1;
                if file.nodes.len() < nodes_needed {
                    file.nodes.resize(
                        nodes_needed,
                        NodeSlot {
                            addr: None,
                            dirty: false,
                        },
                    );
                }
                if file.ptrs[fbi].is_none() && live >= limit {
                    return Err(FsError::NoSpace);
                }
            }
            // Foreground cleaning only when the free pool hit the floor;
            // the background pass (`clean`) normally keeps it above.
            let t0 = if self.inner.lock().main.free_zones() < self.min_free_zones {
                self.clean_pass(self.min_free_zones, true, now)?
            } else {
                now
            };
            let chunk = &data[(i as usize) * BLOCK_SIZE..(i as usize + 1) * BLOCK_SIZE];
            let owner = Owner { ino, index: fbi as u32, is_node: false };
            let (mba, t) = self.append_block(LogType::HotData, chunk, owner, t0)?;
            // Publish the new block.
            let flush_due = {
                let mut inner = self.inner.lock();
                let Inner {
                    files,
                    main,
                    dirty_nodes,
                    live_data_blocks,
                    stats,
                    data_since_ckpt,
                    ..
                } = &mut *inner;
                let Some(file) = files.get_mut(&ino.0) else {
                    // Removed while the write was in flight.
                    main.invalidate(mba);
                    return Err(FsError::NotFound { what: ino.to_string() });
                };
                let node_idx = (fbi as u32) / self.node_fanout;
                let old = file.ptrs[fbi].replace(mba);
                file.nodes[node_idx as usize].dirty = true;
                let end = (fbi as u64 + 1) * BLOCK_SIZE as u64;
                if end > file.size {
                    file.size = end;
                }
                dirty_nodes.insert((ino.0, node_idx));
                if let Some(old_mba) = old {
                    main.invalidate(old_mba);
                } else {
                    *live_data_blocks += 1;
                }
                stats.data_blocks_written += 1;
                *data_since_ckpt += 1;
                dirty_nodes.len() as u32 >= self.dirty_flush_threshold
            };
            done = done.max(t);
            if flush_due {
                done = done.max(self.flush_all_nodes(done)?);
            }
        }
        let ckpt_due = self.checkpoint_interval > 0
            && self.inner.lock().data_since_ckpt >= self.checkpoint_interval;
        if ckpt_due {
            done = done.max(self.do_checkpoint(done)?);
        }
        Ok(done)
    }

    /// Reads into `buf` from `offset`; both must be 4 KiB-aligned.
    ///
    /// Holes read as zeros.
    ///
    /// # Errors
    ///
    /// [`FsError::Misaligned`], [`FsError::NotFound`],
    /// [`FsError::BeyondEof`].
    pub fn pread(
        &self,
        ino: Ino,
        offset: u64,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, FsError> {
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Misaligned { value: offset });
        }
        if buf.is_empty() || !buf.len().is_multiple_of(BLOCK_SIZE) {
            return Err(FsError::Misaligned {
                value: buf.len() as u64,
            });
        }
        {
            let inner = self.inner.lock();
            let file = inner.files.get(&ino.0).ok_or_else(|| FsError::NotFound {
                what: ino.to_string(),
            })?;
            if offset + buf.len() as u64 > file.size {
                return Err(FsError::BeyondEof {
                    offset,
                    size: file.size,
                });
            }
        }
        let first_fbi = offset / BLOCK_SIZE as u64;
        let nblocks = (buf.len() / BLOCK_SIZE) as u64;
        let mut done = now;
        for i in 0..nblocks {
            let fbi = (first_fbi + i) as usize;
            let chunk = &mut buf[(i as usize) * BLOCK_SIZE..(i as usize + 1) * BLOCK_SIZE];
            // Translate under the lock, read unlocked, then revalidate:
            // an unchanged pointer proves the address was not recycled
            // (recycling requires invalidation, which changes the
            // pointer first). A changed pointer or a read error from a
            // concurrently reset zone just retries with the new pointer.
            loop {
                let ptr = {
                    let inner = self.inner.lock();
                    let file = inner.files.get(&ino.0).ok_or_else(|| FsError::NotFound {
                        what: ino.to_string(),
                    })?;
                    file.ptrs.get(fbi).copied().flatten()
                };
                let Some(mba) = ptr else {
                    chunk.fill(0);
                    break;
                };
                let read = self.dev_read_block(mba, chunk, now);
                let still_current = {
                    let inner = self.inner.lock();
                    inner
                        .files
                        .get(&ino.0)
                        .is_some_and(|f| f.ptrs.get(fbi).copied().flatten() == Some(mba))
                };
                match read {
                    Ok(t) if still_current => {
                        done = done.max(t);
                        break;
                    }
                    Err(e) if still_current => return Err(e),
                    _ => {} // raced a migration; retry with the new pointer
                }
            }
        }
        Ok(done)
    }

    /// Deallocates (punches a hole in) a 4 KiB-aligned byte range: the
    /// blocks become holes that read zeros, and their storage is
    /// reclaimable by the cleaner without migration. The file size is
    /// unchanged, as with `fallocate(FALLOC_FL_PUNCH_HOLE)`.
    ///
    /// # Errors
    ///
    /// [`FsError::Misaligned`], [`FsError::NotFound`].
    pub fn punch_hole(
        &self,
        ino: Ino,
        offset: u64,
        len: u64,
        _now: Nanos,
    ) -> Result<(), FsError> {
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Misaligned { value: offset });
        }
        if len == 0 || !len.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Misaligned { value: len });
        }
        let mut inner = self.inner.lock();
        if !inner.files.contains_key(&ino.0) {
            return Err(FsError::NotFound {
                what: ino.to_string(),
            });
        }
        let first = offset / BLOCK_SIZE as u64;
        let nblocks = len / BLOCK_SIZE as u64;
        for fbi in first..first + nblocks {
            let (old, node_idx) = {
                let file = inner.files.get_mut(&ino.0).expect("checked");
                if fbi as usize >= file.ptrs.len() {
                    break;
                }
                let old = file.ptrs[fbi as usize].take();
                let node_idx = (fbi as u32) / self.node_fanout;
                if old.is_some() && !file.nodes[node_idx as usize].dirty {
                    file.nodes[node_idx as usize].dirty = true;
                }
                (old, node_idx)
            };
            if let Some(mba) = old {
                inner.main.invalidate(mba);
                inner.live_data_blocks -= 1;
                inner.dirty_nodes.insert((ino.0, node_idx));
            }
        }
        Ok(())
    }

    /// Free user-visible space in bytes (a `statfs`-style figure).
    pub fn free_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        let usable = inner.main.zones() as u64 - self.reserved_zones as u64;
        let limit = usable * inner.main.blocks_per_zone();
        limit.saturating_sub(inner.live_data_blocks) * BLOCK_SIZE as u64
    }

    /// Makes a file's pointer tree durable (flushes its dirty nodes).
    ///
    /// Full durability of f2fs-lite is checkpoint-granular; fsync bounds
    /// the node-flush backlog like F2FS's node writeback.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn fsync(&self, ino: Ino, now: Nanos) -> Result<Nanos, FsError> {
        let dirty: Vec<(u32, u32)> = {
            let inner = self.inner.lock();
            if !inner.files.contains_key(&ino.0) {
                return Err(FsError::NotFound {
                    what: ino.to_string(),
                });
            }
            inner
                .dirty_nodes
                .iter()
                .copied()
                .filter(|&(i, _)| i == ino.0)
                .collect()
        };
        let mut done = now;
        for (i, n) in dirty {
            done = done.max(self.flush_node(i, n, now)?);
        }
        Ok(done)
    }

    fn do_checkpoint(&self, now: Nanos) -> Result<Nanos, FsError> {
        let t = self.flush_all_nodes(now)?;
        // Encode a point-in-time snapshot under the lock; write it to
        // the metadata device with the lock released. Durability is
        // checkpoint-granular, so mutations racing the metadata write
        // simply land in the next checkpoint.
        let payload = {
            let inner = self.inner.lock();
            let files = inner
                .files
                .iter()
                .map(|(&ino, f)| FileRecord {
                    name: f.name.clone(),
                    ino: Ino(ino),
                    size: f.size,
                    ptrs: f.ptrs.clone(),
                    nodes: f.nodes.iter().map(|n| n.addr).collect(),
                })
                .collect();
            let data = CheckpointData {
                next_ino: inner.next_ino,
                files,
                main: inner.main.snapshot(),
            };
            checkpoint::encode(&data)
        };
        let done = checkpoint::write_checkpoint(&self.meta, &payload, t)?;
        let mut inner = self.inner.lock();
        inner.stats.checkpoints += 1;
        inner.data_since_ckpt = 0;
        Ok(done)
    }

    /// Writes a checkpoint: flushes dirty nodes, persists all tables to the
    /// metadata device.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] if the metadata device is too small.
    pub fn checkpoint(&self, now: Nanos) -> Result<Nanos, FsError> {
        self.do_checkpoint(now)
    }

    /// Free zones currently available (diagnostic).
    pub fn free_zones(&self) -> u32 {
        self.inner.lock().main.free_zones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FileSystem {
        FileSystem::format(FsConfig::small_test())
    }

    fn bytes(nblocks: usize, fill: u8) -> Vec<u8> {
        vec![fill; nblocks * BLOCK_SIZE]
    }

    #[test]
    fn create_open_write_read() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        assert_eq!(fs.open("a").unwrap(), ino);
        let t = fs.pwrite(ino, 0, &bytes(3, 0x11), Nanos::ZERO).unwrap();
        assert_eq!(fs.size(ino).unwrap(), 3 * BLOCK_SIZE as u64);
        let mut out = bytes(3, 0);
        fs.pread(ino, 0, &mut out, t).unwrap();
        assert!(out.iter().all(|&b| b == 0x11));
    }

    #[test]
    fn duplicate_create_rejected() {
        let fs = fs();
        fs.create("a", Nanos::ZERO).unwrap();
        assert!(matches!(
            fs.create("a", Nanos::ZERO),
            Err(FsError::Exists { .. })
        ));
        assert!(matches!(fs.open("b"), Err(FsError::NotFound { .. })));
    }

    #[test]
    fn overwrite_returns_latest_data_and_logs_new_blocks() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let t1 = fs.pwrite(ino, 0, &bytes(1, 1), Nanos::ZERO).unwrap();
        let t2 = fs.pwrite(ino, 0, &bytes(1, 2), t1).unwrap();
        let mut out = bytes(1, 0);
        fs.pread(ino, 0, &mut out, t2).unwrap();
        assert!(out.iter().all(|&b| b == 2));
        assert_eq!(fs.stats().data_blocks_written, 2);
    }

    #[test]
    fn holes_read_zero() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        // Write block 2 only; blocks 0–1 are holes.
        let t = fs
            .pwrite(ino, 2 * BLOCK_SIZE as u64, &bytes(1, 7), Nanos::ZERO)
            .unwrap();
        let mut out = bytes(3, 9);
        fs.pread(ino, 0, &mut out, t).unwrap();
        assert!(out[..2 * BLOCK_SIZE].iter().all(|&b| b == 0));
        assert!(out[2 * BLOCK_SIZE..].iter().all(|&b| b == 7));
    }

    #[test]
    fn misalignment_rejected() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        assert!(matches!(
            fs.pwrite(ino, 100, &bytes(1, 0), Nanos::ZERO),
            Err(FsError::Misaligned { value: 100 })
        ));
        assert!(fs.pwrite(ino, 0, &[0u8; 100], Nanos::ZERO).is_err());
        let mut buf = [0u8; 100];
        assert!(fs.pread(ino, 0, &mut buf, Nanos::ZERO).is_err());
    }

    #[test]
    fn read_beyond_eof_rejected() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        fs.pwrite(ino, 0, &bytes(1, 1), Nanos::ZERO).unwrap();
        let mut out = bytes(2, 0);
        assert!(matches!(
            fs.pread(ino, 0, &mut out, Nanos::ZERO),
            Err(FsError::BeyondEof { .. })
        ));
    }

    #[test]
    fn node_blocks_are_written_for_pointer_churn() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        // Enough writes to cross the dirty-node threshold (4).
        let mut t = Nanos::ZERO;
        for i in 0..40u64 {
            t = fs
                .pwrite(ino, (i % 40) * BLOCK_SIZE as u64, &bytes(1, i as u8), t)
                .unwrap();
        }
        assert!(fs.stats().node_blocks_written > 0, "no node churn recorded");
    }

    #[test]
    fn overwrite_churn_triggers_cleaning_and_stays_correct() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        // User capacity is (16-3)*32 = 416 blocks; work over 320 blocks and
        // overwrite heavily so zones fill and the cleaner must run.
        let span = 320u64;
        let mut t = Nanos::ZERO;
        for round in 0..6u64 {
            for b in 0..span {
                let fill = (round * span + b) as u8;
                t = fs
                    .pwrite(ino, b * BLOCK_SIZE as u64, &bytes(1, fill), t)
                    .unwrap();
            }
        }
        let s = fs.stats();
        assert!(s.zones_cleaned > 0, "cleaner never ran: {s:?}");
        assert!(s.write_amplification() > 1.0);
        // Every block reads back its final round value.
        for b in (0..span).step_by(17) {
            let mut out = bytes(1, 0);
            fs.pread(ino, b * BLOCK_SIZE as u64, &mut out, t).unwrap();
            let expect = (5 * span + b) as u8;
            assert!(out.iter().all(|&x| x == expect), "block {b} corrupt");
        }
    }

    #[test]
    fn capacity_limit_enforced() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let limit_blocks = 416u64; // (16 - 3 reserved) * 32
        let mut t = Nanos::ZERO;
        let mut wrote = 0u64;
        for b in 0..limit_blocks + 8 {
            match fs.pwrite(ino, b * BLOCK_SIZE as u64, &bytes(1, 1), t) {
                Ok(t2) => {
                    t = t2;
                    wrote += 1;
                }
                Err(FsError::NoSpace) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(wrote < limit_blocks + 8, "NoSpace never surfaced");
        // Node blocks share the capacity pool (~1 per fanout=8 data
        // blocks), so NoSpace fires somewhat below the data-only limit.
        assert!(
            wrote >= limit_blocks - limit_blocks / 8 - 16,
            "gave up far too early: {wrote}"
        );
    }

    #[test]
    fn remove_reclaims_space() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let t = fs.pwrite(ino, 0, &bytes(8, 1), Nanos::ZERO).unwrap();
        fs.remove("a", t).unwrap();
        assert!(matches!(fs.open("a"), Err(FsError::NotFound { .. })));
        // All space is reclaimable: a new file can use the full budget.
        let ino2 = fs.create("b", t).unwrap();
        let mut t2 = t;
        for b in 0..100u64 {
            t2 = fs.pwrite(ino2, b * BLOCK_SIZE as u64, &bytes(1, 2), t2).unwrap();
        }
    }

    #[test]
    fn fsync_flushes_only_that_files_nodes() {
        let fs = fs();
        let a = fs.create("a", Nanos::ZERO).unwrap();
        let b = fs.create("b", Nanos::ZERO).unwrap();
        fs.pwrite(a, 0, &bytes(1, 1), Nanos::ZERO).unwrap();
        fs.pwrite(b, 0, &bytes(1, 1), Nanos::ZERO).unwrap();
        let before = fs.stats().node_blocks_written;
        fs.fsync(a, Nanos::ZERO).unwrap();
        let after = fs.stats().node_blocks_written;
        assert_eq!(after - before, 1, "exactly a's one dirty node flushes");
    }

    #[test]
    fn checkpoint_mount_recovers_files() {
        let config = FsConfig::small_test();
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        let fs1 = FileSystem::format_on(dev.clone(), meta.clone(), &config);
        let ino = fs1.create("persist", Nanos::ZERO).unwrap();
        let t = fs1.pwrite(ino, 0, &bytes(5, 0xee), Nanos::ZERO).unwrap();
        let t = fs1.checkpoint(t).unwrap();
        drop(fs1); // crash after checkpoint

        let (fs2, t) = FileSystem::mount(dev, meta, &config, t).unwrap();
        let ino2 = fs2.open("persist").unwrap();
        assert_eq!(fs2.size(ino2).unwrap(), 5 * BLOCK_SIZE as u64);
        let mut out = bytes(5, 0);
        fs2.pread(ino2, 0, &mut out, t).unwrap();
        assert!(out.iter().all(|&x| x == 0xee));
        // And the recovered fs keeps working.
        let t = fs2.pwrite(ino2, 0, &bytes(1, 0xdd), t).unwrap();
        let mut out = bytes(1, 0);
        fs2.pread(ino2, 0, &mut out, t).unwrap();
        assert!(out.iter().all(|&x| x == 0xdd));
    }

    #[test]
    fn mount_restores_live_data_accounting() {
        let config = FsConfig::small_test();
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        let fs1 = FileSystem::format_on(dev.clone(), meta.clone(), &config);
        let ino = fs1.create("f", Nanos::ZERO).unwrap();
        let t = fs1.pwrite(ino, 0, &bytes(10, 1), Nanos::ZERO).unwrap();
        let free_before = fs1.free_bytes();
        let t = fs1.checkpoint(t).unwrap();
        drop(fs1);

        let (fs2, _t) = FileSystem::mount(dev, meta, &config, t).unwrap();
        // The quota must reflect the 10 live blocks, not reset to zero.
        assert_eq!(fs2.free_bytes(), free_before);
    }

    #[test]
    fn mount_without_checkpoint_fails() {
        let config = FsConfig::small_test();
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        let _fs = FileSystem::format_on(dev.clone(), meta.clone(), &config);
        assert!(matches!(
            FileSystem::mount(dev, meta, &config, Nanos::ZERO),
            Err(FsError::BadSuperblock(_))
        ));
    }

    #[test]
    fn auto_checkpoint_fires_on_interval() {
        let mut config = FsConfig::small_test();
        config.checkpoint_interval_blocks = 10;
        let fs = FileSystem::format(config);
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let mut t = Nanos::ZERO;
        for b in 0..25u64 {
            t = fs.pwrite(ino, b * BLOCK_SIZE as u64, &bytes(1, 1), t).unwrap();
        }
        assert!(fs.stats().checkpoints >= 2);
    }

    #[test]
    fn punch_hole_reads_zero_and_reclaims_space() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let t = fs.pwrite(ino, 0, &bytes(4, 9), Nanos::ZERO).unwrap();
        let free_before = fs.free_bytes();
        fs.punch_hole(ino, BLOCK_SIZE as u64, 2 * BLOCK_SIZE as u64, t).unwrap();
        // Size is unchanged; the punched blocks read zero.
        assert_eq!(fs.size(ino).unwrap(), 4 * BLOCK_SIZE as u64);
        let mut out = bytes(4, 1);
        fs.pread(ino, 0, &mut out, t).unwrap();
        assert!(out[..BLOCK_SIZE].iter().all(|&b| b == 9));
        assert!(out[BLOCK_SIZE..3 * BLOCK_SIZE].iter().all(|&b| b == 0));
        assert!(out[3 * BLOCK_SIZE..].iter().all(|&b| b == 9));
        assert_eq!(fs.free_bytes(), free_before + 2 * BLOCK_SIZE as u64);
        // Punching a hole twice (or over holes) is harmless.
        fs.punch_hole(ino, 0, 4 * BLOCK_SIZE as u64, t).unwrap();
        fs.punch_hole(ino, 0, 8 * BLOCK_SIZE as u64, t).unwrap();
    }

    #[test]
    fn punch_hole_validates_arguments() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        assert!(matches!(
            fs.punch_hole(ino, 3, 4096, Nanos::ZERO),
            Err(FsError::Misaligned { .. })
        ));
        assert!(matches!(
            fs.punch_hole(ino, 0, 0, Nanos::ZERO),
            Err(FsError::Misaligned { .. })
        ));
        assert!(matches!(
            fs.punch_hole(Ino(99), 0, 4096, Nanos::ZERO),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn capacity_bytes_excludes_reserve() {
        let fs = fs();
        assert_eq!(fs.capacity_bytes(), 416 * BLOCK_SIZE as u64);
    }

    #[test]
    fn background_clean_raises_free_zones_above_the_floor() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        // Churn until the free pool sits at (or near) the floor.
        let mut t = Nanos::ZERO;
        for round in 0..4u64 {
            for b in 0..200u64 {
                t = fs
                    .pwrite(ino, b * BLOCK_SIZE as u64, &bytes(1, (round + b) as u8), t)
                    .unwrap();
            }
        }
        let t = fs.clean(t).unwrap();
        assert!(
            fs.free_zones() > FsConfig::small_test().min_free_zones,
            "background clean left only {} free zones",
            fs.free_zones()
        );
        // Data survives cleaning.
        let mut out = bytes(1, 0);
        fs.pread(ino, 17 * BLOCK_SIZE as u64, &mut out, t).unwrap();
        assert!(out.iter().all(|&x| x == (3 + 17) as u8));
    }

    #[test]
    fn concurrent_writers_readers_and_cleaner_stay_consistent() {
        // 4 writers churn disjoint 64-block stripes of one file hard
        // enough to force cleaning, while a background thread runs the
        // cleaner and a reader verifies stripes it does not write.
        let fs = Arc::new(fs());
        let ino = fs.create("shared", Nanos::ZERO).unwrap();
        let stripe = 64u64;
        // Pre-fill so every stripe has a deterministic base value.
        let mut t = Nanos::ZERO;
        for w in 0..4u64 {
            for b in 0..stripe {
                t = fs
                    .pwrite(ino, (w * stripe + b) * BLOCK_SIZE as u64, &bytes(1, w as u8), t)
                    .unwrap();
            }
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let writers: Vec<_> = (0..4u64)
                .map(|w| {
                    let fs = Arc::clone(&fs);
                    s.spawn(move || {
                        let mut t = Nanos::ZERO;
                        for round in 0..6u64 {
                            for b in 0..stripe {
                                let fill = (w * 50 + round) as u8;
                                t = fs
                                    .pwrite(
                                        ino,
                                        (w * stripe + b) * BLOCK_SIZE as u64,
                                        &bytes(1, fill),
                                        t,
                                    )
                                    .unwrap();
                            }
                        }
                    })
                })
                .collect();
            {
                let fs = Arc::clone(&fs);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    // relaxed-ok: test stop flag; no payload rides on it.
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        fs.clean(Nanos::ZERO).unwrap();
                        std::thread::yield_now();
                    }
                });
            }
            {
                let fs = Arc::clone(&fs);
                s.spawn(move || {
                    let mut out = bytes(1, 0);
                    for i in 0..500u64 {
                        let w = i % 4;
                        let b = (i * 7) % stripe;
                        fs.pread(ino, (w * stripe + b) * BLOCK_SIZE as u64, &mut out, Nanos::ZERO)
                            .unwrap();
                        let v = out[0];
                        // Either the pre-fill value or one of writer w's
                        // round values; never another stripe's bytes and
                        // never torn garbage.
                        assert!(
                            v == w as u8 || (v >= (w * 50) as u8 && v < (w * 50 + 6) as u8),
                            "stripe {w} block {b} read foreign value {v}"
                        );
                        assert!(out.iter().all(|&x| x == v), "torn block read");
                    }
                });
            }
            for h in writers {
                h.join().unwrap();
            }
            // relaxed-ok: test stop flag; no payload rides on it.
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let s = fs.stats();
        assert!(s.zones_cleaned > 0, "churn never triggered cleaning: {s:?}");
        // Final contents are each stripe's last round.
        let mut out = bytes(1, 0);
        for w in 0..4u64 {
            for b in (0..stripe).step_by(13) {
                fs.pread(ino, (w * stripe + b) * BLOCK_SIZE as u64, &mut out, Nanos::ZERO)
                    .unwrap();
                let expect = (w * 50 + 5) as u8;
                assert!(out.iter().all(|&x| x == expect), "stripe {w} block {b} corrupt");
            }
        }
    }
}
