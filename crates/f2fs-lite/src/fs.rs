//! The filesystem proper: files, pointer trees, cleaning, checkpoints.

use core::fmt;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use bytes::BufMut;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim::{Nanos, RamDisk, BLOCK_SIZE};
use zns::{ZnsConfig, ZnsDevice};

use crate::alloc::{MainArea, Owner};
use crate::checkpoint::{self, CheckpointData, FileRecord};
use crate::types::{FsError, Ino, LogType, Mba};

/// Configuration for [`FileSystem::format`].
#[derive(Clone, Debug)]
pub struct FsConfig {
    /// The zoned main device.
    pub zns: ZnsConfig,
    /// Size of the conventional metadata device in 4 KiB blocks.
    pub meta_blocks: u64,
    /// Zones reserved for cleaning, invisible to user capacity — F2FS's
    /// over-provisioning (the paper cites ~20% for File-Cache).
    pub reserved_zones: u32,
    /// Foreground cleaning starts when free zones drop below this.
    pub min_free_zones: u32,
    /// Data pointers per node block (1024 fills a 4 KiB block; tests use
    /// small values to exercise multi-node files).
    pub node_fanout: u32,
    /// Dirty node blocks are flushed once this many accumulate.
    pub dirty_node_flush_threshold: u32,
    /// Automatic checkpoint every N data-block writes (0 = manual only).
    pub checkpoint_interval_blocks: u64,
}

impl FsConfig {
    /// Tiny filesystem for unit tests: 16 zones × 32 blocks, 3 reserved.
    pub fn small_test() -> Self {
        FsConfig {
            zns: ZnsConfig::small_test(),
            meta_blocks: 512,
            reserved_zones: 3,
            min_free_zones: 3,
            node_fanout: 8,
            dirty_node_flush_threshold: 4,
            checkpoint_interval_blocks: 0,
        }
    }
}

/// Point-in-time filesystem statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FsStatsSnapshot {
    /// Data blocks written on behalf of the user.
    pub data_blocks_written: u64,
    /// Node (pointer) blocks written.
    pub node_blocks_written: u64,
    /// Data blocks migrated by the cleaner.
    pub gc_data_moved: u64,
    /// Node blocks migrated by the cleaner.
    pub gc_node_moved: u64,
    /// Zones cleaned (migrate + reset cycles).
    pub zones_cleaned: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

impl FsStatsSnapshot {
    /// Filesystem-level write amplification: all main-area writes divided
    /// by user data writes. ≥ 1; grows with node churn and cleaning.
    pub fn write_amplification(&self) -> f64 {
        if self.data_blocks_written == 0 {
            return 1.0;
        }
        let total = self.data_blocks_written
            + self.node_blocks_written
            + self.gc_data_moved
            + self.gc_node_moved;
        total as f64 / self.data_blocks_written as f64
    }
}

#[derive(Clone, Debug)]
struct NodeSlot {
    addr: Option<Mba>,
    dirty: bool,
}

struct File {
    name: String,
    size: u64,
    ptrs: Vec<Option<Mba>>,
    nodes: Vec<NodeSlot>,
}

struct Inner {
    main: MainArea,
    files: HashMap<u32, File>,
    names: HashMap<String, u32>,
    next_ino: u32,
    dirty_nodes: BTreeSet<(u32, u32)>,
    data_since_ckpt: u64,
    /// Live user-data blocks (node blocks are carried by the reserve).
    live_data_blocks: u64,
    stats: FsStatsSnapshot,
}

/// A mounted `f2fs-lite` filesystem.
///
/// Internally locked; all methods take `&self`. See the
/// [crate docs](crate) for an example.
pub struct FileSystem {
    meta: Arc<RamDisk>,
    node_fanout: u32,
    reserved_zones: u32,
    min_free_zones: u32,
    dirty_flush_threshold: u32,
    checkpoint_interval: u64,
    inner: Mutex<Inner>,
}

impl fmt::Debug for FileSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSystem")
            .field("stats", &self.stats())
            .finish()
    }
}

impl FileSystem {
    /// Formats fresh devices and mounts the filesystem.
    ///
    /// # Panics
    ///
    /// Panics on impossible configurations (reserve exceeding the device,
    /// fanout that cannot fit a node block) — startup bugs.
    pub fn format(config: FsConfig) -> Self {
        let dev = Arc::new(ZnsDevice::new(config.zns.clone()));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        Self::format_on(dev, meta, &config)
    }

    /// Formats onto pre-built devices (shared with test harnesses).
    ///
    /// # Panics
    ///
    /// As [`FileSystem::format`].
    pub fn format_on(dev: Arc<ZnsDevice>, meta: Arc<RamDisk>, config: &FsConfig) -> Self {
        assert!(
            (config.reserved_zones as u64) < dev.num_zones() as u64,
            "reserved zones exceed the device"
        );
        assert!(
            config.node_fanout >= 1 && (config.node_fanout as usize) * 4 <= BLOCK_SIZE,
            "node fanout {} cannot fit one block",
            config.node_fanout
        );
        assert!(config.min_free_zones >= 2, "cleaning needs min_free_zones >= 2");
        checkpoint::write_fresh_superblock(&meta, Nanos::ZERO)
            .expect("fresh metadata device must accept a superblock");
        let main = MainArea::format(dev);
        FileSystem {
            meta,
            node_fanout: config.node_fanout,
            reserved_zones: config.reserved_zones,
            min_free_zones: config.min_free_zones,
            dirty_flush_threshold: config.dirty_node_flush_threshold.max(1),
            checkpoint_interval: config.checkpoint_interval_blocks,
            inner: Mutex::new(Inner {
                main,
                files: HashMap::new(),
                names: HashMap::new(),
                next_ino: 1,
                dirty_nodes: BTreeSet::new(),
                data_since_ckpt: 0,
                live_data_blocks: 0,
                stats: FsStatsSnapshot::default(),
            }),
        }
    }

    /// Mounts an existing filesystem from its devices, recovering state
    /// from the newest checkpoint.
    ///
    /// Data written after the last checkpoint is not recovered (f2fs-lite
    /// has no roll-forward log; durability is checkpoint-granular).
    ///
    /// # Errors
    ///
    /// [`FsError::BadSuperblock`] when the metadata device holds no valid
    /// filesystem or no checkpoint.
    pub fn mount(
        dev: Arc<ZnsDevice>,
        meta: Arc<RamDisk>,
        config: &FsConfig,
        now: Nanos,
    ) -> Result<(Self, Nanos), FsError> {
        let (payload, t) = checkpoint::read_checkpoint(&meta, now)?
            .ok_or_else(|| FsError::BadSuperblock("no checkpoint present".into()))?;
        let data = checkpoint::decode(&payload)?;
        let mut files = HashMap::new();
        let mut names = HashMap::new();
        for record in data.files {
            names.insert(record.name.clone(), record.ino.0);
            files.insert(
                record.ino.0,
                File {
                    name: record.name,
                    size: record.size,
                    ptrs: record.ptrs,
                    nodes: record
                        .nodes
                        .into_iter()
                        .map(|addr| NodeSlot { addr, dirty: false })
                        .collect(),
                },
            );
        }
        let live_data_blocks: u64 = files
            .values()
            .map(|f: &File| f.ptrs.iter().flatten().count() as u64)
            .sum();
        let main = MainArea::restore(dev, data.main);
        let fs = FileSystem {
            meta,
            node_fanout: config.node_fanout,
            reserved_zones: config.reserved_zones,
            min_free_zones: config.min_free_zones,
            dirty_flush_threshold: config.dirty_node_flush_threshold.max(1),
            checkpoint_interval: config.checkpoint_interval_blocks,
            inner: Mutex::new(Inner {
                main,
                files,
                names,
                next_ino: data.next_ino,
                dirty_nodes: BTreeSet::new(),
                data_since_ckpt: 0,
                live_data_blocks,
                stats: FsStatsSnapshot::default(),
            }),
        };
        Ok((fs, t))
    }

    /// User-visible capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        let zones = inner.main.zones() as u64;
        let usable = zones.saturating_sub(self.reserved_zones as u64);
        usable * inner.main.blocks_per_zone() * BLOCK_SIZE as u64
    }

    /// Filesystem statistics.
    pub fn stats(&self) -> FsStatsSnapshot {
        self.inner.lock().stats
    }

    /// The zoned main device (for device-level WA accounting).
    pub fn device(&self) -> Arc<ZnsDevice> {
        self.inner.lock().main.device().clone()
    }

    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] for duplicate names.
    pub fn create(&self, name: &str, _now: Nanos) -> Result<Ino, FsError> {
        let mut inner = self.inner.lock();
        if inner.names.contains_key(name) {
            return Err(FsError::Exists { name: name.into() });
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        inner.names.insert(name.to_string(), ino);
        inner.files.insert(
            ino,
            File {
                name: name.to_string(),
                size: 0,
                ptrs: Vec::new(),
                nodes: Vec::new(),
            },
        );
        Ok(Ino(ino))
    }

    /// Looks up a file by name.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn open(&self, name: &str) -> Result<Ino, FsError> {
        self.inner
            .lock()
            .names
            .get(name)
            .map(|&i| Ino(i))
            .ok_or_else(|| FsError::NotFound { what: name.into() })
    }

    /// File size in bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn size(&self, ino: Ino) -> Result<u64, FsError> {
        let inner = self.inner.lock();
        inner
            .files
            .get(&ino.0)
            .map(|f| f.size)
            .ok_or_else(|| FsError::NotFound {
                what: ino.to_string(),
            })
    }

    /// Removes a file, invalidating all its blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn remove(&self, name: &str, _now: Nanos) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        let ino = inner
            .names
            .remove(name)
            .ok_or_else(|| FsError::NotFound { what: name.into() })?;
        let file = inner.files.remove(&ino).expect("name table had the ino");
        for mba in file.ptrs.into_iter().flatten() {
            inner.main.invalidate(mba);
            inner.live_data_blocks -= 1;
        }
        for node in file.nodes {
            if let Some(mba) = node.addr {
                inner.main.invalidate(mba);
            }
        }
        inner.dirty_nodes.retain(|&(i, _)| i != ino);
        Ok(())
    }

    fn user_block_limit(&self, inner: &Inner) -> u64 {
        let usable = inner.main.zones() as u64 - self.reserved_zones as u64;
        usable * inner.main.blocks_per_zone()
    }

    /// Serializes one node block's pointer window into a 4 KiB buffer.
    fn node_payload(&self, file: &File, node_idx: u32) -> Vec<u8> {
        let mut buf = Vec::with_capacity(BLOCK_SIZE);
        let start = (node_idx as usize) * self.node_fanout as usize;
        for i in start..start + self.node_fanout as usize {
            let v = file
                .ptrs
                .get(i)
                .copied()
                .flatten()
                .map_or(u32::MAX, |m| m.0);
            buf.put_u32_le(v);
        }
        buf.resize(BLOCK_SIZE, 0);
        buf
    }

    /// Writes out one dirty node block; returns its completion time.
    fn flush_node(&self, inner: &mut Inner, ino: u32, node_idx: u32, now: Nanos) -> Result<Nanos, FsError> {
        let payload = {
            let file = inner.files.get(&ino).expect("dirty node of live file");
            self.node_payload(file, node_idx)
        };
        let old = {
            let file = inner.files.get_mut(&ino).expect("checked");
            let slot = &mut file.nodes[node_idx as usize];
            slot.dirty = false;
            slot.addr.take()
        };
        if let Some(old_mba) = old {
            inner.main.invalidate(old_mba);
        }
        let (mba, done) = inner.main.append(
            LogType::Node,
            &payload,
            Owner {
                ino: Ino(ino),
                index: node_idx,
                is_node: true,
            },
            now,
        )?;
        inner
            .files
            .get_mut(&ino)
            .expect("checked")
            .nodes[node_idx as usize]
            .addr = Some(mba);
        inner.stats.node_blocks_written += 1;
        Ok(done)
    }

    /// Flushes every dirty node block.
    fn flush_all_nodes(&self, inner: &mut Inner, now: Nanos) -> Result<Nanos, FsError> {
        let dirty: Vec<(u32, u32)> = inner.dirty_nodes.iter().copied().collect();
        inner.dirty_nodes.clear();
        let mut done = now;
        for (ino, node_idx) in dirty {
            done = done.max(self.flush_node(inner, ino, node_idx, now)?);
        }
        Ok(done)
    }

    /// Cleans one victim zone: migrates live blocks, resets the zone.
    ///
    /// Returns `Ok(None)` when nothing is cleanable.
    fn clean_one(&self, inner: &mut Inner, now: Nanos) -> Result<Option<Nanos>, FsError> {
        let victim = match inner.main.pick_victim() {
            Some(z) => z,
            None => return Ok(None),
        };
        // A victim as full as a whole zone frees nothing; give up rather
        // than thrash. The user-capacity reserve makes this unreachable in
        // normal operation.
        if inner.main.zone_valid(victim) as u64 >= inner.main.blocks_per_zone() {
            return Ok(None);
        }
        let live = inner.main.live_blocks(victim);
        let mut done = now;
        let mut buf = vec![0u8; BLOCK_SIZE];
        for (mba, owner) in live {
            if owner.is_node {
                // Rewrite the node from its authoritative in-memory form.
                inner.main.invalidate(mba);
                let payload = {
                    let file = inner.files.get(&owner.ino.0).expect("live node owner");
                    self.node_payload(file, owner.index)
                };
                let (new_mba, t) = inner.main.append(LogType::Node, &payload, owner, now)?;
                let file = inner.files.get_mut(&owner.ino.0).expect("checked");
                let slot = &mut file.nodes[owner.index as usize];
                debug_assert_eq!(slot.addr, Some(mba), "summary/node table skew");
                slot.addr = Some(new_mba);
                slot.dirty = false;
                inner.dirty_nodes.remove(&(owner.ino.0, owner.index));
                inner.stats.gc_node_moved += 1;
                done = done.max(t);
            } else {
                let t_read = inner.main.read(mba, &mut buf, now)?;
                inner.main.invalidate(mba);
                let (new_mba, t) = inner.main.append(LogType::ColdData, &buf, owner, t_read)?;
                let file = inner.files.get_mut(&owner.ino.0).expect("live data owner");
                debug_assert_eq!(file.ptrs[owner.index as usize], Some(mba));
                file.ptrs[owner.index as usize] = Some(new_mba);
                // The covering node must be rewritten to reference the new
                // location — the metadata cascade of filesystem GC.
                let node_idx = owner.index / self.node_fanout;
                if !file.nodes[node_idx as usize].dirty {
                    file.nodes[node_idx as usize].dirty = true;
                    inner.dirty_nodes.insert((owner.ino.0, node_idx));
                }
                inner.stats.gc_data_moved += 1;
                done = done.max(t);
            }
        }
        let t = inner.main.reset_zone(victim, done)?;
        inner.stats.zones_cleaned += 1;
        Ok(Some(t))
    }

    /// Runs foreground cleaning until the free-zone floor is met.
    fn ensure_free_zones(&self, inner: &mut Inner, now: Nanos) -> Result<Nanos, FsError> {
        let mut done = now;
        while inner.main.free_zones() < self.min_free_zones {
            match self.clean_one(inner, done)? {
                Some(t) => done = t,
                None => break,
            }
        }
        Ok(done)
    }

    /// Writes `data` at `offset`; both must be 4 KiB-aligned.
    ///
    /// Returns the completion time of the slowest block.
    ///
    /// # Errors
    ///
    /// [`FsError::Misaligned`], [`FsError::NotFound`], [`FsError::NoSpace`].
    pub fn pwrite(&self, ino: Ino, offset: u64, data: &[u8], now: Nanos) -> Result<Nanos, FsError> {
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Misaligned { value: offset });
        }
        if data.is_empty() || !data.len().is_multiple_of(BLOCK_SIZE) {
            return Err(FsError::Misaligned {
                value: data.len() as u64,
            });
        }
        let mut inner = self.inner.lock();
        if !inner.files.contains_key(&ino.0) {
            return Err(FsError::NotFound {
                what: ino.to_string(),
            });
        }
        let nblocks = (data.len() / BLOCK_SIZE) as u64;
        let first_fbi = offset / BLOCK_SIZE as u64;
        let limit = self.user_block_limit(&inner);

        let mut done = now;
        for i in 0..nblocks {
            let fbi = (first_fbi + i) as usize;
            // Grow pointer/node tables as needed.
            {
                let fanout = self.node_fanout as usize;
                let file = inner.files.get_mut(&ino.0).expect("checked");
                if file.ptrs.len() <= fbi {
                    file.ptrs.resize(fbi + 1, None);
                }
                let nodes_needed = fbi / fanout + 1;
                if file.nodes.len() < nodes_needed {
                    file.nodes.resize(
                        nodes_needed,
                        NodeSlot {
                            addr: None,
                            dirty: false,
                        },
                    );
                }
            }
            let is_new = inner.files[&ino.0].ptrs[fbi].is_none();
            if is_new && inner.live_data_blocks >= limit {
                return Err(FsError::NoSpace);
            }
            let t0 = self.ensure_free_zones(&mut inner, now)?;
            let chunk = &data[(i as usize) * BLOCK_SIZE..(i as usize + 1) * BLOCK_SIZE];
            let (mba, t) = inner.main.append(
                LogType::HotData,
                chunk,
                Owner {
                    ino,
                    index: fbi as u32,
                    is_node: false,
                },
                t0,
            )?;
            let node_idx = (fbi as u32) / self.node_fanout;
            let old = {
                let file = inner.files.get_mut(&ino.0).expect("checked");
                let old = file.ptrs[fbi].replace(mba);
                if !file.nodes[node_idx as usize].dirty {
                    file.nodes[node_idx as usize].dirty = true;
                }
                let end = (fbi as u64 + 1) * BLOCK_SIZE as u64;
                if end > file.size {
                    file.size = end;
                }
                old
            };
            inner.dirty_nodes.insert((ino.0, node_idx));
            if let Some(old_mba) = old {
                inner.main.invalidate(old_mba);
            } else {
                inner.live_data_blocks += 1;
            }
            inner.stats.data_blocks_written += 1;
            inner.data_since_ckpt += 1;
            done = done.max(t);

            if inner.dirty_nodes.len() as u32 >= self.dirty_flush_threshold {
                done = done.max(self.flush_all_nodes(&mut inner, done)?);
            }
        }
        if self.checkpoint_interval > 0 && inner.data_since_ckpt >= self.checkpoint_interval {
            done = done.max(self.checkpoint_locked(&mut inner, done)?);
        }
        Ok(done)
    }

    /// Reads into `buf` from `offset`; both must be 4 KiB-aligned.
    ///
    /// Holes read as zeros.
    ///
    /// # Errors
    ///
    /// [`FsError::Misaligned`], [`FsError::NotFound`],
    /// [`FsError::BeyondEof`].
    pub fn pread(
        &self,
        ino: Ino,
        offset: u64,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, FsError> {
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Misaligned { value: offset });
        }
        if buf.is_empty() || !buf.len().is_multiple_of(BLOCK_SIZE) {
            return Err(FsError::Misaligned {
                value: buf.len() as u64,
            });
        }
        let inner = self.inner.lock();
        let file = inner.files.get(&ino.0).ok_or_else(|| FsError::NotFound {
            what: ino.to_string(),
        })?;
        if offset + buf.len() as u64 > file.size {
            return Err(FsError::BeyondEof {
                offset,
                size: file.size,
            });
        }
        let first_fbi = offset / BLOCK_SIZE as u64;
        let nblocks = (buf.len() / BLOCK_SIZE) as u64;
        let mut done = now;
        for i in 0..nblocks {
            let fbi = (first_fbi + i) as usize;
            let chunk = &mut buf[(i as usize) * BLOCK_SIZE..(i as usize + 1) * BLOCK_SIZE];
            match file.ptrs.get(fbi).copied().flatten() {
                Some(mba) => done = done.max(inner.main.read(mba, chunk, now)?),
                None => chunk.fill(0),
            }
        }
        Ok(done)
    }

    /// Deallocates (punches a hole in) a 4 KiB-aligned byte range: the
    /// blocks become holes that read zeros, and their storage is
    /// reclaimable by the cleaner without migration. The file size is
    /// unchanged, as with `fallocate(FALLOC_FL_PUNCH_HOLE)`.
    ///
    /// # Errors
    ///
    /// [`FsError::Misaligned`], [`FsError::NotFound`].
    pub fn punch_hole(
        &self,
        ino: Ino,
        offset: u64,
        len: u64,
        _now: Nanos,
    ) -> Result<(), FsError> {
        if !offset.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Misaligned { value: offset });
        }
        if len == 0 || !len.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Misaligned { value: len });
        }
        let mut inner = self.inner.lock();
        if !inner.files.contains_key(&ino.0) {
            return Err(FsError::NotFound {
                what: ino.to_string(),
            });
        }
        let first = offset / BLOCK_SIZE as u64;
        let nblocks = len / BLOCK_SIZE as u64;
        for fbi in first..first + nblocks {
            let (old, node_idx) = {
                let file = inner.files.get_mut(&ino.0).expect("checked");
                if fbi as usize >= file.ptrs.len() {
                    break;
                }
                let old = file.ptrs[fbi as usize].take();
                let node_idx = (fbi as u32) / self.node_fanout;
                if old.is_some() && !file.nodes[node_idx as usize].dirty {
                    file.nodes[node_idx as usize].dirty = true;
                }
                (old, node_idx)
            };
            if let Some(mba) = old {
                inner.main.invalidate(mba);
                inner.live_data_blocks -= 1;
                inner.dirty_nodes.insert((ino.0, node_idx));
            }
        }
        Ok(())
    }

    /// Free user-visible space in bytes (a `statfs`-style figure).
    pub fn free_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        let usable = inner.main.zones() as u64 - self.reserved_zones as u64;
        let limit = usable * inner.main.blocks_per_zone();
        limit.saturating_sub(inner.live_data_blocks) * BLOCK_SIZE as u64
    }

    /// Makes a file's pointer tree durable (flushes its dirty nodes).
    ///
    /// Full durability of f2fs-lite is checkpoint-granular; fsync bounds
    /// the node-flush backlog like F2FS's node writeback.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn fsync(&self, ino: Ino, now: Nanos) -> Result<Nanos, FsError> {
        let mut inner = self.inner.lock();
        if !inner.files.contains_key(&ino.0) {
            return Err(FsError::NotFound {
                what: ino.to_string(),
            });
        }
        let dirty: Vec<(u32, u32)> = inner
            .dirty_nodes
            .iter()
            .copied()
            .filter(|&(i, _)| i == ino.0)
            .collect();
        let mut done = now;
        for (i, n) in dirty {
            inner.dirty_nodes.remove(&(i, n));
            done = done.max(self.flush_node(&mut inner, i, n, now)?);
        }
        Ok(done)
    }

    fn checkpoint_locked(&self, inner: &mut Inner, now: Nanos) -> Result<Nanos, FsError> {
        let t = self.flush_all_nodes(inner, now)?;
        let files = inner
            .files
            .iter()
            .map(|(&ino, f)| FileRecord {
                name: f.name.clone(),
                ino: Ino(ino),
                size: f.size,
                ptrs: f.ptrs.clone(),
                nodes: f.nodes.iter().map(|n| n.addr).collect(),
            })
            .collect();
        let data = CheckpointData {
            next_ino: inner.next_ino,
            files,
            main: inner.main.snapshot(),
        };
        let payload = checkpoint::encode(&data);
        let done = checkpoint::write_checkpoint(&self.meta, &payload, t)?;
        inner.stats.checkpoints += 1;
        inner.data_since_ckpt = 0;
        Ok(done)
    }

    /// Writes a checkpoint: flushes dirty nodes, persists all tables to the
    /// metadata device.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] if the metadata device is too small.
    pub fn checkpoint(&self, now: Nanos) -> Result<Nanos, FsError> {
        let mut inner = self.inner.lock();
        self.checkpoint_locked(&mut inner, now)
    }

    /// Free zones currently available (diagnostic).
    pub fn free_zones(&self) -> u32 {
        self.inner.lock().main.free_zones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FileSystem {
        FileSystem::format(FsConfig::small_test())
    }

    fn bytes(nblocks: usize, fill: u8) -> Vec<u8> {
        vec![fill; nblocks * BLOCK_SIZE]
    }

    #[test]
    fn create_open_write_read() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        assert_eq!(fs.open("a").unwrap(), ino);
        let t = fs.pwrite(ino, 0, &bytes(3, 0x11), Nanos::ZERO).unwrap();
        assert_eq!(fs.size(ino).unwrap(), 3 * BLOCK_SIZE as u64);
        let mut out = bytes(3, 0);
        fs.pread(ino, 0, &mut out, t).unwrap();
        assert!(out.iter().all(|&b| b == 0x11));
    }

    #[test]
    fn duplicate_create_rejected() {
        let fs = fs();
        fs.create("a", Nanos::ZERO).unwrap();
        assert!(matches!(
            fs.create("a", Nanos::ZERO),
            Err(FsError::Exists { .. })
        ));
        assert!(matches!(fs.open("b"), Err(FsError::NotFound { .. })));
    }

    #[test]
    fn overwrite_returns_latest_data_and_logs_new_blocks() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let t1 = fs.pwrite(ino, 0, &bytes(1, 1), Nanos::ZERO).unwrap();
        let t2 = fs.pwrite(ino, 0, &bytes(1, 2), t1).unwrap();
        let mut out = bytes(1, 0);
        fs.pread(ino, 0, &mut out, t2).unwrap();
        assert!(out.iter().all(|&b| b == 2));
        assert_eq!(fs.stats().data_blocks_written, 2);
    }

    #[test]
    fn holes_read_zero() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        // Write block 2 only; blocks 0–1 are holes.
        let t = fs
            .pwrite(ino, 2 * BLOCK_SIZE as u64, &bytes(1, 7), Nanos::ZERO)
            .unwrap();
        let mut out = bytes(3, 9);
        fs.pread(ino, 0, &mut out, t).unwrap();
        assert!(out[..2 * BLOCK_SIZE].iter().all(|&b| b == 0));
        assert!(out[2 * BLOCK_SIZE..].iter().all(|&b| b == 7));
    }

    #[test]
    fn misalignment_rejected() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        assert!(matches!(
            fs.pwrite(ino, 100, &bytes(1, 0), Nanos::ZERO),
            Err(FsError::Misaligned { value: 100 })
        ));
        assert!(fs.pwrite(ino, 0, &[0u8; 100], Nanos::ZERO).is_err());
        let mut buf = [0u8; 100];
        assert!(fs.pread(ino, 0, &mut buf, Nanos::ZERO).is_err());
    }

    #[test]
    fn read_beyond_eof_rejected() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        fs.pwrite(ino, 0, &bytes(1, 1), Nanos::ZERO).unwrap();
        let mut out = bytes(2, 0);
        assert!(matches!(
            fs.pread(ino, 0, &mut out, Nanos::ZERO),
            Err(FsError::BeyondEof { .. })
        ));
    }

    #[test]
    fn node_blocks_are_written_for_pointer_churn() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        // Enough writes to cross the dirty-node threshold (4).
        let mut t = Nanos::ZERO;
        for i in 0..40u64 {
            t = fs
                .pwrite(ino, (i % 40) * BLOCK_SIZE as u64, &bytes(1, i as u8), t)
                .unwrap();
        }
        assert!(fs.stats().node_blocks_written > 0, "no node churn recorded");
    }

    #[test]
    fn overwrite_churn_triggers_cleaning_and_stays_correct() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        // User capacity is (16-3)*32 = 416 blocks; work over 320 blocks and
        // overwrite heavily so zones fill and the cleaner must run.
        let span = 320u64;
        let mut t = Nanos::ZERO;
        for round in 0..6u64 {
            for b in 0..span {
                let fill = (round * span + b) as u8;
                t = fs
                    .pwrite(ino, b * BLOCK_SIZE as u64, &bytes(1, fill), t)
                    .unwrap();
            }
        }
        let s = fs.stats();
        assert!(s.zones_cleaned > 0, "cleaner never ran: {s:?}");
        assert!(s.write_amplification() > 1.0);
        // Every block reads back its final round value.
        for b in (0..span).step_by(17) {
            let mut out = bytes(1, 0);
            fs.pread(ino, b * BLOCK_SIZE as u64, &mut out, t).unwrap();
            let expect = (5 * span + b) as u8;
            assert!(out.iter().all(|&x| x == expect), "block {b} corrupt");
        }
    }

    #[test]
    fn capacity_limit_enforced() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let limit_blocks = 416u64; // (16 - 3 reserved) * 32
        let mut t = Nanos::ZERO;
        let mut wrote = 0u64;
        for b in 0..limit_blocks + 8 {
            match fs.pwrite(ino, b * BLOCK_SIZE as u64, &bytes(1, 1), t) {
                Ok(t2) => {
                    t = t2;
                    wrote += 1;
                }
                Err(FsError::NoSpace) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(wrote < limit_blocks + 8, "NoSpace never surfaced");
        // Node blocks share the capacity pool (~1 per fanout=8 data
        // blocks), so NoSpace fires somewhat below the data-only limit.
        assert!(
            wrote >= limit_blocks - limit_blocks / 8 - 16,
            "gave up far too early: {wrote}"
        );
    }

    #[test]
    fn remove_reclaims_space() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let t = fs.pwrite(ino, 0, &bytes(8, 1), Nanos::ZERO).unwrap();
        fs.remove("a", t).unwrap();
        assert!(matches!(fs.open("a"), Err(FsError::NotFound { .. })));
        // All space is reclaimable: a new file can use the full budget.
        let ino2 = fs.create("b", t).unwrap();
        let mut t2 = t;
        for b in 0..100u64 {
            t2 = fs.pwrite(ino2, b * BLOCK_SIZE as u64, &bytes(1, 2), t2).unwrap();
        }
    }

    #[test]
    fn fsync_flushes_only_that_files_nodes() {
        let fs = fs();
        let a = fs.create("a", Nanos::ZERO).unwrap();
        let b = fs.create("b", Nanos::ZERO).unwrap();
        fs.pwrite(a, 0, &bytes(1, 1), Nanos::ZERO).unwrap();
        fs.pwrite(b, 0, &bytes(1, 1), Nanos::ZERO).unwrap();
        let before = fs.stats().node_blocks_written;
        fs.fsync(a, Nanos::ZERO).unwrap();
        let after = fs.stats().node_blocks_written;
        assert_eq!(after - before, 1, "exactly a's one dirty node flushes");
    }

    #[test]
    fn checkpoint_mount_recovers_files() {
        let config = FsConfig::small_test();
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        let fs1 = FileSystem::format_on(dev.clone(), meta.clone(), &config);
        let ino = fs1.create("persist", Nanos::ZERO).unwrap();
        let t = fs1.pwrite(ino, 0, &bytes(5, 0xee), Nanos::ZERO).unwrap();
        let t = fs1.checkpoint(t).unwrap();
        drop(fs1); // crash after checkpoint

        let (fs2, t) = FileSystem::mount(dev, meta, &config, t).unwrap();
        let ino2 = fs2.open("persist").unwrap();
        assert_eq!(fs2.size(ino2).unwrap(), 5 * BLOCK_SIZE as u64);
        let mut out = bytes(5, 0);
        fs2.pread(ino2, 0, &mut out, t).unwrap();
        assert!(out.iter().all(|&x| x == 0xee));
        // And the recovered fs keeps working.
        let t = fs2.pwrite(ino2, 0, &bytes(1, 0xdd), t).unwrap();
        let mut out = bytes(1, 0);
        fs2.pread(ino2, 0, &mut out, t).unwrap();
        assert!(out.iter().all(|&x| x == 0xdd));
    }

    #[test]
    fn mount_restores_live_data_accounting() {
        let config = FsConfig::small_test();
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        let fs1 = FileSystem::format_on(dev.clone(), meta.clone(), &config);
        let ino = fs1.create("f", Nanos::ZERO).unwrap();
        let t = fs1.pwrite(ino, 0, &bytes(10, 1), Nanos::ZERO).unwrap();
        let free_before = fs1.free_bytes();
        let t = fs1.checkpoint(t).unwrap();
        drop(fs1);

        let (fs2, _t) = FileSystem::mount(dev, meta, &config, t).unwrap();
        // The quota must reflect the 10 live blocks, not reset to zero.
        assert_eq!(fs2.free_bytes(), free_before);
    }

    #[test]
    fn mount_without_checkpoint_fails() {
        let config = FsConfig::small_test();
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let meta = Arc::new(RamDisk::new(config.meta_blocks));
        let _fs = FileSystem::format_on(dev.clone(), meta.clone(), &config);
        assert!(matches!(
            FileSystem::mount(dev, meta, &config, Nanos::ZERO),
            Err(FsError::BadSuperblock(_))
        ));
    }

    #[test]
    fn auto_checkpoint_fires_on_interval() {
        let mut config = FsConfig::small_test();
        config.checkpoint_interval_blocks = 10;
        let fs = FileSystem::format(config);
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let mut t = Nanos::ZERO;
        for b in 0..25u64 {
            t = fs.pwrite(ino, b * BLOCK_SIZE as u64, &bytes(1, 1), t).unwrap();
        }
        assert!(fs.stats().checkpoints >= 2);
    }

    #[test]
    fn punch_hole_reads_zero_and_reclaims_space() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        let t = fs.pwrite(ino, 0, &bytes(4, 9), Nanos::ZERO).unwrap();
        let free_before = fs.free_bytes();
        fs.punch_hole(ino, BLOCK_SIZE as u64, 2 * BLOCK_SIZE as u64, t).unwrap();
        // Size is unchanged; the punched blocks read zero.
        assert_eq!(fs.size(ino).unwrap(), 4 * BLOCK_SIZE as u64);
        let mut out = bytes(4, 1);
        fs.pread(ino, 0, &mut out, t).unwrap();
        assert!(out[..BLOCK_SIZE].iter().all(|&b| b == 9));
        assert!(out[BLOCK_SIZE..3 * BLOCK_SIZE].iter().all(|&b| b == 0));
        assert!(out[3 * BLOCK_SIZE..].iter().all(|&b| b == 9));
        assert_eq!(fs.free_bytes(), free_before + 2 * BLOCK_SIZE as u64);
        // Punching a hole twice (or over holes) is harmless.
        fs.punch_hole(ino, 0, 4 * BLOCK_SIZE as u64, t).unwrap();
        fs.punch_hole(ino, 0, 8 * BLOCK_SIZE as u64, t).unwrap();
    }

    #[test]
    fn punch_hole_validates_arguments() {
        let fs = fs();
        let ino = fs.create("a", Nanos::ZERO).unwrap();
        assert!(matches!(
            fs.punch_hole(ino, 3, 4096, Nanos::ZERO),
            Err(FsError::Misaligned { .. })
        ));
        assert!(matches!(
            fs.punch_hole(ino, 0, 0, Nanos::ZERO),
            Err(FsError::Misaligned { .. })
        ));
        assert!(matches!(
            fs.punch_hole(Ino(99), 0, 4096, Nanos::ZERO),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn capacity_bytes_excludes_reserve() {
        let fs = fs();
        assert_eq!(fs.capacity_bytes(), 416 * BLOCK_SIZE as u64);
    }
}
