//! `f2fs-lite`: a log-structured, ZNS-native filesystem.
//!
//! This is the substrate of the paper's **File-Cache** scheme (§3.1): the
//! cache engine stores its regions in one large pre-allocated file and the
//! filesystem owns every low-level concern — zone allocation, cleaning,
//! block indexing. The paper's point is that this convenience has a price,
//! and `f2fs-lite` reproduces each cost mechanism of a real F2FS-on-ZNS
//! deployment:
//!
//! * **Multi-head logging** — data writes append to a hot log, GC
//!   migrations to a cold log, and node (pointer-tree) blocks to a node
//!   log, each owning its own open zone ([`alloc`]).
//! * **Block indexing** — every 4 KiB of file data has a pointer in a node
//!   block; pointer updates dirty node blocks which are themselves logged,
//!   so file overwrites carry metadata write amplification ([`fs`]).
//! * **Segment/section cleaning** — when free zones run low the cleaner
//!   picks the zone with the fewest valid blocks, migrates live data to the
//!   cold log (cascading node updates), and resets the zone. This is the
//!   filesystem-level GC whose overhead Table 1 of the paper quantifies.
//! * **Over-provisioning** — a configurable share of zones is reserved for
//!   cleaning and invisible to `statfs`, mirroring F2FS's ~20% reservation
//!   the paper calls out.
//! * **Checkpointing** — NAT/SIT/file tables are serialized to a separate
//!   conventional metadata device (the paper's `nullblk` disk) with an A/B
//!   slot scheme; [`FileSystem::mount`] recovers from the latest slot.
//!
//! # Example
//!
//! ```
//! use f2fs_lite::{FileSystem, FsConfig};
//! use sim::Nanos;
//!
//! let fs = FileSystem::format(FsConfig::small_test());
//! let ino = fs.create("cachefile", Nanos::ZERO).unwrap();
//! let data = vec![0x5au8; 8192];
//! let t = fs.pwrite(ino, 0, &data, Nanos::ZERO).unwrap();
//! let mut out = vec![0u8; 8192];
//! fs.pread(ino, 0, &mut out, t).unwrap();
//! assert_eq!(out, data);
//! ```

pub mod alloc;
pub mod checkpoint;
pub mod fs;
pub mod types;

pub use fs::{FileSystem, FsConfig, FsStatsSnapshot};
pub use types::{FsError, Ino, LogType, Mba};
