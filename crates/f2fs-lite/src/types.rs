//! Core identifiers and the filesystem error type.

use core::fmt;

use serde::{Deserialize, Serialize};

/// An inode number. `f2fs-lite` has a flat namespace: one directory of
/// files, which is all a cache workload needs.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Ino(pub u32);

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

/// A main-area block address: a 4 KiB block index within the filesystem's
/// main (data + node) area on the zoned device.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Mba(pub u32);

/// The write heads (logs) of the filesystem, in the spirit of F2FS's
/// multi-head logging. Each log appends into its own open zone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogType {
    /// Fresh application data.
    HotData,
    /// Data migrated by the cleaner (presumed colder).
    ColdData,
    /// Node blocks: the pointer tree.
    Node,
}

impl LogType {
    /// All logs, in a stable order.
    pub const ALL: [LogType; 3] = [LogType::HotData, LogType::ColdData, LogType::Node];
}

/// Errors returned by the filesystem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// A file with this name already exists.
    Exists {
        /// Offending name.
        name: String,
    },
    /// No file with this name or inode.
    NotFound {
        /// What was looked up.
        what: String,
    },
    /// Offset or length not 4 KiB-aligned.
    Misaligned {
        /// Offending value.
        value: u64,
    },
    /// The filesystem's user-visible space is exhausted.
    NoSpace,
    /// Read past the end of a file.
    BeyondEof {
        /// Attempted offset (bytes).
        offset: u64,
        /// File size (bytes).
        size: u64,
    },
    /// The metadata device contains no valid filesystem.
    BadSuperblock(String),
    /// A zone degraded to read-only or offline underneath the filesystem.
    /// Unlike [`FsError::Device`] this is a media condition, not a bug:
    /// the allocator and cleaner route around dead zones, and reads of
    /// blocks stranded on offline media surface this error.
    DeadZone {
        /// The degraded zone.
        zone: zns::ZoneId,
    },
    /// An error from the zoned device; indicates a bug in this crate.
    Device(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Exists { name } => write!(f, "file '{name}' already exists"),
            FsError::NotFound { what } => write!(f, "'{what}' not found"),
            FsError::Misaligned { value } => {
                write!(f, "offset/length {value} is not 4096-aligned")
            }
            FsError::NoSpace => f.write_str("filesystem out of space"),
            FsError::BeyondEof { offset, size } => {
                write!(f, "read at {offset} beyond end of {size}-byte file")
            }
            FsError::BadSuperblock(msg) => write!(f, "bad superblock: {msg}"),
            FsError::DeadZone { zone } => write!(f, "{zone} degraded under the filesystem"),
            FsError::Device(msg) => write!(f, "device error: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<zns::ZnsError> for FsError {
    fn from(err: zns::ZnsError) -> Self {
        match err {
            zns::ZnsError::ZoneDegraded { zone, .. } => FsError::DeadZone { zone },
            other => FsError::Device(other.to_string()),
        }
    }
}

impl From<sim::IoError> for FsError {
    fn from(err: sim::IoError) -> Self {
        FsError::Device(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Ino(3).to_string(), "ino:3");
        assert!(FsError::NoSpace.to_string().contains("space"));
        assert!(FsError::Misaligned { value: 17 }.to_string().contains("17"));
    }

    #[test]
    fn log_list_is_exhaustive() {
        assert_eq!(LogType::ALL.len(), 3);
    }

    #[test]
    fn conversions_preserve_message() {
        let zerr = zns::ZnsError::NoSuchZone { zone: 5, zones: 4 };
        let f: FsError = zerr.into();
        assert!(f.to_string().contains('5'));
    }
}
