//! Hard disk drive latency model.
//!
//! The paper's end-to-end evaluation (Fig. 5, Table 2) stores the RocksDB
//! LSM tree on a Seagate ST6000NM0115 HDD, making the database acutely
//! sensitive to the secondary cache's hit ratio — every cache miss pays a
//! mechanical seek. This crate models that mechanism:
//!
//! * **Seek** — settle time plus a distance-dependent term (square-root
//!   profile, the classic arm-acceleration model),
//! * **Rotation** — half a revolution on average after a seek,
//! * **Transfer** — media rate for the bytes moved,
//! * **Sequential detection** — I/O contiguous with the previous request
//!   skips seek and rotation entirely, so compaction-style streaming is
//!   cheap while random point reads are expensive.
//!
//! A single head serializes all requests, queueing behind `busy_until`.
//!
//! # Example
//!
//! ```
//! use hdd::{Hdd, HddConfig};
//! use sim::{BlockDevice, Lba, Nanos, BLOCK_SIZE};
//!
//! let disk = Hdd::new(HddConfig::small_test());
//! let data = vec![1u8; BLOCK_SIZE];
//! let t1 = disk.write(Lba(0), &data, Nanos::ZERO).unwrap();
//! // Sequential follow-up is far cheaper than a random jump.
//! let t2 = disk.write(Lba(1), &data, t1).unwrap();
//! let t3 = disk.write(Lba(3000), &data, t2).unwrap();
//! assert!((t3 - t2) > (t2 - t1));
//! ```

use core::fmt;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim::{BlockDevice, Counter, IoResult, Lba, Nanos, BLOCK_SIZE};

/// Configuration for an [`Hdd`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HddConfig {
    /// Capacity in 4 KiB blocks.
    pub blocks: u64,
    /// Arm settle time added to every non-sequential access.
    pub settle: Nanos,
    /// Full-stroke seek time (distance = whole disk).
    pub full_stroke_seek: Nanos,
    /// Average rotational delay (half a revolution).
    pub half_rotation: Nanos,
    /// Transfer time per 4 KiB block.
    pub transfer_per_block: Nanos,
    /// Whether to keep payload bytes in memory. Metadata-only mode reads
    /// zeros, for experiments whose datasets exceed host DRAM.
    pub store_payloads: bool,
}

impl HddConfig {
    /// A 7200 RPM enterprise-drive profile at a given capacity.
    pub fn enterprise_7200rpm(blocks: u64) -> Self {
        HddConfig {
            blocks,
            settle: Nanos::from_micros(500),
            full_stroke_seek: Nanos::from_millis(8),
            half_rotation: Nanos::from_micros(4167),
            transfer_per_block: Nanos::from_micros(22),
            store_payloads: true,
        }
    }

    /// Small, fast-seeking disk for unit tests.
    pub fn small_test() -> Self {
        HddConfig {
            blocks: 4096,
            settle: Nanos::from_micros(50),
            full_stroke_seek: Nanos::from_micros(800),
            half_rotation: Nanos::from_micros(400),
            transfer_per_block: Nanos::from_micros(2),
            store_payloads: true,
        }
    }
}

/// Point-in-time HDD statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HddStatsSnapshot {
    /// Blocks read.
    pub blocks_read: u64,
    /// Blocks written.
    pub blocks_written: u64,
    /// Requests that paid a seek (non-sequential).
    pub seeks: u64,
    /// Requests served sequentially.
    pub sequential: u64,
}

struct HddState {
    head: u64,
    busy_until: Nanos,
    data: Vec<u8>,
}

/// A single-actuator hard disk implementing [`BlockDevice`].
pub struct Hdd {
    config: HddConfig,
    state: Mutex<HddState>,
    blocks_read: Counter,
    blocks_written: Counter,
    seeks: Counter,
    sequential: Counter,
}

impl fmt::Debug for Hdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hdd")
            .field("blocks", &self.config.blocks)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Hdd {
    /// Builds the disk.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    pub fn new(config: HddConfig) -> Self {
        assert!(config.blocks > 0, "HDD capacity must be non-zero");
        let bytes = if config.store_payloads {
            (config.blocks as usize) * BLOCK_SIZE
        } else {
            0
        };
        Hdd {
            config,
            state: Mutex::new(HddState {
                head: 0,
                busy_until: Nanos::ZERO,
                data: vec![0u8; bytes],
            }),
            blocks_read: Counter::new(),
            blocks_written: Counter::new(),
            seeks: Counter::new(),
            sequential: Counter::new(),
        }
    }

    /// Device statistics.
    pub fn stats(&self) -> HddStatsSnapshot {
        HddStatsSnapshot {
            blocks_read: self.blocks_read.get(),
            blocks_written: self.blocks_written.get(),
            seeks: self.seeks.get(),
            sequential: self.sequential.get(),
        }
    }

    /// Positioning + transfer cost for a request at `lba` of `nblocks`,
    /// given the head position; updates head and counters.
    fn service(&self, s: &mut HddState, lba: Lba, nblocks: u64, now: Nanos) -> Nanos {
        let start = now.max(s.busy_until);
        let positioning = if lba.0 == s.head {
            self.sequential.incr();
            Nanos::ZERO
        } else {
            self.seeks.incr();
            let dist = lba.0.abs_diff(s.head) as f64 / self.config.blocks as f64;
            let seek =
                Nanos::from_nanos((self.config.full_stroke_seek.as_nanos() as f64 * dist.sqrt()) as u64);
            self.config.settle + seek + self.config.half_rotation
        };
        let transfer = self.config.transfer_per_block * nblocks;
        let done = start + positioning + transfer;
        s.head = lba.0 + nblocks;
        s.busy_until = done;
        done
    }
}

impl BlockDevice for Hdd {
    fn block_count(&self) -> u64 {
        self.config.blocks
    }

    fn read(&self, lba: Lba, buf: &mut [u8], now: Nanos) -> IoResult<Nanos> {
        let n = sim::io::check_request(lba, buf.len(), self.config.blocks)?;
        let mut s = self.state.lock();
        let done = self.service(&mut s, lba, n, now);
        if self.config.store_payloads {
            let start = lba.byte_offset() as usize;
            buf.copy_from_slice(&s.data[start..start + buf.len()]);
        } else {
            buf.fill(0);
        }
        self.blocks_read.add(n);
        Ok(done)
    }

    fn write(&self, lba: Lba, data: &[u8], now: Nanos) -> IoResult<Nanos> {
        let n = sim::io::check_request(lba, data.len(), self.config.blocks)?;
        let mut s = self.state.lock();
        let done = self.service(&mut s, lba, n, now);
        if self.config.store_payloads {
            let start = lba.byte_offset() as usize;
            s.data[start..start + data.len()].copy_from_slice(data);
        }
        self.blocks_written.add(n);
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Hdd {
        Hdd::new(HddConfig::small_test())
    }

    fn buf(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n * BLOCK_SIZE]
    }

    #[test]
    fn write_read_round_trip() {
        let d = disk();
        let t = d.write(Lba(10), &buf(2, 0x7f), Nanos::ZERO).unwrap();
        let mut out = buf(2, 0);
        d.read(Lba(10), &mut out, t).unwrap();
        assert!(out.iter().all(|&b| b == 0x7f));
    }

    #[test]
    fn sequential_io_skips_positioning() {
        let d = disk();
        let data = buf(1, 1);
        let t1 = d.write(Lba(0), &data, Nanos::ZERO).unwrap();
        let t2 = d.write(Lba(1), &data, t1).unwrap();
        assert_eq!(t2 - t1, HddConfig::small_test().transfer_per_block);
        // Both writes were sequential (the head parks at block 0).
        assert_eq!(d.stats().sequential, 2);
    }

    #[test]
    fn longer_seeks_cost_more() {
        let d = disk();
        let data = buf(1, 1);
        let t0 = d.write(Lba(0), &data, Nanos::ZERO).unwrap();
        let near = d.write(Lba(16), &data, t0).unwrap() - t0;
        let d2 = disk();
        let t0 = d2.write(Lba(0), &data, Nanos::ZERO).unwrap();
        let far = d2.write(Lba(4000), &data, t0).unwrap() - t0;
        assert!(far > near, "far {far} should exceed near {near}");
    }

    #[test]
    fn head_serializes_requests() {
        let d = disk();
        let data = buf(1, 1);
        // Issue two ops "at the same time"; the second queues.
        let t1 = d.write(Lba(0), &data, Nanos::ZERO).unwrap();
        let t2 = d.write(Lba(2000), &data, Nanos::ZERO).unwrap();
        assert!(t2 > t1);
    }

    #[test]
    fn metadata_only_mode_reads_zeros() {
        let mut cfg = HddConfig::small_test();
        cfg.store_payloads = false;
        let d = Hdd::new(cfg);
        let t = d.write(Lba(0), &buf(1, 9), Nanos::ZERO).unwrap();
        let mut out = buf(1, 9);
        d.read(Lba(0), &mut out, t).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_rejected() {
        let d = disk();
        assert!(d.write(Lba(4096), &buf(1, 0), Nanos::ZERO).is_err());
    }

    #[test]
    fn stats_track_ops() {
        let d = disk();
        d.write(Lba(0), &buf(4, 1), Nanos::ZERO).unwrap();
        let mut out = buf(4, 0);
        d.read(Lba(0), &mut out, Nanos::ZERO).unwrap();
        let s = d.stats();
        assert_eq!(s.blocks_written, 4);
        assert_eq!(s.blocks_read, 4);
    }
}
