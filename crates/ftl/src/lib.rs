//! Conventional (block-interface) SSD emulator.
//!
//! This is the paper's *regular SSD* baseline (the SN540 paired with the
//! ZN540): a page-mapped flash translation layer over the same NAND array
//! the ZNS device uses. It provides the properties the paper attributes to
//! regular SSDs:
//!
//! * **Over-provisioning** — a configurable fraction of raw capacity is
//!   invisible to the host and absorbs garbage collection churn.
//! * **Device-internal GC** — greedy victim selection, incremental
//!   migration interleaved with host writes, emergency synchronous
//!   collection when space runs out. GC traffic occupies the same dies as
//!   host I/O, which is what produces the *uncontrollable tail latency*
//!   (Fig. 5d) and throughput instability the paper observes.
//! * **Write amplification accounting** — media writes vs host writes,
//!   reported via [`FtlStatsSnapshot::write_amplification`].
//! * **TRIM** — hosts can invalidate ranges without writing.
//!
//! The FTL separates host and GC write frontiers (a standard two-stream
//! layout), so GC-migrated cold data does not re-mix with hot host writes.
//!
//! # Example
//!
//! ```
//! use ftl::{BlockSsd, FtlConfig};
//! use sim::{BlockDevice, Lba, Nanos, BLOCK_SIZE};
//!
//! let ssd = BlockSsd::new(FtlConfig::small_test());
//! let data = vec![0x11u8; BLOCK_SIZE];
//! let done = ssd.write(Lba(0), &data, Nanos::ZERO).unwrap();
//! let mut out = vec![0u8; BLOCK_SIZE];
//! ssd.read(Lba(0), &mut out, done).unwrap();
//! assert_eq!(out, data);
//! ```

use core::fmt;

use nand::{BlockAddr, NandArray, NandConfig, PageAddr};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim::{BlockDevice, Counter, IoError, IoResult, Lba, Nanos, BLOCK_SIZE};
use std::collections::VecDeque;
use std::sync::Arc;

/// Configuration for a [`BlockSsd`].
#[derive(Clone, Debug)]
pub struct FtlConfig {
    /// Underlying flash array.
    pub nand: NandConfig,
    /// Over-provisioning ratio: fraction of raw capacity hidden from the
    /// host. Typical consumer drives ~7%, enterprise 20–28%.
    pub op_ratio: f64,
    /// Background GC starts when free blocks drop below this count.
    pub gc_low_water: u32,
    /// Background GC stops once free blocks recover above this count.
    pub gc_high_water: u32,
    /// Pages migrated per host write while background GC is active. Larger
    /// values keep up with heavier overwrite traffic at the cost of more
    /// foreground interference.
    pub gc_pages_per_host_write: u32,
}

impl FtlConfig {
    /// Tiny device for unit tests (~2 MiB raw, 12.5% OP).
    pub fn small_test() -> Self {
        FtlConfig {
            nand: NandConfig::small_test(),
            op_ratio: 0.125,
            gc_low_water: 6,
            gc_high_water: 10,
            gc_pages_per_host_write: 8,
        }
    }

    /// Default drive shape mirroring [`NandConfig::default_ssd`] with 7% OP.
    pub fn default_ssd() -> Self {
        FtlConfig {
            nand: NandConfig::default_ssd(),
            op_ratio: 0.07,
            gc_low_water: 16,
            gc_high_water: 32,
            gc_pages_per_host_write: 8,
        }
    }
}

/// Point-in-time FTL statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FtlStatsSnapshot {
    /// 4 KiB pages written by the host.
    pub host_pages_written: u64,
    /// 4 KiB pages read by the host.
    pub host_pages_read: u64,
    /// Pages migrated by garbage collection.
    pub gc_pages_moved: u64,
    /// Blocks erased.
    pub blocks_erased: u64,
    /// GC victim blocks collected.
    pub gc_victims: u64,
    /// Bytes physically programmed (host + GC).
    pub media_bytes_written: u64,
}

impl FtlStatsSnapshot {
    /// Device-level write amplification: media writes / host writes.
    pub fn write_amplification(&self) -> f64 {
        sim::stats::write_amplification(
            self.host_pages_written * BLOCK_SIZE as u64,
            self.media_bytes_written,
        )
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockState {
    Free,
    OpenHost,
    OpenGc,
    Full,
}

struct FtlState {
    /// Logical-to-physical map.
    l2p: Vec<Option<PageAddr>>,
    /// Physical-to-logical reverse map (None = invalid/unwritten).
    p2l: Vec<Option<u64>>,
    valid: Vec<u32>,
    state: Vec<BlockState>,
    /// Erased blocks, kept per die so frontier blocks can be spread over
    /// dies (dynamic die interleaving — the "superblock" behaviour of real
    /// drives; without it large host writes would serialize on one die).
    free: Vec<VecDeque<BlockAddr>>,
    /// Open write frontiers. Slots are NOT tied to dies: each holds a
    /// block from whichever die had the most free space, so small devices
    /// are not over-pinned while large ones still stripe fully.
    host_frontiers: Vec<Option<(BlockAddr, u32)>>,
    gc_frontiers: Vec<Option<(BlockAddr, u32)>>,
    host_rr: usize,
    gc_rr: usize,
    /// Victim being drained incrementally: (block, next page index to scan).
    victim: Option<(BlockAddr, u32)>,
}

/// A conventional SSD: page-mapped FTL + internal GC over NAND flash.
///
/// Implements [`BlockDevice`]; see the [crate docs](self) for an example.
pub struct BlockSsd {
    array: Arc<NandArray>,
    logical_blocks: u64,
    pages_per_block: u32,
    blocks_per_die: u64,
    gc_low: u32,
    gc_high: u32,
    gc_quantum: u32,
    /// Free blocks only GC may consume; guarantees migration headroom so
    /// emergency collection can always make progress.
    gc_reserve: u32,
    state: Mutex<FtlState>,
    host_pages_written: Counter,
    host_pages_read: Counter,
    gc_pages_moved: Counter,
    gc_victims: Counter,
}

impl fmt::Debug for BlockSsd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockSsd")
            .field("logical_blocks", &self.logical_blocks)
            .field("stats", &self.stats())
            .finish()
    }
}

impl BlockSsd {
    /// Builds the drive.
    ///
    /// # Panics
    ///
    /// Panics if `op_ratio` is outside `[0.02, 0.9]` or the watermarks are
    /// inconsistent — configuration bugs caught at startup.
    pub fn new(config: FtlConfig) -> Self {
        assert!(
            (0.02..=0.9).contains(&config.op_ratio),
            "op_ratio {} outside [0.02, 0.9]",
            config.op_ratio
        );
        assert!(
            config.gc_low_water < config.gc_high_water,
            "gc_low_water must be below gc_high_water"
        );
        let geometry = config.nand.geometry;
        let array = Arc::new(NandArray::new(config.nand));
        let total_pages = geometry.total_pages();
        let logical_blocks = ((total_pages as f64) * (1.0 - config.op_ratio)).floor() as u64;
        let total_blocks = geometry.total_blocks();
        assert!(
            config.gc_high_water as u64 + 2 < total_blocks,
            "watermarks leave no usable space"
        );
        let dies = geometry.total_dies();
        let blocks_per_die = geometry.blocks_per_die as u64;
        let mut free: Vec<VecDeque<BlockAddr>> = vec![VecDeque::new(); dies as usize];
        for b in 0..total_blocks {
            free[(b / blocks_per_die) as usize].push_back(BlockAddr(b));
        }
        // Frontier widths scale with the device so open blocks never pin
        // a large share of its slack (tiny test devices) while big devices
        // still stripe across every die.
        let host_width = (total_blocks / 8).clamp(1, dies as u64) as usize;
        let gc_width = (host_width / 2).max(1);
        BlockSsd {
            array,
            logical_blocks,
            pages_per_block: geometry.pages_per_block,
            blocks_per_die,
            gc_low: config.gc_low_water,
            gc_high: config.gc_high_water,
            gc_quantum: config.gc_pages_per_host_write.max(1),
            gc_reserve: 2,
            state: Mutex::new(FtlState {
                l2p: vec![None; logical_blocks as usize],
                p2l: vec![None; total_pages as usize],
                valid: vec![0; total_blocks as usize],
                state: vec![BlockState::Free; total_blocks as usize],
                free,
                host_frontiers: vec![None; host_width],
                gc_frontiers: vec![None; gc_width],
                host_rr: 0,
                gc_rr: 0,
                victim: None,
            }),
            host_pages_written: Counter::new(),
            host_pages_read: Counter::new(),
            gc_pages_moved: Counter::new(),
            gc_victims: Counter::new(),
        }
    }

    /// The underlying flash array.
    pub fn nand(&self) -> &NandArray {
        &self.array
    }

    /// Device statistics.
    pub fn stats(&self) -> FtlStatsSnapshot {
        let nand = self.array.stats();
        FtlStatsSnapshot {
            host_pages_written: self.host_pages_written.get(),
            host_pages_read: self.host_pages_read.get(),
            gc_pages_moved: self.gc_pages_moved.get(),
            blocks_erased: nand.blocks_erased,
            gc_victims: self.gc_victims.get(),
            media_bytes_written: nand.bytes_programmed(),
        }
    }

    /// Fraction of logical space currently mapped.
    pub fn utilization(&self) -> f64 {
        let s = self.state.lock();
        let mapped = s.l2p.iter().filter(|m| m.is_some()).count();
        mapped as f64 / s.l2p.len().max(1) as f64
    }

    /// Free (erased) blocks available for allocation.
    pub fn free_blocks(&self) -> u32 {
        self.state.lock().free.iter().map(VecDeque::len).sum::<usize>() as u32
    }

    /// Allocates the next physical page, round-robining over the write
    /// frontier slots so consecutive pages land on different dies and
    /// program in parallel.
    fn alloc_page(&self, s: &mut FtlState, for_gc: bool) -> IoResult<PageAddr> {
        let width = if for_gc {
            s.gc_frontiers.len()
        } else {
            s.host_frontiers.len()
        };
        let rr_start = if for_gc { s.gc_rr } else { s.host_rr };
        for i in 0..width {
            let slot = (rr_start + i) % width;
            let frontier = if for_gc {
                &mut s.gc_frontiers[slot]
            } else {
                &mut s.host_frontiers[slot]
            };
            // Retire an exhausted frontier block.
            if let Some((block, next)) = frontier {
                if *next >= self.pages_per_block {
                    let block = *block;
                    *frontier = None;
                    s.state[block.0 as usize] = BlockState::Full;
                }
            }
            let needs_block = if for_gc {
                s.gc_frontiers[slot].is_none()
            } else {
                s.host_frontiers[slot].is_none()
            };
            if needs_block {
                // Host allocations may not raid the GC reserve.
                let total_free: usize = s.free.iter().map(VecDeque::len).sum();
                if !for_gc && total_free <= self.gc_reserve as usize {
                    continue;
                }
                // Take from the die with the most free blocks, spreading
                // frontier blocks across dies for parallelism.
                let Some(die) = (0..s.free.len()).max_by_key(|&d| s.free[d].len()) else {
                    continue;
                };
                let Some(block) = s.free[die].pop_front() else {
                    continue; // no free block anywhere
                };
                s.state[block.0 as usize] = if for_gc {
                    BlockState::OpenGc
                } else {
                    BlockState::OpenHost
                };
                let frontier = if for_gc {
                    &mut s.gc_frontiers[slot]
                } else {
                    &mut s.host_frontiers[slot]
                };
                *frontier = Some((block, 0));
            }
            let frontier = if for_gc {
                &mut s.gc_frontiers[slot]
            } else {
                &mut s.host_frontiers[slot]
            };
            let (block, next) = frontier.as_mut().expect("frontier just ensured");
            let page = PageAddr(block.0 * self.pages_per_block as u64 + *next as u64);
            *next += 1;
            if for_gc {
                s.gc_rr = (slot + 1) % width;
            } else {
                s.host_rr = (slot + 1) % width;
            }
            return Ok(page);
        }
        Err(IoError::NoSpace)
    }

    fn pick_victim(&self, s: &FtlState) -> Option<BlockAddr> {
        // Greedy: the Full block with the fewest valid pages.
        let mut best: Option<(u32, BlockAddr)> = None;
        for (i, st) in s.state.iter().enumerate() {
            if *st == BlockState::Full {
                let v = s.valid[i];
                if best.is_none_or(|(bv, _)| v < bv) {
                    best = Some((v, BlockAddr(i as u64)));
                    if v == 0 {
                        break;
                    }
                }
            }
        }
        best.map(|(_, b)| b)
    }

    /// Runs up to `budget` pages of GC migration at time `now`.
    ///
    /// Returns the number of pages migrated. GC I/O is scheduled on the
    /// dies immediately, so it delays any foreground I/O that lands on the
    /// same die afterwards — the tail-latency mechanism of regular SSDs.
    fn gc_step(&self, s: &mut FtlState, mut budget: u32, now: Nanos) -> IoResult<u32> {
        let mut moved = 0;
        while budget > 0 {
            let (victim, mut scan) = match s.victim.take() {
                Some(v) => v,
                None => match self.pick_victim(s) {
                    Some(b) => {
                        self.gc_victims.incr();
                        (b, 0)
                    }
                    None => break,
                },
            };
            let mut page_buf = vec![0u8; BLOCK_SIZE];
            while scan < self.pages_per_block && budget > 0 {
                let page = PageAddr(victim.0 * self.pages_per_block as u64 + scan as u64);
                if let Some(lba) = s.p2l[page.0 as usize] {
                    // Migrate this valid page.
                    self.array
                        .read_page(page, &mut page_buf, now)
                        .map_err(|e| IoError::Device(e.to_string()))?;
                    let dst = self.alloc_page(s, true)?;
                    self.array
                        .program_page(dst, &page_buf, now)
                        .map_err(|e| IoError::Device(e.to_string()))?;
                    s.p2l[page.0 as usize] = None;
                    s.valid[victim.0 as usize] -= 1;
                    s.p2l[dst.0 as usize] = Some(lba);
                    s.l2p[lba as usize] = Some(dst);
                    let dst_block = dst.0 / self.pages_per_block as u64;
                    s.valid[dst_block as usize] += 1;
                    self.gc_pages_moved.incr();
                    moved += 1;
                    budget -= 1;
                }
                scan += 1;
            }
            if scan < self.pages_per_block {
                // Budget exhausted mid-victim; resume next step.
                s.victim = Some((victim, scan));
                return Ok(moved);
            }
            debug_assert_eq!(s.valid[victim.0 as usize], 0);
            self.array
                .erase_block(victim, now)
                .map_err(|e| IoError::Device(e.to_string()))?;
            s.state[victim.0 as usize] = BlockState::Free;
            let die = (victim.0 / self.blocks_per_die) as usize;
            s.free[die].push_back(victim);
            let total_free: usize = s.free.iter().map(VecDeque::len).sum();
            if total_free as u32 >= self.gc_high {
                break;
            }
        }
        Ok(moved)
    }

    /// Seals every open write-frontier block as Full so its already-dead
    /// pages become collectable. Needed to break a GC deadlock: when all
    /// invalid pages sit in partially-written frontier blocks, every Full
    /// block is 100% valid and collection makes no net progress.
    fn close_frontiers(&self, s: &mut FtlState) {
        for frontier in s.host_frontiers.iter_mut().chain(s.gc_frontiers.iter_mut()) {
            if let Some((block, _)) = frontier.take() {
                s.state[block.0 as usize] = BlockState::Full;
            }
        }
    }

    /// Ensures at least one free block exists, running emergency GC if the
    /// pool is empty.
    fn ensure_space(&self, s: &mut FtlState, now: Nanos) -> IoResult<()> {
        // Background trickle when below low water.
        let total_free = |s: &FtlState| s.free.iter().map(VecDeque::len).sum::<usize>() as u32;
        if total_free(s) < self.gc_low {
            self.gc_step(s, self.gc_quantum, now)?;
        }
        // Emergency: collect whole victims synchronously until the host
        // has a block above the GC reserve. `guard` counts rounds without
        // progress; frontier blocks are sealed once to expose their dead
        // pages, and only if the device is truly out of reclaimable space
        // do we fail.
        let mut guard = 0;
        let floor = self.gc_reserve;
        while total_free(s) <= floor {
            let before = total_free(s);
            self.gc_step(s, self.pages_per_block, now)?;
            if total_free(s) <= before.max(floor) {
                guard += 1;
                if guard == 3 {
                    self.close_frontiers(s);
                } else if guard > 16 {
                    return Err(IoError::NoSpace);
                }
            } else {
                guard = 0;
            }
        }
        Ok(())
    }

    fn write_one(&self, lba: u64, data: &[u8], now: Nanos) -> IoResult<Nanos> {
        let mut s = self.state.lock();
        self.ensure_space(&mut s, now)?;
        // Invalidate the previous version.
        if let Some(old) = s.l2p[lba as usize].take() {
            s.p2l[old.0 as usize] = None;
            let block = old.0 / self.pages_per_block as u64;
            s.valid[block as usize] -= 1;
        }
        let dst = self.alloc_page(&mut s, false)?;
        let done = self
            .array
            .program_page(dst, data, now)
            .map_err(|e| IoError::Device(e.to_string()))?;
        s.l2p[lba as usize] = Some(dst);
        s.p2l[dst.0 as usize] = Some(lba);
        let block = dst.0 / self.pages_per_block as u64;
        s.valid[block as usize] += 1;
        self.host_pages_written.incr();
        Ok(done)
    }
}

impl BlockDevice for BlockSsd {
    fn block_count(&self) -> u64 {
        self.logical_blocks
    }

    fn read(&self, lba: Lba, buf: &mut [u8], now: Nanos) -> IoResult<Nanos> {
        let n = sim::io::check_request(lba, buf.len(), self.logical_blocks)?;
        let mut done = now;
        for i in 0..n {
            let chunk = &mut buf[(i as usize) * BLOCK_SIZE..(i as usize + 1) * BLOCK_SIZE];
            let mapped = self.state.lock().l2p[(lba.0 + i) as usize];
            match mapped {
                Some(page) => {
                    let t = self
                        .array
                        .read_page(page, chunk, now)
                        .map_err(|e| IoError::Device(e.to_string()))?;
                    done = done.max(t);
                }
                None => {
                    // Unmapped LBAs read zeros straight from the controller.
                    chunk.fill(0);
                    done = done.max(now + self.array.timing().bus_transfer);
                }
            }
        }
        self.host_pages_read.add(n);
        Ok(done)
    }

    fn write(&self, lba: Lba, data: &[u8], now: Nanos) -> IoResult<Nanos> {
        let n = sim::io::check_request(lba, data.len(), self.logical_blocks)?;
        let mut done = now;
        for i in 0..n {
            let chunk = &data[(i as usize) * BLOCK_SIZE..(i as usize + 1) * BLOCK_SIZE];
            let t = self.write_one(lba.0 + i, chunk, now)?;
            done = done.max(t);
        }
        Ok(done)
    }

    fn trim(&self, lba: Lba, blocks: u64, now: Nanos) -> IoResult<Nanos> {
        if lba.0 + blocks > self.logical_blocks {
            return Err(IoError::OutOfRange {
                lba: lba.0,
                capacity: self.logical_blocks,
            });
        }
        let mut s = self.state.lock();
        for l in lba.0..lba.0 + blocks {
            if let Some(old) = s.l2p[l as usize].take() {
                s.p2l[old.0 as usize] = None;
                let block = old.0 / self.pages_per_block as u64;
                s.valid[block as usize] -= 1;
            }
        }
        Ok(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> BlockSsd {
        BlockSsd::new(FtlConfig::small_test())
    }

    fn buf(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n * BLOCK_SIZE]
    }

    #[test]
    fn write_read_round_trip() {
        let d = ssd();
        let t = d.write(Lba(5), &buf(2, 0x42), Nanos::ZERO).unwrap();
        let mut out = buf(2, 0);
        d.read(Lba(5), &mut out, t).unwrap();
        assert!(out.iter().all(|&b| b == 0x42));
    }

    #[test]
    fn unmapped_reads_zeros_quickly() {
        let d = ssd();
        let mut out = buf(1, 9);
        let t = d.read(Lba(0), &mut out, Nanos::ZERO).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert!(t <= Nanos::ZERO + d.nand().timing().bus_transfer);
    }

    #[test]
    fn overwrite_remaps_and_reads_latest() {
        let d = ssd();
        let t1 = d.write(Lba(0), &buf(1, 1), Nanos::ZERO).unwrap();
        let t2 = d.write(Lba(0), &buf(1, 2), t1).unwrap();
        let mut out = buf(1, 0);
        d.read(Lba(0), &mut out, t2).unwrap();
        assert!(out.iter().all(|&b| b == 2));
        assert_eq!(d.stats().host_pages_written, 2);
    }

    #[test]
    fn capacity_reflects_op() {
        let d = ssd();
        // small_test: 512 raw pages, 12.5% OP → 448 logical blocks.
        assert_eq!(d.block_count(), 448);
        assert!(d
            .write(Lba(d.block_count()), &buf(1, 1), Nanos::ZERO)
            .is_err());
    }

    #[test]
    fn sustained_overwrites_trigger_gc_with_wa_above_one() {
        use rand::{Rng, SeedableRng};
        let d = ssd();
        let span = d.block_count() * 3 / 4; // overwrite most of the device
        let mut t = Nanos::ZERO;
        let data = buf(1, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..8 * span {
            t = d.write(Lba(rng.gen_range(0..span)), &data, t).unwrap();
        }
        let s = d.stats();
        assert!(s.gc_pages_moved > 0, "GC never ran");
        assert!(s.write_amplification() > 1.0);
        assert!(d.free_blocks() > 0);
        // Every mapped LBA still readable.
        let mut out = buf(1, 0);
        d.read(Lba(3), &mut out, t).unwrap();
    }

    #[test]
    fn trim_invalidates_and_reads_zero() {
        let d = ssd();
        let t = d.write(Lba(9), &buf(1, 5), Nanos::ZERO).unwrap();
        d.trim(Lba(9), 1, t).unwrap();
        let mut out = buf(1, 9);
        d.read(Lba(9), &mut out, t).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert!(d.trim(Lba(d.block_count()), 1, t).is_err());
    }

    #[test]
    fn trim_reduces_gc_work() {
        // Fill, then trim half; subsequent refill should migrate fewer pages
        // than a refill without trim.
        let run = |do_trim: bool| -> u64 {
            let d = ssd();
            let span = d.block_count() - 8;
            let data = buf(1, 1);
            let mut t = Nanos::ZERO;
            for l in 0..span {
                t = d.write(Lba(l), &data, t).unwrap();
            }
            if do_trim {
                d.trim(Lba(0), span / 2, t).unwrap();
            }
            for l in 0..span {
                t = d.write(Lba(l), &data, t).unwrap();
            }
            d.stats().gc_pages_moved
        };
        assert!(run(true) <= run(false));
    }

    #[test]
    fn writes_stripe_across_dies() {
        // A 16-page write on a 4-die array should overlap programs: its
        // completion must be far below 16 serial program times.
        let d = ssd();
        let t = d.write(Lba(0), &buf(16, 1), Nanos::ZERO).unwrap();
        let serial = d.nand().timing().page_program * 16;
        assert!(
            t < serial / 2,
            "no striping: 16-page write took {t}, serial would be {serial}"
        );
    }

    #[test]
    fn utilization_tracks_mapped_fraction() {
        let d = ssd();
        assert_eq!(d.utilization(), 0.0);
        d.write(Lba(0), &buf(1, 1), Nanos::ZERO).unwrap();
        assert!(d.utilization() > 0.0);
    }

    #[test]
    #[should_panic(expected = "op_ratio")]
    fn invalid_op_ratio_panics() {
        let mut cfg = FtlConfig::small_test();
        cfg.op_ratio = 0.001;
        let _ = BlockSsd::new(cfg);
    }

    #[test]
    fn full_logical_utilization_never_deadlocks() {
        // Map every logical block, then overwrite + trim in a pattern that
        // concentrates invalid pages in the open frontier blocks — the
        // emergency-GC deadlock scenario (invalid space uncollectable
        // until frontiers are sealed).
        let d = ssd();
        let span = d.block_count();
        let data = buf(1, 1);
        let mut t = Nanos::ZERO;
        for l in 0..span {
            t = d.write(Lba(l), &data, t).unwrap();
        }
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..4 * span {
            let l = rng.gen_range(0..span);
            if rng.gen_bool(0.3) {
                t = d.trim(Lba(l), 1, t).unwrap();
            } else {
                t = d.write(Lba(l), &data, t).unwrap();
            }
        }
        assert!(d.stats().write_amplification() >= 1.0);
    }

    #[test]
    fn l2p_p2l_stay_consistent_under_churn() {
        let d = ssd();
        let span = d.block_count() - 48;
        let mut t = Nanos::ZERO;
        for i in 0..6000u64 {
            let lba = (i * 31) % span;
            t = d.write(Lba(lba), &buf(1, (lba % 251) as u8), t).unwrap();
        }
        // Spot-check mappings read back the latest value.
        for lba in [0u64, 31 % span, span / 2, span - 1] {
            let mut out = buf(1, 0);
            d.read(Lba(lba), &mut out, t).unwrap();
            // Values were written as (lba % 251); find last write for lba.
            assert!(out.iter().all(|&b| b == (lba % 251) as u8 || b == 0));
        }
    }
}
