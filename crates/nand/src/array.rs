//! The flash array: scheduling, ordering enforcement, wear accounting.

use core::fmt;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim::{Counter, Nanos};

use crate::geometry::{BlockAddr, Geometry, PageAddr};
use crate::store::{PageStore, StoreKind};
use crate::timing::NandTiming;

/// Errors returned by the flash array. Any of these indicates a bug in the
/// translation layer above (FTL, zone manager, filesystem), never a
/// condition to be retried.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NandError {
    /// Address outside the array.
    OutOfRange {
        /// The offending flat page or block index.
        addr: u64,
        /// Upper bound that was violated.
        limit: u64,
    },
    /// Page programmed out of order within its block.
    ProgramOrder {
        /// Block in question.
        block: u64,
        /// Next programmable page index.
        expected: u32,
        /// Page index that was attempted.
        got: u32,
    },
    /// Program attempted on a block whose pages are exhausted.
    BlockFull {
        /// Block in question.
        block: u64,
    },
    /// Buffer length does not equal the page size.
    BadLength {
        /// Offending length.
        len: usize,
        /// Required page size.
        page_size: usize,
    },
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::OutOfRange { addr, limit } => {
                write!(f, "flash address {addr} out of range (limit {limit})")
            }
            NandError::ProgramOrder {
                block,
                expected,
                got,
            } => write!(
                f,
                "out-of-order program in block {block}: expected page {expected}, got {got}"
            ),
            NandError::BlockFull { block } => write!(f, "block {block} fully programmed"),
            NandError::BadLength { len, page_size } => {
                write!(f, "buffer length {len} != page size {page_size}")
            }
        }
    }
}

impl std::error::Error for NandError {}

/// Configuration for a [`NandArray`].
#[derive(Clone, Debug)]
pub struct NandConfig {
    /// Physical shape.
    pub geometry: Geometry,
    /// Operation timing.
    pub timing: NandTiming,
    /// Payload store selection.
    pub store: StoreKind,
}

impl NandConfig {
    /// A realistic default: 8 channels × 4 dies, 2 MiB blocks, ~16 GiB raw.
    pub fn default_ssd() -> Self {
        NandConfig {
            geometry: Geometry::new(8, 4, 256, 512),
            timing: NandTiming::default(),
            store: StoreKind::Ram,
        }
    }

    /// A tiny array for unit tests: 2×2 dies, 16 blocks/die of 8 pages.
    pub fn small_test() -> Self {
        NandConfig {
            geometry: Geometry::new(2, 2, 16, 8),
            timing: NandTiming::fast_test(),
            store: StoreKind::Ram,
        }
    }
}

/// Point-in-time view of array activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NandStatsSnapshot {
    /// Pages sensed (array reads).
    pub pages_read: u64,
    /// Pages programmed.
    pub pages_programmed: u64,
    /// Blocks erased.
    pub blocks_erased: u64,
}

impl NandStatsSnapshot {
    /// Bytes physically programmed to the media.
    pub fn bytes_programmed(&self) -> u64 {
        self.pages_programmed * sim::BLOCK_SIZE as u64
    }
}

struct Sched {
    /// Die occupancy by programs and erases (writes queue behind this).
    die_busy: Vec<Nanos>,
    /// Die occupancy by reads (reads serialize among themselves; writes
    /// queue behind reads too).
    die_read_busy: Vec<Nanos>,
    /// High-water mark of *queued* (page-granular, append-path) program
    /// completions per die. A read whose sense falls below this mark is
    /// preempting a queued program and pays the cheap per-page
    /// `program_suspend` fee instead of the monolithic `read_suspend`.
    die_preempt: Vec<Nanos>,
    chan_busy: Vec<Nanos>,
    /// Next programmable page index per block; `pages_per_block` = full.
    next_page: Vec<u32>,
    erase_counts: Vec<u32>,
}

/// A discrete-event NAND flash array.
///
/// All methods are `&self`; scheduling state is internally locked so the
/// array can be shared between a foreground path and a GC path.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct NandArray {
    geometry: Geometry,
    timing: NandTiming,
    store: Box<dyn PageStore>,
    sched: Mutex<Sched>,
    pages_read: Counter,
    pages_programmed: Counter,
    blocks_erased: Counter,
}

impl fmt::Debug for NandArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NandArray")
            .field("geometry", &self.geometry)
            .field("stats", &self.stats())
            .finish()
    }
}

impl NandArray {
    /// Builds an array from a configuration.
    pub fn new(config: NandConfig) -> Self {
        let g = config.geometry;
        NandArray {
            geometry: g,
            timing: config.timing,
            store: config.store.build(),
            sched: Mutex::new(Sched {
                die_busy: vec![Nanos::ZERO; g.total_dies() as usize],
                die_read_busy: vec![Nanos::ZERO; g.total_dies() as usize],
                die_preempt: vec![Nanos::ZERO; g.total_dies() as usize],
                chan_busy: vec![Nanos::ZERO; g.channels as usize],
                next_page: vec![0; g.total_blocks() as usize],
                erase_counts: vec![0; g.total_blocks() as usize],
            }),
            pages_read: Counter::new(),
            pages_programmed: Counter::new(),
            blocks_erased: Counter::new(),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The array's timing parameters.
    pub fn timing(&self) -> &NandTiming {
        &self.timing
    }

    /// Activity counters so far.
    pub fn stats(&self) -> NandStatsSnapshot {
        NandStatsSnapshot {
            pages_read: self.pages_read.get(),
            pages_programmed: self.pages_programmed.get(),
            blocks_erased: self.blocks_erased.get(),
        }
    }

    /// Highest per-block erase count (wear proxy).
    pub fn max_erase_count(&self) -> u32 {
        self.sched.lock().erase_counts.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-block erase count.
    pub fn mean_erase_count(&self) -> f64 {
        let s = self.sched.lock();
        if s.erase_counts.is_empty() {
            return 0.0;
        }
        s.erase_counts.iter().map(|&c| c as u64).sum::<u64>() as f64 / s.erase_counts.len() as f64
    }

    /// Approximate resident payload bytes in the backing store.
    pub fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes()
    }

    /// Next programmable page index of a block (`pages_per_block` if full).
    pub fn write_pointer(&self, block: BlockAddr) -> u32 {
        self.sched.lock().next_page[block.0 as usize]
    }

    fn check_page(&self, addr: PageAddr) -> Result<(), NandError> {
        if !self.geometry.contains_page(addr) {
            return Err(NandError::OutOfRange {
                addr: addr.0,
                limit: self.geometry.total_pages(),
            });
        }
        Ok(())
    }

    /// Reads one page.
    ///
    /// Unwritten pages read back as zeros, as from an erased block on real
    /// flash (modulo the all-ones convention, which no layer above relies
    /// on).
    ///
    /// # Errors
    ///
    /// [`NandError::OutOfRange`] / [`NandError::BadLength`].
    pub fn read_page(
        &self,
        addr: PageAddr,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, NandError> {
        self.check_page(addr)?;
        if buf.len() != self.geometry.page_size() {
            return Err(NandError::BadLength {
                len: buf.len(),
                page_size: self.geometry.page_size(),
            });
        }
        let block = self.geometry.block_of_page(addr);
        let die = self.geometry.die_of_block(block);
        let chan = self.geometry.channel_of_die(die);

        let mut s = self.sched.lock();
        // Reads have priority: they serialize behind other reads on the
        // die, and pay a suspension penalty (not the full wait) when the
        // die is mid-program or mid-erase. Queued page-granular programs
        // (the zone-append path) expose a suspend point at every page
        // boundary, so preempting them costs only `program_suspend`;
        // monolithic positioned bursts cost the full `read_suspend`.
        let sense_start = now.max(s.die_read_busy[die.0 as usize]);
        let suspend = if sense_start < s.die_busy[die.0 as usize] {
            if sense_start < s.die_preempt[die.0 as usize] {
                self.timing.program_suspend
            } else {
                self.timing.read_suspend
            }
        } else {
            Nanos::ZERO
        };
        let sense_done = sense_start + suspend + self.timing.page_read;
        let xfer_start = sense_done.max(s.chan_busy[chan as usize]);
        let done = xfer_start + self.timing.bus_transfer;
        s.die_read_busy[die.0 as usize] = done;
        // Programs and erases queue behind die_read_busy (see
        // program_page/erase_block), so read time is charged to the die
        // exactly once — no extra push here, or saturated read traffic
        // would starve writes unboundedly.
        s.chan_busy[chan as usize] = done;
        drop(s);

        self.store.read(addr, buf);
        self.pages_read.incr();
        Ok(done)
    }

    /// Programs one page. Pages within a block must be programmed in order.
    ///
    /// # Errors
    ///
    /// [`NandError::ProgramOrder`] when skipping ahead or rewriting,
    /// [`NandError::BlockFull`] when the block is exhausted, plus the range
    /// and length errors of [`Self::read_page`].
    pub fn program_page(
        &self,
        addr: PageAddr,
        data: &[u8],
        now: Nanos,
    ) -> Result<Nanos, NandError> {
        self.program_inner(addr, data, now, false).map(|(_, done)| done)
    }

    /// Programs one page as a *queued* command (the zone-append path):
    /// identical scheduling, but the die records a suspend point at every
    /// page boundary, so concurrent reads preempt at the cheap
    /// `program_suspend` fee. Returns `(service_start, done)` — the
    /// interval the die actually worked on this page — so layers above
    /// can report per-die service overlap.
    ///
    /// # Errors
    ///
    /// As [`Self::program_page`].
    pub fn program_page_queued(
        &self,
        addr: PageAddr,
        data: &[u8],
        now: Nanos,
    ) -> Result<(Nanos, Nanos), NandError> {
        self.program_inner(addr, data, now, true)
    }

    fn program_inner(
        &self,
        addr: PageAddr,
        data: &[u8],
        now: Nanos,
        queued: bool,
    ) -> Result<(Nanos, Nanos), NandError> {
        self.check_page(addr)?;
        if data.len() != self.geometry.page_size() {
            return Err(NandError::BadLength {
                len: data.len(),
                page_size: self.geometry.page_size(),
            });
        }
        let block = self.geometry.block_of_page(addr);
        let in_block = self.geometry.page_in_block(addr);
        let die = self.geometry.die_of_block(block);
        let chan = self.geometry.channel_of_die(die);

        let mut s = self.sched.lock();
        let next = s.next_page[block.0 as usize];
        if next >= self.geometry.pages_per_block {
            return Err(NandError::BlockFull { block: block.0 });
        }
        if in_block != next {
            return Err(NandError::ProgramOrder {
                block: block.0,
                expected: next,
                got: in_block,
            });
        }
        // Transfer in over the channel, then program on the die. Programs
        // queue behind both writes and reads.
        let xfer_start = now.max(s.chan_busy[chan as usize]);
        let xfer_done = xfer_start + self.timing.bus_transfer;
        let prog_start = xfer_done
            .max(s.die_busy[die.0 as usize])
            .max(s.die_read_busy[die.0 as usize]);
        let done = prog_start + self.timing.page_program;
        s.chan_busy[chan as usize] = xfer_done;
        s.die_busy[die.0 as usize] = done;
        if queued {
            s.die_preempt[die.0 as usize] = done.max(s.die_preempt[die.0 as usize]);
        }
        s.next_page[block.0 as usize] = next + 1;
        drop(s);

        self.store.write(addr, data);
        self.pages_programmed.incr();
        Ok((prog_start, done))
    }

    /// Erases a block, making all its pages programmable again.
    ///
    /// # Errors
    ///
    /// [`NandError::OutOfRange`] for an invalid block.
    pub fn erase_block(&self, block: BlockAddr, now: Nanos) -> Result<Nanos, NandError> {
        if !self.geometry.contains_block(block) {
            return Err(NandError::OutOfRange {
                addr: block.0,
                limit: self.geometry.total_blocks(),
            });
        }
        let die = self.geometry.die_of_block(block);

        let mut s = self.sched.lock();
        let start = now
            .max(s.die_busy[die.0 as usize])
            .max(s.die_read_busy[die.0 as usize]);
        let done = start + self.timing.block_erase;
        s.die_busy[die.0 as usize] = done;
        s.next_page[block.0 as usize] = 0;
        s.erase_counts[block.0 as usize] += 1;
        drop(s);

        self.store
            .discard(self.geometry.first_page_of_block(block), self.geometry.pages_per_block as u64);
        self.blocks_erased.incr();
        Ok(done)
    }

    /// Earliest time the die owning `block` becomes free. Used by layers
    /// above to model "background" work that defers to foreground traffic.
    pub fn die_free_at(&self, block: BlockAddr) -> Nanos {
        let die = self.geometry.die_of_block(block);
        self.sched.lock().die_busy[die.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> NandArray {
        NandArray::new(NandConfig::small_test())
    }

    fn page(n: u64, a: &NandArray) -> Vec<u8> {
        vec![n as u8; a.geometry().page_size()]
    }

    #[test]
    fn program_then_read_round_trips() {
        let a = array();
        let data = page(7, &a);
        let t = a.program_page(PageAddr(0), &data, Nanos::ZERO).unwrap();
        let mut out = vec![0u8; a.geometry().page_size()];
        a.read_page(PageAddr(0), &mut out, t).unwrap();
        assert_eq!(out, data);
        let s = a.stats();
        assert_eq!(s.pages_programmed, 1);
        assert_eq!(s.pages_read, 1);
    }

    #[test]
    fn unwritten_page_reads_zeros() {
        let a = array();
        let mut out = vec![9u8; a.geometry().page_size()];
        a.read_page(PageAddr(5), &mut out, Nanos::ZERO).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn program_order_enforced() {
        let a = array();
        let data = page(1, &a);
        a.program_page(PageAddr(0), &data, Nanos::ZERO).unwrap();
        // Skipping page 1 within block 0 must fail.
        let err = a.program_page(PageAddr(2), &data, Nanos::ZERO).unwrap_err();
        assert_eq!(
            err,
            NandError::ProgramOrder {
                block: 0,
                expected: 1,
                got: 2
            }
        );
        // Rewriting page 0 must fail too.
        let err = a.program_page(PageAddr(0), &data, Nanos::ZERO).unwrap_err();
        assert!(matches!(err, NandError::ProgramOrder { .. }));
    }

    #[test]
    fn full_block_rejects_until_erased() {
        let a = array();
        let ppb = a.geometry().pages_per_block as u64;
        let data = page(3, &a);
        let mut t = Nanos::ZERO;
        for p in 0..ppb {
            t = a.program_page(PageAddr(p), &data, t).unwrap();
        }
        assert!(matches!(
            a.program_page(PageAddr(0), &data, t),
            Err(NandError::ProgramOrder { .. }) | Err(NandError::BlockFull { .. })
        ));
        let t = a.erase_block(BlockAddr(0), t).unwrap();
        assert_eq!(a.write_pointer(BlockAddr(0)), 0);
        a.program_page(PageAddr(0), &data, t).unwrap();
        assert_eq!(a.max_erase_count(), 1);
        // Erase discards payloads.
        let mut out = vec![9u8; a.geometry().page_size()];
        a.read_page(PageAddr(1), &mut out, t).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn dies_run_in_parallel_but_blocks_on_one_die_serialize() {
        let a = array();
        let g = *a.geometry();
        let data = vec![1u8; g.page_size()];
        // Block 0 is on die 0; block `blocks_per_die` is on die 1 (other
        // channel? no: die 1 shares channel 0). Choose dies on different
        // channels: die 0 (chan 0) and die 2 (chan 1).
        let b_die0 = BlockAddr(0);
        let b_die2 = BlockAddr(2 * g.blocks_per_die as u64);
        let t0 = a
            .program_page(g.first_page_of_block(b_die0), &data, Nanos::ZERO)
            .unwrap();
        let t1 = a
            .program_page(g.first_page_of_block(b_die2), &data, Nanos::ZERO)
            .unwrap();
        // Different die + different channel: same completion time.
        assert_eq!(t0, t1);
        // Two sequential programs on the same die serialize.
        let t2 = a
            .program_page(PageAddr(g.first_page_of_block(b_die0).0 + 1), &data, Nanos::ZERO)
            .unwrap();
        assert!(t2 > t0);
    }

    #[test]
    fn channel_contention_delays_transfer() {
        let a = array();
        let g = *a.geometry();
        let data = vec![1u8; g.page_size()];
        // Dies 0 and 1 share channel 0.
        let b0 = BlockAddr(0);
        let b1 = BlockAddr(g.blocks_per_die as u64);
        let t0 = a
            .program_page(g.first_page_of_block(b0), &data, Nanos::ZERO)
            .unwrap();
        let t1 = a
            .program_page(g.first_page_of_block(b1), &data, Nanos::ZERO)
            .unwrap();
        // Second transfer waits one bus slot; programs overlap afterwards.
        assert_eq!(t1, t0 + a.timing().bus_transfer);
    }

    #[test]
    fn bounds_and_length_errors() {
        let a = array();
        let g = *a.geometry();
        let mut small = vec![0u8; 16];
        assert!(matches!(
            a.read_page(PageAddr(0), &mut small, Nanos::ZERO),
            Err(NandError::BadLength { .. })
        ));
        let mut full = vec![0u8; g.page_size()];
        assert!(matches!(
            a.read_page(PageAddr(g.total_pages()), &mut full, Nanos::ZERO),
            Err(NandError::OutOfRange { .. })
        ));
        assert!(matches!(
            a.erase_block(BlockAddr(g.total_blocks()), Nanos::ZERO),
            Err(NandError::OutOfRange { .. })
        ));
    }

    #[test]
    fn reads_suspend_programs_instead_of_waiting() {
        let a = array();
        let g = *a.geometry();
        let data = vec![1u8; g.page_size()];
        // Queue several programs on die 0 so it is busy for a while.
        let mut t_w = Nanos::ZERO;
        for p in 0..4 {
            t_w = a.program_page(PageAddr(p), &data, Nanos::ZERO).unwrap();
        }
        // A read of the first page issued while the die is mid-burst must
        // complete long before the whole burst would.
        let mut out = vec![0u8; g.page_size()];
        let t_r = a.read_page(PageAddr(0), &mut out, Nanos::ZERO).unwrap();
        assert!(
            t_r < t_w,
            "read ({t_r}) should preempt the program burst ({t_w})"
        );
        // But it still pays the suspension penalty.
        assert!(t_r >= a.timing().read_suspend + a.timing().page_read);
    }

    #[test]
    fn queued_programs_take_cheap_suspensions() {
        let a = array();
        let g = *a.geometry();
        let data = vec![1u8; g.page_size()];
        // A queued (append-path) burst on die 0: suspend points at every
        // page boundary.
        for p in 0..4 {
            a.program_page_queued(PageAddr(p), &data, Nanos::ZERO).unwrap();
        }
        let mut out = vec![0u8; g.page_size()];
        let t_r = a.read_page(PageAddr(0), &mut out, Nanos::ZERO).unwrap();
        let t = a.timing();
        assert_eq!(t_r, t.program_suspend + t.page_read + t.bus_transfer);
        assert!(
            t_r < t.read_suspend + t.page_read,
            "queued burst must be cheaper to preempt than a monolithic one"
        );
    }

    #[test]
    fn queued_program_reports_its_die_service_interval() {
        let a = array();
        let g = *a.geometry();
        let data = vec![1u8; g.page_size()];
        let (start, done) = a
            .program_page_queued(PageAddr(0), &data, Nanos::ZERO)
            .unwrap();
        assert_eq!(start, a.timing().bus_transfer, "service starts after transfer");
        assert_eq!(done - start, a.timing().page_program);
        // Identical scheduling to the legacy path: a second queued page on
        // the same die starts when the first finishes.
        let (s2, _) = a
            .program_page_queued(PageAddr(1), &data, Nanos::ZERO)
            .unwrap();
        assert_eq!(s2, done);
    }

    #[test]
    fn erase_dominates_timing() {
        let a = array();
        let t = a.erase_block(BlockAddr(3), Nanos::ZERO).unwrap();
        assert_eq!(t, a.timing().block_erase);
        assert_eq!(a.stats().blocks_erased, 1);
    }
}
