//! Backing stores for page payloads.
//!
//! The timing/state model in [`crate::array`] is independent of whether page
//! *contents* are retained:
//!
//! * [`RamStore`] keeps real bytes — used by tests and examples that verify
//!   data integrity end to end.
//! * [`SparseStore`] keeps nothing and reads back zeros — used by large
//!   experiments where the host has far less DRAM than the simulated device
//!   (the cache's hit/miss behaviour is index-driven, so payload bytes do
//!   not affect any reported metric).
//!
//! Which pages have been written at all is tracked by the array itself (it
//! needs that for program-order enforcement), so stores only handle bytes.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::geometry::PageAddr;

/// Selects a backing store implementation in configuration types.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreKind {
    /// Keep page payloads in memory ([`RamStore`]).
    #[default]
    Ram,
    /// Discard payloads, read back zeros ([`SparseStore`]).
    Sparse,
}

impl StoreKind {
    /// Instantiates the selected store.
    pub fn build(self) -> Box<dyn PageStore> {
        match self {
            StoreKind::Ram => Box::new(RamStore::new()),
            StoreKind::Sparse => Box::new(SparseStore::new()),
        }
    }
}

/// Storage for page payloads.
///
/// Implementations are internally synchronized; the array calls them under
/// its own scheduling lock.
pub trait PageStore: Send + Sync {
    /// Stores one page worth of bytes.
    fn write(&self, addr: PageAddr, data: &[u8]);

    /// Loads one page into `buf`; fills zeros if the payload was discarded.
    fn read(&self, addr: PageAddr, buf: &mut [u8]);

    /// Drops payloads for a page range (called on block erase).
    fn discard(&self, first: PageAddr, pages: u64);

    /// Approximate resident bytes, for memory-budget reporting.
    fn resident_bytes(&self) -> u64;
}

/// A store that keeps real page payloads in a hash map.
///
/// # Example
///
/// ```
/// use nand::{PageAddr, PageStore, RamStore};
///
/// let s = RamStore::new();
/// s.write(PageAddr(7), &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// s.read(PageAddr(7), &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct RamStore {
    pages: Mutex<HashMap<u64, Box<[u8]>>>,
}

impl RamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for RamStore {
    fn write(&self, addr: PageAddr, data: &[u8]) {
        self.pages.lock().insert(addr.0, data.into());
    }

    fn read(&self, addr: PageAddr, buf: &mut [u8]) {
        match self.pages.lock().get(&addr.0) {
            Some(data) => {
                let n = buf.len().min(data.len());
                buf[..n].copy_from_slice(&data[..n]);
                buf[n..].fill(0);
            }
            None => buf.fill(0),
        }
    }

    fn discard(&self, first: PageAddr, pages: u64) {
        let mut map = self.pages.lock();
        for p in first.0..first.0 + pages {
            map.remove(&p);
        }
    }

    fn resident_bytes(&self) -> u64 {
        let map = self.pages.lock();
        map.values().map(|v| v.len() as u64).sum()
    }
}

/// A store that discards payloads; reads return zeros.
///
/// Used for multi-GiB experiments where only metadata (mappings, validity,
/// timing) matters.
#[derive(Debug, Default)]
pub struct SparseStore;

impl SparseStore {
    /// Creates the store.
    pub fn new() -> Self {
        SparseStore
    }
}

impl PageStore for SparseStore {
    fn write(&self, _addr: PageAddr, _data: &[u8]) {}

    fn read(&self, _addr: PageAddr, buf: &mut [u8]) {
        buf.fill(0);
    }

    fn discard(&self, _first: PageAddr, _pages: u64) {}

    fn resident_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_store_round_trip_and_discard() {
        let s = RamStore::new();
        s.write(PageAddr(1), &[9u8; 8]);
        s.write(PageAddr(2), &[8u8; 8]);
        assert_eq!(s.resident_bytes(), 16);

        let mut buf = [0u8; 8];
        s.read(PageAddr(1), &mut buf);
        assert_eq!(buf, [9u8; 8]);

        s.discard(PageAddr(1), 1);
        s.read(PageAddr(1), &mut buf);
        assert_eq!(buf, [0u8; 8]);
        s.read(PageAddr(2), &mut buf);
        assert_eq!(buf, [8u8; 8]);
    }

    #[test]
    fn ram_store_short_payload_zero_fills() {
        let s = RamStore::new();
        s.write(PageAddr(0), &[1u8; 4]);
        let mut buf = [7u8; 8];
        s.read(PageAddr(0), &mut buf);
        assert_eq!(buf, [1, 1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn sparse_store_reads_zeros() {
        let s = SparseStore::new();
        s.write(PageAddr(0), &[1u8; 8]);
        let mut buf = [7u8; 8];
        s.read(PageAddr(0), &mut buf);
        assert_eq!(buf, [0u8; 8]);
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn store_kind_builds() {
        let r = StoreKind::Ram.build();
        r.write(PageAddr(0), &[1]);
        let mut b = [0u8; 1];
        r.read(PageAddr(0), &mut b);
        assert_eq!(b, [1]);

        let s = StoreKind::Sparse.build();
        s.write(PageAddr(0), &[1]);
        s.read(PageAddr(0), &mut b);
        assert_eq!(b, [0]);
    }
}
