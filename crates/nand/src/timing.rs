//! NAND operation timing.
//!
//! Values are typical for recent TLC flash, expressed per 4 KiB page. The
//! absolute numbers only set the scale of results; the paper's conclusions
//! depend on the *ratios* (program ≫ read ≫ transfer, erase ≫ program),
//! which these defaults preserve.

use serde::{Deserialize, Serialize};
use sim::Nanos;

/// Timing parameters of the flash array.
///
/// # Example
///
/// ```
/// use nand::NandTiming;
///
/// let t = NandTiming::default();
/// assert!(t.block_erase > t.page_program);
/// assert!(t.page_program > t.page_read);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NandTiming {
    /// Array-to-register sense time for one page (tR).
    pub page_read: Nanos,
    /// Register-to-array program time for one page (tPROG).
    pub page_program: Nanos,
    /// Block erase time (tBERS).
    pub block_erase: Nanos,
    /// Channel transfer time for one page each way (page_size / bus rate).
    pub bus_transfer: Nanos,
    /// Extra latency a read pays when its die is mid-program/mid-erase:
    /// the cost of suspending the write operation (read-priority
    /// scheduling, as real SSD firmware does — without it a read queued
    /// behind a whole zone write would wait for every page of it).
    pub read_suspend: Nanos,
    /// Cheaper suspension fee when the die is executing *queued*
    /// page-granular programs (zone appends issued at depth): the
    /// controller reaches a suspend point at every page boundary, so a
    /// read only waits out the current page, not a monolithic
    /// positioned-write burst. Must be <= `read_suspend`.
    pub program_suspend: Nanos,
}

impl Default for NandTiming {
    fn default() -> Self {
        NandTiming {
            page_read: Nanos::from_micros(50),
            page_program: Nanos::from_micros(500),
            block_erase: Nanos::from_millis(3),
            bus_transfer: Nanos::from_micros(5),
            read_suspend: Nanos::from_micros(250),
            program_suspend: Nanos::from_micros(35),
        }
    }
}

impl NandTiming {
    /// A uniformly faster profile used by tests that only check ordering
    /// and bookkeeping, not absolute latency.
    pub fn fast_test() -> Self {
        NandTiming {
            page_read: Nanos::from_micros(1),
            page_program: Nanos::from_micros(4),
            block_erase: Nanos::from_micros(20),
            bus_transfer: Nanos::from_nanos(200),
            read_suspend: Nanos::from_micros(2),
            program_suspend: Nanos::from_nanos(500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_are_flash_like() {
        let t = NandTiming::default();
        assert!(t.block_erase.as_nanos() >= 4 * t.page_program.as_nanos());
        assert!(t.page_program.as_nanos() >= 5 * t.page_read.as_nanos());
        assert!(t.page_read.as_nanos() >= 2 * t.bus_transfer.as_nanos());
        assert!(t.program_suspend <= t.read_suspend);
    }

    #[test]
    fn queued_suspension_is_cheaper_in_every_profile() {
        for t in [NandTiming::default(), NandTiming::fast_test()] {
            assert!(t.program_suspend > Nanos::ZERO);
            assert!(t.program_suspend < t.read_suspend);
        }
    }
}
