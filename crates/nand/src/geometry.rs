//! Flash geometry: channels, dies, blocks, pages, and the flat address
//! spaces over them.
//!
//! Pages are 4 KiB — the logical block size of the host interface — which
//! keeps the FTL mapping 1:1 and the model simple without changing any of
//! the dynamics the paper measures.
//!
//! Flat addressing is die-major:
//! `die = channel * dies_per_channel + die_in_channel`,
//! `block = die * blocks_per_die + block_in_die`,
//! `page = block * pages_per_block + page_in_block`.

use serde::{Deserialize, Serialize};

/// A die identified by its flat index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DieId(pub u32);

/// A physical erase block identified by its flat index across the array.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

/// A physical flash page identified by its flat index across the array.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageAddr(pub u64);

/// Physical shape of the flash array.
///
/// # Example
///
/// ```
/// use nand::Geometry;
///
/// let g = Geometry::new(2, 2, 16, 64);
/// assert_eq!(g.total_dies(), 4);
/// assert_eq!(g.total_blocks(), 64);
/// assert_eq!(g.total_pages(), 4096);
/// assert_eq!(g.capacity_bytes(), 4096 * 4096);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Independent channels (shared data buses).
    pub channels: u32,
    /// Dies attached to each channel.
    pub dies_per_channel: u32,
    /// Erase blocks per die.
    pub blocks_per_die: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
}

impl Geometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        channels: u32,
        dies_per_channel: u32,
        blocks_per_die: u32,
        pages_per_block: u32,
    ) -> Self {
        assert!(
            channels > 0 && dies_per_channel > 0 && blocks_per_die > 0 && pages_per_block > 0,
            "geometry dimensions must be non-zero"
        );
        Geometry {
            channels,
            dies_per_channel,
            blocks_per_die,
            pages_per_block,
        }
    }

    /// Page size in bytes. Fixed to the host logical block size.
    #[inline]
    pub const fn page_size(&self) -> usize {
        sim::BLOCK_SIZE
    }

    /// Total dies in the array.
    #[inline]
    pub const fn total_dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Total erase blocks in the array.
    #[inline]
    pub const fn total_blocks(&self) -> u64 {
        self.total_dies() as u64 * self.blocks_per_die as u64
    }

    /// Total pages in the array.
    #[inline]
    pub const fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    #[inline]
    pub const fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size() as u64
    }

    /// Bytes per erase block.
    #[inline]
    pub const fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_size() as u64
    }

    /// The die a block lives on.
    #[inline]
    pub fn die_of_block(&self, block: BlockAddr) -> DieId {
        DieId((block.0 / self.blocks_per_die as u64) as u32)
    }

    /// The channel a die hangs off.
    #[inline]
    pub fn channel_of_die(&self, die: DieId) -> u32 {
        die.0 / self.dies_per_channel
    }

    /// The block containing a page.
    #[inline]
    pub fn block_of_page(&self, page: PageAddr) -> BlockAddr {
        BlockAddr(page.0 / self.pages_per_block as u64)
    }

    /// Page index within its block.
    #[inline]
    pub fn page_in_block(&self, page: PageAddr) -> u32 {
        (page.0 % self.pages_per_block as u64) as u32
    }

    /// First page of a block.
    #[inline]
    pub fn first_page_of_block(&self, block: BlockAddr) -> PageAddr {
        PageAddr(block.0 * self.pages_per_block as u64)
    }

    /// Whether a page address is within the array.
    #[inline]
    pub fn contains_page(&self, page: PageAddr) -> bool {
        page.0 < self.total_pages()
    }

    /// Whether a block address is within the array.
    #[inline]
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        block.0 < self.total_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Geometry {
        Geometry::new(2, 3, 10, 8)
    }

    #[test]
    fn totals() {
        let g = g();
        assert_eq!(g.total_dies(), 6);
        assert_eq!(g.total_blocks(), 60);
        assert_eq!(g.total_pages(), 480);
        assert_eq!(g.block_bytes(), 8 * 4096);
    }

    #[test]
    fn address_mapping_round_trips() {
        let g = g();
        for b in 0..g.total_blocks() {
            let block = BlockAddr(b);
            let first = g.first_page_of_block(block);
            assert_eq!(g.block_of_page(first), block);
            assert_eq!(g.page_in_block(first), 0);
            let last = PageAddr(first.0 + g.pages_per_block as u64 - 1);
            assert_eq!(g.block_of_page(last), block);
            assert_eq!(g.page_in_block(last), g.pages_per_block - 1);
        }
    }

    #[test]
    fn die_and_channel_of_block() {
        let g = g();
        assert_eq!(g.die_of_block(BlockAddr(0)), DieId(0));
        assert_eq!(g.die_of_block(BlockAddr(10)), DieId(1));
        assert_eq!(g.die_of_block(BlockAddr(59)), DieId(5));
        assert_eq!(g.channel_of_die(DieId(2)), 0);
        assert_eq!(g.channel_of_die(DieId(3)), 1);
    }

    #[test]
    fn bounds_checks() {
        let g = g();
        assert!(g.contains_page(PageAddr(479)));
        assert!(!g.contains_page(PageAddr(480)));
        assert!(g.contains_block(BlockAddr(59)));
        assert!(!g.contains_block(BlockAddr(60)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Geometry::new(0, 1, 1, 1);
    }
}
