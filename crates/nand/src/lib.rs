//! Discrete-event NAND flash model.
//!
//! Both SSD emulators in this workspace — the conventional page-mapped FTL
//! device (`ftl` crate) and the Zoned Namespace device (`zns` crate) — sit
//! on this shared model, mirroring the paper's "hardware-compatible" device
//! pair (a WD ZN540 ZNS SSD and an SN540 regular SSD built from the same
//! flash). The two emulators therefore see identical dies, channels, timing
//! and capacity; only the host interface differs.
//!
//! The model is *discrete-event*: each die and each channel keeps a
//! `busy_until` watermark, operations are scheduled against those watermarks
//! and return their completion time. Contention — a GC migration occupying
//! a die while a foreground read waits — emerges from the watermarks rather
//! than from any explicit queue simulation.
//!
//! NAND ordering rules are enforced: pages within a block must be programmed
//! sequentially and a block must be erased before it can be reprogrammed.
//! Violations are *bugs in the FTL/zone layer above*, so they return typed
//! errors that the upper layers treat as fatal.
//!
//! # Example
//!
//! ```
//! use nand::{NandArray, NandConfig, PageAddr};
//! use sim::Nanos;
//!
//! let array = NandArray::new(NandConfig::small_test());
//! let page = vec![0x5au8; array.geometry().page_size()];
//! let done = array.program_page(PageAddr(0), &page, Nanos::ZERO).unwrap();
//! let mut out = vec![0u8; array.geometry().page_size()];
//! array.read_page(PageAddr(0), &mut out, done).unwrap();
//! assert_eq!(out, page);
//! ```

pub mod array;
pub mod geometry;
pub mod store;
pub mod timing;

pub use array::{NandArray, NandConfig, NandError, NandStatsSnapshot};
pub use geometry::{BlockAddr, DieId, Geometry, PageAddr};
pub use store::{PageStore, RamStore, SparseStore, StoreKind};
pub use timing::NandTiming;
